//! Integration tests for the shared dataset service: admission control,
//! hit/miss attribution, and the bit-identity guarantee the whole design
//! hangs on — a job's stream does not depend on worker thread count or on
//! what its neighbours are doing.

use dataio::{generate, ClassSpec, SyntheticSpec};
use datapipe::{
    stream_fingerprint, AdmitError, DatasetService, JobSpec, ServiceConfig, StreamOrder,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datapipe_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec_for(rows: usize, cols: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        rows,
        cols,
        kind: ClassSpec::Classification {
            classes: 3,
            separation: 1.0,
        },
        noise: 0.4,
        seed,
    }
}

/// Opens a service with `threads` assembly workers and one registered
/// synthetic dataset under `key`.
fn service_with_dataset(
    root: &PathBuf,
    threads: usize,
    key: u64,
    rows: usize,
    cols: usize,
) -> Arc<DatasetService> {
    let mut config = ServiceConfig::new(root);
    config.threads = threads;
    let service = DatasetService::new(config).unwrap();
    service
        .open_dataset(key, "synthetic:test", "", 5, || {
            Ok(generate(&spec_for(rows, cols, 7)).to_frame())
        })
        .unwrap();
    service
}

fn job_spec(key: u64, features: usize) -> JobSpec {
    JobSpec {
        dataset: key,
        features,
        batch: 32,
        seed: 11,
    }
}

/// Satellite: the per-job stream is a pure function of
/// `(dataset, seed, epoch, batch)` — the assembly worker count {1, 2, 4}
/// must not change a single bit.
#[test]
fn stream_is_bit_identical_across_thread_counts() {
    let key = 0xA1;
    let mut prints = Vec::new();
    for threads in [1usize, 2, 4] {
        let root = tmp_root(&format!("threads{threads}"));
        let service = service_with_dataset(&root, threads, key, 257, 9);
        let job = service.admit(job_spec(key, 8)).unwrap();
        let epoch = stream_fingerprint(job.epoch(3)).unwrap();
        let seq = stream_fingerprint(job.sequential()).unwrap();
        prints.push((epoch, seq));
        std::fs::remove_dir_all(&root).ok();
    }
    assert_eq!(prints[0], prints[1], "1 vs 2 threads changed the stream");
    assert_eq!(prints[0], prints[2], "1 vs 4 threads changed the stream");
    assert_ne!(
        prints[0].0, prints[0].1,
        "the shuffled epoch must differ from storage order"
    );
}

/// A shuffled epoch is a permutation of the sequential stream: same rows,
/// each exactly once, only the order differs.
#[test]
fn shuffled_epoch_covers_every_row_exactly_once() {
    let root = tmp_root("coverage");
    let key = 0xB2;
    let service = service_with_dataset(&root, 2, key, 131, 6);
    let job = service.admit(job_spec(key, 5)).unwrap();

    let collect_rows = |stream: datapipe::EpochStream| -> Vec<Vec<f32>> {
        let mut rows = Vec::new();
        for item in stream {
            let batch = item.unwrap();
            let (x, y) = (batch.x.data(), batch.y.data());
            let n = batch.x.shape().dims()[0];
            let (fx, fy) = (x.len() / n, y.len() / n);
            for r in 0..n {
                let mut row: Vec<f32> = x[r * fx..(r + 1) * fx].to_vec();
                row.extend_from_slice(&y[r * fy..(r + 1) * fy]);
                rows.push(row);
            }
        }
        rows
    };

    let mut shuffled = collect_rows(job.epoch(0));
    let mut sequential = collect_rows(job.sequential());
    assert_eq!(shuffled.len(), 131);
    assert_ne!(shuffled, sequential, "epoch 0 must actually shuffle");
    let sort = |rows: &mut Vec<Vec<f32>>| {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    };
    sort(&mut shuffled);
    sort(&mut sequential);
    assert_eq!(
        shuffled, sequential,
        "epoch must be a permutation of the rows"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Epochs reshuffle: different epoch indices yield different orders, and
/// replaying an epoch reproduces it bit-for-bit.
#[test]
fn epochs_reshuffle_and_replay_deterministically() {
    let root = tmp_root("epochs");
    let key = 0xC3;
    let service = service_with_dataset(&root, 2, key, 200, 7);
    let job = service.admit(job_spec(key, 6)).unwrap();
    let e0 = stream_fingerprint(job.epoch(0)).unwrap();
    let e1 = stream_fingerprint(job.epoch(1)).unwrap();
    let e0_again = stream_fingerprint(job.epoch(0)).unwrap();
    assert_ne!(e0, e1, "epochs 0 and 1 must shuffle differently");
    assert_eq!(e0, e0_again, "replaying an epoch must be bit-identical");
    std::fs::remove_dir_all(&root).ok();
}

/// Concurrent neighbours over the same pool never change a job's stream,
/// and the pool serves later jobs from residency (hits, one decode per
/// shard).
#[test]
fn neighbours_share_the_pool_without_changing_streams() {
    let root = tmp_root("neighbours");
    let key = 0xD4;
    let service = service_with_dataset(&root, 2, key, 300, 8);

    // Solo baseline.
    let solo = {
        let job = service.admit(job_spec(key, 7)).unwrap();
        stream_fingerprint(job.epoch(0)).unwrap()
    };

    // Eight concurrent consumers, each on its own thread.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let job = service.admit(job_spec(key, 7)).unwrap();
        handles.push(std::thread::spawn(move || {
            stream_fingerprint(job.epoch(0)).unwrap()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), solo, "a neighbour changed the stream");
    }

    let pool = service.pool_stats();
    assert_eq!(pool.misses, 5, "each of the 5 shards decodes exactly once");
    assert!(
        pool.hits > pool.misses,
        "9 jobs over 5 shards must mostly hit"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn admission_control_rejects_with_typed_errors() {
    let root = tmp_root("admission");
    let key = 0xE5;
    let mut config = ServiceConfig::new(&root);
    config.max_jobs = 2;
    let service = DatasetService::new(config).unwrap();
    service
        .open_dataset(key, "synthetic:test", "", 4, || {
            Ok(generate(&spec_for(100, 6, 3)).to_frame())
        })
        .unwrap();

    assert!(matches!(
        service.admit(job_spec(0xFFFF, 5)),
        Err(AdmitError::UnknownDataset { key: 0xFFFF })
    ));
    // 6 feature cols + 1 label col = 7 dataset cols; features=7 leaves no y.
    assert!(matches!(
        service.admit(job_spec(key, 7)),
        Err(AdmitError::BadSplit {
            features: 7,
            ncols: 7
        })
    ));

    let _a = service.admit(job_spec(key, 5)).unwrap();
    let _b = service.admit(job_spec(key, 5)).unwrap();
    assert!(matches!(
        service.admit(job_spec(key, 5)),
        Err(AdmitError::Saturated {
            active: 2,
            max_jobs: 2
        })
    ));
    // Dropping a handle frees the slot.
    drop(_a);
    let _c = service.admit(job_spec(key, 5)).unwrap();

    let stats = service.stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.active_jobs, 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn admission_rejects_working_sets_beyond_the_pool_budget() {
    let root = tmp_root("budget");
    let key = 0xF6;
    let mut config = ServiceConfig::new(&root);
    // Far too small for even one decoded shard (100x6 f32 over 2 shards).
    config.pool_budget_bytes = 64;
    let service = DatasetService::new(config).unwrap();
    service
        .open_dataset(key, "synthetic:test", "", 2, || {
            Ok(generate(&spec_for(100, 6, 3)).to_frame())
        })
        .unwrap();
    assert!(matches!(
        service.admit(job_spec(key, 5)),
        Err(AdmitError::InsufficientBudget { .. })
    ));
    assert_eq!(service.stats().rejected, 1);
    std::fs::remove_dir_all(&root).ok();
}

/// A tight pool budget forces eviction churn mid-epoch — and the stream
/// still comes out bit-identical, because leases pin exactly the shards
/// in use and eviction only changes *where* bytes come from.
#[test]
fn tight_pool_budget_churns_but_streams_stay_identical() {
    let root = tmp_root("tight");
    let key = 0x17;
    let rows = 400;
    let cols = 8;
    // Generous-budget baseline.
    let baseline = {
        let service = service_with_dataset(&root, 2, key, rows, cols);
        let job = service.admit(job_spec(key, 7)).unwrap();
        stream_fingerprint(job.epoch(2)).unwrap()
    };
    // Tight budget: exactly two shards resident (5 shards of 80 rows ×
    // 9 columns — 8 features + 1 label — of f32).
    let mut config = ServiceConfig::new(&root);
    config.threads = 2;
    config.pool_budget_bytes = (2 * 80 * (cols + 1) * 4) as u64;
    let service = DatasetService::new(config).unwrap();
    service
        .open_dataset(key, "synthetic:test", "", 5, || {
            Ok(generate(&spec_for(rows, cols, 7)).to_frame())
        })
        .unwrap();
    let job = service.admit(job_spec(key, 7)).unwrap();
    let tight = stream_fingerprint(job.epoch(2)).unwrap();
    assert_eq!(tight, baseline, "eviction churn changed the stream");
    let pool = service.pool_stats();
    assert!(pool.evictions > 0, "a tight budget must evict: {pool:?}");
    assert!(pool.resident_bytes <= pool.peak_resident_bytes, "{pool:?}");
    std::fs::remove_dir_all(&root).ok();
}

/// Job stats attribute work to the job that did it.
#[test]
fn job_stats_attribute_batches_and_bytes() {
    let root = tmp_root("stats");
    let key = 0x28;
    let service = service_with_dataset(&root, 2, key, 150, 6);
    let job = service.admit(job_spec(key, 5)).unwrap();
    assert_eq!(job.stats(), Default::default());
    let mut batches = 0;
    for item in job.epoch(0) {
        item.unwrap();
        batches += 1;
    }
    let stats = job.stats();
    assert_eq!(batches, 150usize.div_ceil(32));
    assert_eq!(stats.batches, batches as u64);
    assert_eq!(stats.rows, 150);
    assert!(stats.bytes_served > 0);
    assert!(
        stats.shard_hits + stats.shard_misses > 0,
        "shard acquires must be attributed to the job: {stats:?}"
    );
    assert!(
        stats.shard_misses <= 5,
        "at most one decode per shard: {stats:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Reopening a dataset on a fresh service over the same root warm-hits
/// the disk cache (single-flight cold build happened once).
#[test]
fn second_service_over_same_root_warm_hits() {
    let root = tmp_root("warm");
    let key = 0x39;
    let mut builds = 0;
    let mut warm = Vec::new();
    for _ in 0..2 {
        let service = DatasetService::new(ServiceConfig::new(&root)).unwrap();
        let outcome = service
            .open_dataset(key, "synthetic:test", "", 3, || {
                builds += 1;
                Ok(generate(&spec_for(90, 5, 1)).to_frame())
            })
            .unwrap();
        warm.push(outcome.is_warm());
    }
    assert_eq!(warm, [false, true]);
    assert_eq!(
        builds, 1,
        "the cold build must be single-flight across opens"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// StreamOrder is part of the public API surface; make sure the re-export
/// compiles and the enum is usable downstream.
#[test]
fn stream_order_is_public() {
    let order = StreamOrder::Shuffled { epoch: 0 };
    assert_ne!(order, StreamOrder::Sequential);
}
