//! The byte-budgeted shared shard pool.
//!
//! Every admitted job reads decoded shards out of one process-wide pool
//! instead of holding a private copy, so N concurrent trainings over the
//! same dataset cost one decode per shard, not N. The pool enforces a hard
//! byte budget with LRU eviction, with two safety properties:
//!
//! * **leases** — a shard handed to a job is refcounted; an in-use shard is
//!   never evicted, no matter how cold its LRU position. Eviction only ever
//!   considers fully released shards.
//! * **single-flight decode** — when two jobs miss on the same shard at
//!   once, one decodes and the other waits on the pool's condvar; the shard
//!   is decoded exactly once.
//!
//! Per-job attribution rides along: [`acquire`](ShardPool::acquire) takes
//! the job's counter block and charges the hit/miss/bytes to it, which is
//! what the isolation stats in the `candle` phase profiler and the
//! `table_datapipe` experiment report.

use crate::service::JobCounters;
use datacache::{CacheError, CachedDataset};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tensor::Tensor;

/// One decoded, training-ready shard resident in the pool.
pub struct PoolShard {
    /// Row offset of the shard in the source frame.
    pub start_row: usize,
    /// Rows in this shard.
    pub rows: usize,
    /// Columns per row.
    pub ncols: usize,
    /// Dense row-major `[rows, ncols]` f32 view.
    pub data: Tensor,
}

impl PoolShard {
    /// Resident bytes of the decoded shard (the f32 matrix dominates).
    pub fn resident_bytes(&self) -> u64 {
        (self.rows * self.ncols * std::mem::size_of::<f32>()) as u64
    }
}

/// Pool-wide counters, snapshotted by [`ShardPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from a resident shard.
    pub hits: u64,
    /// Acquires that had to decode (including waiting on another job's
    /// in-flight decode).
    pub misses: u64,
    /// Shards evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Bytes decoded into the pool over its lifetime.
    pub bytes_loaded: u64,
    /// Bytes handed to jobs (each acquire counts its shard once).
    pub bytes_served: u64,
    /// Bytes resident right now.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
}

enum Slot {
    /// Another acquire is decoding this shard; wait on the condvar.
    Loading,
    Ready {
        shard: Arc<PoolShard>,
        leases: usize,
        last_use: u64,
    },
}

struct Inner {
    slots: HashMap<(u64, u32), Slot>,
    clock: u64,
    stats: PoolStats,
}

/// A byte-budgeted, lease-refcounted cache of decoded shards shared by
/// every job the service admits.
pub struct ShardPool {
    budget: u64,
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl ShardPool {
    /// Creates a pool that evicts LRU released shards beyond
    /// `budget_bytes`.
    pub fn new(budget_bytes: u64) -> Arc<Self> {
        Arc::new(Self {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
            }),
            changed: Condvar::new(),
        })
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Leases shard `shard_index` of `dataset` (keyed by `dataset_key`),
    /// decoding it into the pool on a miss. `job` is charged for the
    /// access. The returned lease pins the shard until dropped.
    pub fn acquire(
        self: &Arc<Self>,
        dataset_key: u64,
        dataset: &CachedDataset,
        shard_index: u32,
        job: Option<&JobCounters>,
    ) -> Result<ShardLease, CacheError> {
        let key = (dataset_key, shard_index);
        let mut inner = self.inner.lock();
        loop {
            inner.clock += 1;
            let now = inner.clock;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready {
                    shard,
                    leases,
                    last_use,
                }) => {
                    *leases += 1;
                    *last_use = now;
                    let shard = Arc::clone(shard);
                    let bytes = shard.resident_bytes();
                    inner.stats.hits += 1;
                    inner.stats.bytes_served += bytes;
                    if let Some(job) = job {
                        job.shard_hits.fetch_add(1, Ordering::Relaxed);
                        job.bytes_served.fetch_add(bytes, Ordering::Relaxed);
                    }
                    return Ok(ShardLease {
                        pool: Arc::clone(self),
                        key,
                        shard,
                    });
                }
                Some(Slot::Loading) => {
                    // Single-flight: someone else is decoding this shard.
                    self.changed.wait(&mut inner);
                }
                None => {
                    inner.slots.insert(key, Slot::Loading);
                    inner.stats.misses += 1;
                    if let Some(job) = job {
                        job.shard_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(inner);
                    let decoded = decode_shard(dataset, shard_index);
                    let mut inner = self.inner.lock();
                    match decoded {
                        Ok(shard) => {
                            let shard = Arc::new(shard);
                            let bytes = shard.resident_bytes();
                            inner.clock += 1;
                            let last_use = inner.clock;
                            inner.slots.insert(
                                key,
                                Slot::Ready {
                                    shard: Arc::clone(&shard),
                                    leases: 1,
                                    last_use,
                                },
                            );
                            inner.stats.bytes_loaded += bytes;
                            inner.stats.bytes_served += bytes;
                            inner.stats.resident_bytes += bytes;
                            inner.stats.peak_resident_bytes = inner
                                .stats
                                .peak_resident_bytes
                                .max(inner.stats.resident_bytes);
                            if let Some(job) = job {
                                job.bytes_served.fetch_add(bytes, Ordering::Relaxed);
                            }
                            Self::evict_to_budget(&mut inner, self.budget);
                            self.changed.notify_all();
                            return Ok(ShardLease {
                                pool: Arc::clone(self),
                                key,
                                shard,
                            });
                        }
                        Err(e) => {
                            // Clear the placeholder so a later acquire can
                            // retry (e.g. after the shard is repaired).
                            inner.slots.remove(&key);
                            self.changed.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Evicts least-recently-used *released* shards until resident bytes
    /// fit the budget. Leased and in-flight shards are never candidates;
    /// if every resident shard is leased the pool stays over budget (the
    /// overshoot shows up in `peak_resident_bytes`).
    fn evict_to_budget(inner: &mut Inner, budget: u64) {
        while inner.stats.resident_bytes > budget {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready {
                        leases: 0,
                        last_use,
                        shard,
                    } => Some((*k, *last_use, shard.resident_bytes())),
                    _ => None,
                })
                .min_by_key(|&(_, last_use, _)| last_use);
            let Some((key, _, bytes)) = victim else { break };
            inner.slots.remove(&key);
            inner.stats.resident_bytes -= bytes;
            inner.stats.evictions += 1;
        }
    }

    fn release(&self, key: (u64, u32)) {
        let mut inner = self.inner.lock();
        if let Some(Slot::Ready { leases, .. }) = inner.slots.get_mut(&key) {
            *leases -= 1;
            if *leases == 0 {
                Self::evict_to_budget(&mut inner, self.budget);
            }
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ShardPool")
            .field("budget", &self.budget)
            .field("stats", &stats)
            .finish()
    }
}

/// Loads shard `index` from disk and shapes it for serving.
fn decode_shard(dataset: &CachedDataset, index: u32) -> Result<PoolShard, CacheError> {
    let frame = dataset.load_shard(index as usize)?;
    let start_row = dataset
        .manifest()
        .shards
        .get(index as usize)
        .map(|s| s.start_row)
        .unwrap_or(0);
    let (rows, ncols) = (frame.nrows(), frame.ncols());
    let data = Tensor::from_vec([rows, ncols], frame.to_f32_matrix())
        .map_err(|e| CacheError::Corrupt(format!("shard tensor shape: {e:?}")))?;
    Ok(PoolShard {
        start_row,
        rows,
        ncols,
        data,
    })
}

/// A refcount on one resident shard: while any lease is alive, the shard
/// cannot be evicted. Dropping the lease releases the refcount (and may
/// trigger deferred eviction if the pool is over budget).
pub struct ShardLease {
    pool: Arc<ShardPool>,
    key: (u64, u32),
    shard: Arc<PoolShard>,
}

impl ShardLease {
    /// The leased shard.
    pub fn shard(&self) -> &PoolShard {
        &self.shard
    }
}

impl Drop for ShardLease {
    fn drop(&mut self) {
        self.pool.release(self.key);
    }
}
