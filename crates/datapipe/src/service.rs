//! The dataset service: one shared data plane admitting N concurrent jobs.
//!
//! [`DatasetService`] owns what each training run used to own privately —
//! a disk [`CacheStore`], a decoded-shard pool, and a worker pool for
//! background batch assembly — and shares them across every admitted job:
//!
//! * **cold builds are single-flight**: the first job to open a dataset
//!   parses/generates and writes shards; every later open (concurrent or
//!   not) is a warm hit on the same manifest.
//! * **admission control**: a job is admitted only if the pool budget can
//!   hold its minimum working set (the largest shard double-buffered plus
//!   its in-flight batches) and the job cap is not exhausted. Rejection is
//!   a typed error, not a degraded stream.
//! * **isolation stats**: every job carries its own counter block
//!   (hits, misses, bytes served, consumer wait), so a fleet report can
//!   show exactly which job paid for what.
//!
//! Datasets the service serves stay leased in the disk store for the
//! service's lifetime, so disk-budget churn never deletes shards under an
//! active stream.

use crate::pool::{PoolStats, ShardPool};
use crate::stream::{EpochStream, StreamOrder};
use datacache::{CacheError, CacheOutcome, CacheStore, CachedDataset};
use dataio::Frame;
use parking_lot::Mutex;
use parx::WorkerPool;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one shared data plane.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory of the shared on-disk shard cache.
    pub cache_root: PathBuf,
    /// Byte budget for the in-memory decoded-shard pool.
    pub pool_budget_bytes: u64,
    /// Optional byte budget for the on-disk store (LRU-evicted under
    /// churn; `None` keeps the store unbounded like the seed behaviour).
    pub disk_budget_bytes: Option<u64>,
    /// Worker threads assembling batches in the background.
    pub threads: usize,
    /// Maximum concurrently admitted jobs.
    pub max_jobs: usize,
    /// Bounded look-ahead per job stream: at most this many batches are
    /// in flight or parked ahead of the consumer (backpressure).
    pub queue_depth: usize,
}

impl ServiceConfig {
    /// A sensible default plane rooted at `cache_root`: 256 MiB pool, two
    /// assembly workers, 64-job cap, double-buffered streams.
    pub fn new(cache_root: impl Into<PathBuf>) -> Self {
        Self {
            cache_root: cache_root.into(),
            pool_budget_bytes: 256 << 20,
            disk_budget_bytes: None,
            threads: 2,
            max_jobs: 64,
            queue_depth: 2,
        }
    }
}

/// Why a job was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The job cap is exhausted.
    Saturated {
        /// Jobs currently admitted.
        active: usize,
        /// The configured cap.
        max_jobs: usize,
    },
    /// The pool budget cannot hold the job's minimum working set.
    InsufficientBudget {
        /// Bytes the job needs resident at once.
        needed: u64,
        /// The configured pool budget.
        budget: u64,
    },
    /// The referenced dataset was never opened on this service.
    UnknownDataset {
        /// The missing key.
        key: u64,
    },
    /// The job's x/y column split does not fit the dataset.
    BadSplit {
        /// Requested feature columns.
        features: usize,
        /// Columns the dataset actually has.
        ncols: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Saturated { active, max_jobs } => {
                write!(f, "service saturated: {active} of {max_jobs} jobs active")
            }
            AdmitError::InsufficientBudget { needed, budget } => {
                write!(
                    f,
                    "working set needs {needed} bytes, pool budget is {budget}"
                )
            }
            AdmitError::UnknownDataset { key } => {
                write!(f, "dataset {key:#x} was never opened on this service")
            }
            AdmitError::BadSplit { features, ncols } => {
                write!(f, "feature split {features} does not fit {ncols} columns")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// What one job asks of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Key of a dataset previously opened via
    /// [`DatasetService::open_dataset`].
    pub dataset: u64,
    /// Leading columns served as `x`; the rest are `y`.
    pub features: usize,
    /// Rows per batch.
    pub batch: usize,
    /// The job's shuffle seed (independent of every other job).
    pub seed: u64,
}

/// Lock-free per-job counters, shared between the job handle and its
/// background assembly tasks.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Shard acquires served from the resident pool.
    pub shard_hits: AtomicU64,
    /// Shard acquires that decoded from disk.
    pub shard_misses: AtomicU64,
    /// Bytes of shard data served to this job.
    pub bytes_served: AtomicU64,
    /// Times the consumer blocked on an unassembled batch.
    pub waits: AtomicU64,
    /// Total consumer blocked time, nanoseconds.
    pub wait_ns: AtomicU64,
    /// Batches delivered.
    pub batches: AtomicU64,
    /// Rows delivered.
    pub rows: AtomicU64,
}

/// A point-in-time snapshot of one job's isolation stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Shard acquires served from the resident pool.
    pub shard_hits: u64,
    /// Shard acquires that decoded from disk.
    pub shard_misses: u64,
    /// Bytes of shard data served to this job.
    pub bytes_served: u64,
    /// Times the consumer blocked on an unassembled batch.
    pub waits: u64,
    /// Total consumer blocked time, nanoseconds.
    pub wait_ns: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Rows delivered.
    pub rows: u64,
}

impl JobStats {
    /// Total time the job's consumer spent blocked on the stream.
    pub fn wait_time(&self) -> Duration {
        Duration::from_nanos(self.wait_ns)
    }
}

/// Service-level job accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs currently admitted.
    pub active_jobs: usize,
    /// Jobs admitted over the service lifetime.
    pub admitted: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Datasets registered.
    pub datasets: usize,
}

struct RegisteredDataset {
    dataset: Arc<CachedDataset>,
    /// Largest decoded shard, bytes — the unit of admission control.
    max_shard_bytes: u64,
}

struct ServiceInner {
    datasets: HashMap<u64, RegisteredDataset>,
    active_jobs: usize,
    admitted: u64,
    rejected: u64,
    next_job_id: u64,
}

/// One shared data plane serving many concurrent training/HPO jobs.
pub struct DatasetService {
    config: ServiceConfig,
    store: CacheStore,
    pool: Arc<ShardPool>,
    workers: Arc<WorkerPool>,
    /// Serializes dataset opens so cold builds are single-flight.
    open_lock: Mutex<()>,
    inner: Mutex<ServiceInner>,
}

impl DatasetService {
    /// Opens (creating if needed) a service over the given configuration.
    pub fn new(config: ServiceConfig) -> Result<Arc<Self>, CacheError> {
        let store = match config.disk_budget_bytes {
            Some(budget) => CacheStore::with_budget(&config.cache_root, budget)?,
            None => CacheStore::new(&config.cache_root)?,
        };
        Ok(Arc::new(Self {
            pool: ShardPool::new(config.pool_budget_bytes),
            workers: Arc::new(WorkerPool::new(config.threads.max(1))),
            store,
            open_lock: Mutex::new(()),
            inner: Mutex::new(ServiceInner {
                datasets: HashMap::new(),
                active_jobs: 0,
                admitted: 0,
                rejected: 0,
                next_job_id: 0,
            }),
            config,
        }))
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared decoded-shard pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Service-level job accounting.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.inner.lock();
        ServiceStats {
            active_jobs: inner.active_jobs,
            admitted: inner.admitted,
            rejected: inner.rejected,
            datasets: inner.datasets.len(),
        }
    }

    /// The underlying disk store (for inspection; jobs never touch it
    /// directly).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// Opens (warm) or builds (cold, single-flight) the dataset cached
    /// under `key` and registers it for admission. Concurrent opens of the
    /// same key serialize: exactly one runs `build`, the rest warm-hit.
    /// The dataset stays disk-leased until the service is dropped.
    pub fn open_dataset(
        &self,
        key: u64,
        source_desc: &str,
        tag: &str,
        nshards: usize,
        build: impl FnOnce() -> Result<Frame, CacheError>,
    ) -> Result<CacheOutcome, CacheError> {
        let _flight = self.open_lock.lock();
        if self.inner.lock().datasets.contains_key(&key) {
            return Ok(CacheOutcome::WarmHit {
                manifest_load: Duration::ZERO,
            });
        }
        let (dataset, outcome) = self
            .store
            .open_or_build(key, source_desc, tag, nshards, build)?;
        // Pin the dataset in the disk store: budget churn from other
        // datasets must never delete shards under an active stream.
        self.store.lease(key);
        let max_shard_bytes = dataset
            .manifest()
            .shards
            .iter()
            // Decoded size: on-disk f64 columns become a resident f32
            // matrix, so memory is roughly half the shard file.
            .map(|s| (s.rows * dataset.ncols() * std::mem::size_of::<f32>()) as u64)
            .max()
            .unwrap_or(0);
        self.inner.lock().datasets.insert(
            key,
            RegisteredDataset {
                dataset: Arc::new(dataset),
                max_shard_bytes,
            },
        );
        Ok(outcome)
    }

    /// Row count of a registered dataset.
    pub fn dataset_rows(&self, key: u64) -> Option<usize> {
        self.inner
            .lock()
            .datasets
            .get(&key)
            .map(|d| d.dataset.nrows())
    }

    /// Column count of a registered dataset.
    pub fn dataset_cols(&self, key: u64) -> Option<usize> {
        self.inner
            .lock()
            .datasets
            .get(&key)
            .map(|d| d.dataset.ncols())
    }

    /// Admits a job, or explains why it cannot run right now.
    pub fn admit(self: &Arc<Self>, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        let mut inner = self.inner.lock();
        let (dataset, max_shard_bytes) = match inner.datasets.get(&spec.dataset) {
            Some(r) => (Arc::clone(&r.dataset), r.max_shard_bytes),
            None => {
                inner.rejected += 1;
                return Err(AdmitError::UnknownDataset { key: spec.dataset });
            }
        };
        if spec.features >= dataset.ncols() {
            inner.rejected += 1;
            return Err(AdmitError::BadSplit {
                features: spec.features,
                ncols: dataset.ncols(),
            });
        }
        if inner.active_jobs >= self.config.max_jobs {
            inner.rejected += 1;
            return Err(AdmitError::Saturated {
                active: inner.active_jobs,
                max_jobs: self.config.max_jobs,
            });
        }
        // Minimum working set: a batch can straddle two shards, and the
        // stream keeps `queue_depth` batches in flight — so the job needs
        // at least two resident shards' worth of budget headroom.
        let needed = max_shard_bytes * 2;
        if needed > self.pool.budget_bytes() {
            inner.rejected += 1;
            return Err(AdmitError::InsufficientBudget {
                needed,
                budget: self.pool.budget_bytes(),
            });
        }
        inner.active_jobs += 1;
        inner.admitted += 1;
        let id = inner.next_job_id;
        inner.next_job_id += 1;
        drop(inner);
        Ok(JobHandle {
            service: Arc::clone(self),
            dataset,
            spec,
            id,
            counters: Arc::new(JobCounters::default()),
        })
    }
}

impl std::fmt::Debug for DatasetService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DatasetService")
            .field("root", &self.config.cache_root)
            .field("pool_budget_bytes", &self.config.pool_budget_bytes)
            .field("active_jobs", &stats.active_jobs)
            .field("datasets", &stats.datasets)
            .finish()
    }
}

impl Drop for DatasetService {
    fn drop(&mut self) {
        let inner = self.inner.lock();
        for key in inner.datasets.keys() {
            self.store.release(*key);
        }
    }
}

/// One admitted job's handle onto the shared plane. Dropping it releases
/// the admission slot.
pub struct JobHandle {
    service: Arc<DatasetService>,
    dataset: Arc<CachedDataset>,
    spec: JobSpec,
    id: u64,
    counters: Arc<JobCounters>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The admitted spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Rows in the job's dataset.
    pub fn nrows(&self) -> usize {
        self.dataset.nrows()
    }

    /// Target columns (`ncols - features`).
    pub fn ycols(&self) -> usize {
        self.dataset.ncols() - self.spec.features
    }

    /// The stream of epoch `epoch`: batches in the job's seeded global
    /// shuffle order, assembled in the background with bounded look-ahead.
    /// Bit-identical for a given `(dataset, seed, epoch, batch)` whatever
    /// the thread count or neighbour load.
    pub fn epoch(&self, epoch: u64) -> EpochStream {
        EpochStream::new(self, StreamOrder::Shuffled { epoch })
    }

    /// The unshuffled stream (rows in storage order) — the bulk-load path
    /// the `candle` pipeline uses to materialize train/test tensors.
    pub fn sequential(&self) -> EpochStream {
        EpochStream::new(self, StreamOrder::Sequential)
    }

    /// Snapshot of this job's isolation stats.
    pub fn stats(&self) -> JobStats {
        let c = &self.counters;
        JobStats {
            shard_hits: c.shard_hits.load(Ordering::Relaxed),
            shard_misses: c.shard_misses.load(Ordering::Relaxed),
            bytes_served: c.bytes_served.load(Ordering::Relaxed),
            waits: c.waits.load(Ordering::Relaxed),
            wait_ns: c.wait_ns.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            rows: c.rows.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn service(&self) -> &Arc<DatasetService> {
        &self.service
    }

    pub(crate) fn dataset(&self) -> &Arc<CachedDataset> {
        &self.dataset
    }

    pub(crate) fn counters(&self) -> &Arc<JobCounters> {
        &self.counters
    }

    pub(crate) fn pool(&self) -> &Arc<ShardPool> {
        &self.service.pool
    }

    pub(crate) fn workers(&self) -> &Arc<WorkerPool> {
        &self.service.workers
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.service.inner.lock().active_jobs -= 1;
    }
}
