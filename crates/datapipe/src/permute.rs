//! Seeded global shuffle as an index-mapping bijection.
//!
//! A fleet of concurrent jobs cannot afford one materialized permutation
//! vector per `(job, epoch)` — at P1B3 scale that is hundreds of megabytes
//! of `usize` per epoch per job, all of it pure bookkeeping. Following the
//! reproducible-pipeline literature (Uber's shared data service shuffles by
//! *function*, not by table), the shuffle here is a keyed Feistel network
//! over the row-index domain: `apply(i)` computes where row slot `i` lands,
//! in O(1) space, and the full map `[0, n) → [0, n)` is a bijection for
//! every seed and every `n` — including non-powers-of-two, via
//! cycle-walking.
//!
//! Determinism is structural: the permutation is a pure function of
//! `(n, job seed, epoch)`, so a job's batch stream is identical whether it
//! runs alone or next to 31 neighbours, on 1 worker thread or 8.

use xrng::derive_seed;

/// Feistel rounds. Four rounds of a keyed balanced network are the
/// standard floor for statistical mixing (Luby–Rackoff); the keys differ
/// per round, per job, and per epoch.
const ROUNDS: usize = 4;

/// A keyed bijection over `[0, n)` computed per index, never materialized.
#[derive(Debug, Clone)]
pub struct EpochPermutation {
    n: u64,
    /// Bits in each Feistel half; the walk domain is `2^(2·half_bits)`.
    half_bits: u32,
    keys: [u64; ROUNDS],
}

impl EpochPermutation {
    /// Builds the permutation of `[0, n)` keyed by `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let n = n as u64;
        // Smallest even-bit domain covering n: the balanced network needs
        // two equal halves. n ≤ 1 still gets a 2-bit domain; the walk
        // collapses it to the identity in at most 4 steps.
        let bits = 64 - n.saturating_sub(1).leading_zeros().min(63);
        let half_bits = bits.div_ceil(2).max(1);
        let mut keys = [0u64; ROUNDS];
        for (round, key) in keys.iter_mut().enumerate() {
            *key = derive_seed(seed, 0xFE15_7E00 + round as u64);
        }
        Self { n, half_bits, keys }
    }

    /// The permutation a job uses for one epoch: keys derived from the
    /// job's seed and the epoch index, so every epoch reshuffles and every
    /// job shuffles independently.
    pub fn for_job_epoch(n: usize, job_seed: u64, epoch: u64) -> Self {
        Self::new(n, derive_seed(derive_seed(job_seed, 0x5EED_5817), epoch))
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maps slot `i` to its shuffled row index.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn apply(&self, i: usize) -> usize {
        let i = i as u64;
        assert!(i < self.n, "index {i} out of range for domain {}", self.n);
        let mask = (1u64 << self.half_bits) - 1;
        let mut x = i;
        // Cycle-walk: the network permutes the padded even-bit domain;
        // re-encrypt until the image lands back inside [0, n). Because the
        // padded map is itself a bijection, the walk always terminates and
        // the restriction to [0, n) stays a bijection.
        loop {
            let mut l = x >> self.half_bits;
            let mut r = x & mask;
            for key in self.keys {
                let f = mix(r ^ key) & mask;
                (l, r) = (r, l ^ f);
            }
            x = (l << self.half_bits) | r;
            if x < self.n {
                return x as usize;
            }
        }
    }
}

/// SplitMix64-style finalizer used as the Feistel round function.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    fn assert_bijection(n: usize, seed: u64) {
        let p = EpochPermutation::new(n, seed);
        let mut seen = vec![false; n];
        for i in 0..n {
            let j = p.apply(i);
            assert!(j < n, "n={n} seed={seed:#x}: {i} -> {j} escapes domain");
            assert!(!seen[j], "n={n} seed={seed:#x}: {j} hit twice");
            seen[j] = true;
        }
    }

    #[test]
    fn bijection_on_edge_domains() {
        for n in [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127] {
            for seed in [0, 1, 0xDEAD_BEEF] {
                assert_bijection(n, seed);
            }
        }
    }

    #[test]
    fn bijection_on_random_non_power_of_two_domains() {
        let mut rng = xrng::seeded(0xB11E_C7);
        for _ in 0..40 {
            let n = 1 + rng.next_index(5000);
            assert_bijection(n, rng.next_u64());
        }
    }

    #[test]
    fn deterministic_in_job_and_epoch() {
        let a = EpochPermutation::for_job_epoch(1000, 7, 3);
        let b = EpochPermutation::for_job_epoch(1000, 7, 3);
        for i in 0..1000 {
            assert_eq!(a.apply(i), b.apply(i));
        }
    }

    #[test]
    fn different_jobs_and_epochs_shuffle_differently() {
        let n = 512;
        let base = EpochPermutation::for_job_epoch(n, 1, 0);
        for (job, epoch) in [(1u64, 1u64), (2, 0), (9, 5)] {
            let other = EpochPermutation::for_job_epoch(n, job, epoch);
            let same = (0..n).filter(|&i| base.apply(i) == other.apply(i)).count();
            assert!(
                same < n / 4,
                "job {job} epoch {epoch}: {same}/{n} fixed points"
            );
        }
    }

    #[test]
    fn actually_shuffles() {
        let p = EpochPermutation::new(1024, 42);
        let fixed = (0..1024).filter(|&i| p.apply(i) == i).count();
        assert!(fixed < 32, "{fixed}/1024 fixed points is not a shuffle");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        EpochPermutation::new(10, 1).apply(10);
    }
}
