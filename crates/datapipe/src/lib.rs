//! `datapipe` — a shared dataset service for N concurrent trainings.
//!
//! The paper's benchmarks never run one-at-a-time in production: CANDLE
//! exists to drive fleets of concurrent hyperparameter-search trainings,
//! and at fleet scale the data plane is the bottleneck (Yang & Cong;
//! Uber's reproducible-pipeline service, PAPERS.md). This crate promotes
//! `datacache` + the turbo ingest from a per-run library into one shared
//! data plane:
//!
//! * [`service`] — [`DatasetService`]: admission control against a
//!   byte-budgeted shard pool, single-flight cold builds, per-job
//!   isolation stats, disk-store leases for active datasets.
//! * [`pool`] — [`ShardPool`]: decoded shards shared across jobs with
//!   refcounted leases (an in-use shard is never evicted) and LRU
//!   eviction under the byte budget.
//! * [`permute`] — [`EpochPermutation`]: the seeded `(job, epoch)` global
//!   shuffle as a cycle-walking Feistel bijection over row indices — O(1)
//!   space, no permutation vector ever materialized.
//! * [`stream`] — [`EpochStream`]: ordered background batch assembly on
//!   `parx` with bounded-queue backpressure, double-buffered like the
//!   `datacache` prefetcher.
//!
//! The load-bearing guarantee: a job's batch stream is **bit-identical**
//! whether it runs alone or beside 31 neighbours, under any worker thread
//! count, because every batch is a pure function of
//! `(dataset, seed, epoch, batch size)` and the pool only changes *where*
//! bytes come from, never *which* bytes.

pub mod permute;
pub mod pool;
pub mod service;
pub mod stream;

pub use permute::EpochPermutation;
pub use pool::{PoolShard, PoolStats, ShardLease, ShardPool};
pub use service::{
    AdmitError, DatasetService, JobCounters, JobHandle, JobSpec, JobStats, ServiceConfig,
    ServiceStats,
};
pub use stream::{Batch, EpochStream, StreamOrder};

/// FNV-1a fingerprint of a batch stream's exact contents (shape and every
/// f32 bit pattern, in yield order). Two streams with equal fingerprints
/// delivered the same batches — the equality the multi-job isolation
/// tests and `table_datapipe` assert.
pub fn stream_fingerprint(
    stream: impl Iterator<Item = Result<Batch, datacache::CacheError>>,
) -> Result<u64, datacache::CacheError> {
    use datacache::format::{fnv1a64_extend, FNV_OFFSET};
    let mut hash = FNV_OFFSET;
    for item in stream {
        let batch = item?;
        for t in [&batch.x, &batch.y] {
            for &d in t.shape().dims() {
                hash = fnv1a64_extend(hash, &(d as u64).to_le_bytes());
            }
            for &v in t.data() {
                hash = fnv1a64_extend(hash, &v.to_bits().to_le_bytes());
            }
        }
    }
    Ok(hash)
}
