//! Per-job streaming epoch iterators with bounded-queue backpressure.
//!
//! An [`EpochStream`] yields a job's batches strictly in order while
//! assembling up to `queue_depth` batches ahead on the service's shared
//! [`parx::WorkerPool`] — the same double-buffering discipline as
//! `datacache::Prefetcher`, lifted from shards to shuffled batches. The
//! bounded window is the backpressure: a slow consumer never accumulates
//! more than `queue_depth` assembled batches of memory, and a fast
//! consumer's blocked time is counted per job (`waits`, `wait_ns`).
//!
//! Batch contents are a pure function of `(dataset, seed, epoch, batch
//! size)`: the gather order comes from the seeded Feistel permutation and
//! every task writes a disjoint batch, so the stream is bit-identical
//! across worker thread counts and regardless of what the other N−1 jobs
//! are doing to the shared pool.

use crate::permute::EpochPermutation;
use crate::pool::ShardLease;
use crate::service::JobHandle;
use datacache::CacheError;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;
use tensor::Tensor;

/// How an epoch walks the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Rows in storage order (bulk materialization).
    Sequential,
    /// The job's seeded global shuffle for `epoch`.
    Shuffled {
        /// Epoch index keying the permutation.
        epoch: u64,
    },
}

/// One assembled training batch.
pub struct Batch {
    /// Batch position within the epoch (0-based).
    pub index: usize,
    /// `[rows, features]` inputs.
    pub x: Tensor,
    /// `[rows, ycols]` targets.
    pub y: Tensor,
}

/// Everything a background assembly task needs, shared by `Arc`.
struct AssembleCtx {
    job: JobContext,
    perm: Option<EpochPermutation>,
}

/// The immutable slice of a [`JobHandle`] the tasks capture.
struct JobContext {
    pool: Arc<crate::pool::ShardPool>,
    dataset: Arc<datacache::CachedDataset>,
    dataset_key: u64,
    counters: Arc<crate::service::JobCounters>,
    features: usize,
    batch: usize,
    nrows: usize,
    ncols: usize,
    /// `start_row` of each shard, ascending — batch assembly locates the
    /// shard owning a global row by partition point.
    shard_starts: Vec<usize>,
}

type Slot = (usize, Result<Batch, CacheError>);

/// An ordered, background-assembled iterator over one job's epoch.
pub struct EpochStream {
    ctx: Arc<AssembleCtx>,
    workers: Arc<parx::WorkerPool>,
    total: usize,
    next_pos: usize,
    submitted: usize,
    depth: usize,
    tx: Sender<Slot>,
    rx: Receiver<Slot>,
    parked: HashMap<usize, Result<Batch, CacheError>>,
}

impl EpochStream {
    pub(crate) fn new(job: &JobHandle, order: StreamOrder) -> Self {
        let nrows = job.nrows();
        let spec = *job.spec();
        let perm = match order {
            StreamOrder::Sequential => None,
            StreamOrder::Shuffled { epoch } => {
                Some(EpochPermutation::for_job_epoch(nrows, spec.seed, epoch))
            }
        };
        let ctx = Arc::new(AssembleCtx {
            job: JobContext {
                pool: Arc::clone(job.pool()),
                dataset: Arc::clone(job.dataset()),
                dataset_key: spec.dataset,
                counters: Arc::clone(job.counters()),
                features: spec.features,
                batch: spec.batch.max(1),
                nrows,
                ncols: job.dataset().ncols(),
                shard_starts: job
                    .dataset()
                    .manifest()
                    .shards
                    .iter()
                    .map(|s| s.start_row)
                    .collect(),
            },
            perm,
        });
        let total = nrows.div_ceil(ctx.job.batch);
        let (tx, rx) = channel();
        let mut stream = Self {
            ctx,
            workers: Arc::clone(job.workers()),
            total,
            next_pos: 0,
            submitted: 0,
            depth: job.service().config().queue_depth.max(1),
            tx,
            rx,
            parked: HashMap::new(),
        };
        stream.fill_window();
        stream
    }

    /// Batches this stream will yield.
    pub fn len_total(&self) -> usize {
        self.total
    }

    /// Keeps `depth` assemblies in flight (the backpressure bound).
    fn fill_window(&mut self) {
        while self.submitted < self.total && self.submitted < self.next_pos + self.depth {
            let pos = self.submitted;
            self.submitted += 1;
            let ctx = Arc::clone(&self.ctx);
            let tx = self.tx.clone();
            self.workers.submit(move || {
                let result = assemble(&ctx, pos);
                // The consumer may have been dropped mid-epoch; that just
                // discards the assembled batch.
                let _ = tx.send((pos, result));
            });
        }
    }

    /// Blocks until the completion for `pos` arrives, parking any
    /// out-of-order completions received in the meantime.
    fn wait_for(&mut self, pos: usize) -> Result<Batch, CacheError> {
        loop {
            if let Some(result) = self.parked.remove(&pos) {
                return result;
            }
            let (got_pos, result) = self
                .rx
                .recv()
                .expect("assembly workers never hang up while tasks are in flight");
            if got_pos == pos {
                return result;
            }
            self.parked.insert(got_pos, result);
        }
    }
}

impl Iterator for EpochStream {
    type Item = Result<Batch, CacheError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_pos >= self.total {
            return None;
        }
        let pos = self.next_pos;
        while let Ok((got_pos, result)) = self.rx.try_recv() {
            self.parked.insert(got_pos, result);
        }
        let counters = Arc::clone(&self.ctx.job.counters);
        let item = if let Some(result) = self.parked.remove(&pos) {
            result
        } else {
            let start = Instant::now();
            let result = self.wait_for(pos);
            counters.waits.fetch_add(1, Ordering::Relaxed);
            counters
                .wait_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        };
        if let Ok(batch) = &item {
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters
                .rows
                .fetch_add(batch.x.shape().dims()[0] as u64, Ordering::Relaxed);
        }
        self.next_pos += 1;
        self.fill_window();
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.next_pos;
        (left, Some(left))
    }
}

/// Gathers batch `pos`: maps each slot through the permutation, leases
/// the owning shards from the shared pool (one lease per shard per
/// batch), and copies rows into fresh x/y tensors.
fn assemble(ctx: &AssembleCtx, pos: usize) -> Result<Batch, CacheError> {
    let job = &ctx.job;
    let start = pos * job.batch;
    let end = (start + job.batch).min(job.nrows);
    let rows = end - start;
    let ycols = job.ncols - job.features;
    let mut x = vec![0f32; rows * job.features];
    let mut y = vec![0f32; rows * ycols];
    let mut leases: Vec<Option<ShardLease>> = Vec::new();
    leases.resize_with(job.shard_starts.len(), || None);
    for (k, slot) in (start..end).enumerate() {
        let row = match &ctx.perm {
            Some(p) => p.apply(slot),
            None => slot,
        };
        let shard_idx = job.shard_starts.partition_point(|&s| s <= row) - 1;
        if leases[shard_idx].is_none() {
            leases[shard_idx] = Some(job.pool.acquire(
                job.dataset_key,
                &job.dataset,
                shard_idx as u32,
                Some(&job.counters),
            )?);
        }
        let shard = leases[shard_idx].as_ref().expect("just acquired").shard();
        let local = row - shard.start_row;
        let src = &shard.data.data()[local * job.ncols..(local + 1) * job.ncols];
        x[k * job.features..(k + 1) * job.features].copy_from_slice(&src[..job.features]);
        y[k * ycols..(k + 1) * ycols].copy_from_slice(&src[job.features..]);
    }
    let x = Tensor::from_vec([rows, job.features], x)
        .map_err(|e| CacheError::Corrupt(format!("batch x shape: {e:?}")))?;
    let y = Tensor::from_vec([rows, ycols], y)
        .map_err(|e| CacheError::Corrupt(format!("batch y shape: {e:?}")))?;
    Ok(Batch { index: pos, x, y })
}
