//! Deterministic contiguous chunking of index ranges.
//!
//! All fork–join helpers in this crate split `0..n` into at most `k`
//! contiguous chunks whose sizes differ by at most one. Determinism matters:
//! floating-point reductions are only reproducible if the partition is a
//! pure function of `(n, k)`.

/// A contiguous index range assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Index of this chunk among the produced chunks.
    pub index: usize,
    /// First element index (inclusive).
    pub start: usize,
    /// One past the last element index.
    pub end: usize,
}

impl Chunk {
    /// Number of elements covered by the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the chunk covers no elements.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `0..n` into at most `max_chunks` contiguous chunks of near-equal
/// size. Produces no empty chunks; returns fewer than `max_chunks` chunks
/// when `n < max_chunks`, and an empty vector when `n == 0`.
///
/// The first `n % k` chunks receive one extra element, mirroring the
/// balanced block distribution used in MPI codes.
///
/// # Panics
/// Panics if `max_chunks == 0`.
pub fn chunk_ranges(n: usize, max_chunks: usize) -> Vec<Chunk> {
    assert!(max_chunks > 0, "chunk_ranges: max_chunks must be positive");
    if n == 0 {
        return Vec::new();
    }
    let k = max_chunks.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for index in 0..k {
        let len = base + usize::from(index < extra);
        out.push(Chunk {
            index,
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn covers_range_exactly() {
        let chunks = chunk_ranges(10, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks[0],
            Chunk {
                index: 0,
                start: 0,
                end: 4
            }
        );
        assert_eq!(
            chunks[1],
            Chunk {
                index: 1,
                start: 4,
                end: 7
            }
        );
        assert_eq!(
            chunks[2],
            Chunk {
                index: 2,
                start: 7,
                end: 10
            }
        );
    }

    #[test]
    fn fewer_items_than_chunks() {
        let chunks = chunk_ranges(2, 8);
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn zero_items_gives_no_chunks() {
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_chunks must be positive")]
    fn zero_chunks_panics() {
        chunk_ranges(10, 0);
    }

    #[test]
    fn single_chunk_covers_all() {
        let chunks = chunk_ranges(17, 1);
        assert_eq!(
            chunks,
            vec![Chunk {
                index: 0,
                start: 0,
                end: 17
            }]
        );
    }

    proptest! {
        #[test]
        fn partition_properties(n in 0usize..10_000, k in 1usize..64) {
            let chunks = chunk_ranges(n, k);
            // Full coverage, in order, no gaps or overlaps.
            let mut cursor = 0;
            for (i, c) in chunks.iter().enumerate() {
                prop_assert_eq!(c.index, i);
                prop_assert_eq!(c.start, cursor);
                prop_assert!(c.end > c.start);
                cursor = c.end;
            }
            prop_assert_eq!(cursor, n);
            // Balanced: sizes differ by at most one.
            if let (Some(max), Some(min)) = (
                chunks.iter().map(Chunk::len).max(),
                chunks.iter().map(Chunk::len).min(),
            ) {
                prop_assert!(max - min <= 1);
            }
            // Never more chunks than requested or than items.
            prop_assert!(chunks.len() <= k);
            prop_assert!(chunks.len() <= n.max(1));
        }
    }
}
