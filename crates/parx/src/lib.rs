//! Parallel-execution substrate for the CANDLE reproduction.
//!
//! The heavy numeric kernels (`tensor`'s matmul/conv, `dataio`'s CSV parse)
//! need fork–join data parallelism, and the simulated Horovod workers in
//! `collectives` need long-lived threads. This crate provides both:
//!
//! * [`parallel_for`] / [`parallel_map`] — scoped fork–join over index
//!   ranges, built directly on `std::thread::scope`, with work split into
//!   contiguous chunks (one per thread) so cache behaviour matches what an
//!   HPC programmer would hand-write;
//! * [`WorkerPool`] — a persistent pool with crossbeam channels for
//!   fire-and-forget tasks plus a `join` barrier, used where thread spawn
//!   cost would otherwise dominate (per-batch-step parallelism).
//!
//! The design follows the "chunked parallel iterator" shape of rayon (see
//! the workspace coding guides) but is implemented in-tree: the reproduction
//! needs deterministic chunk boundaries so that numeric reductions are
//! bitwise reproducible for a fixed thread count.

mod chunk;
mod pool;
mod scope;

pub use chunk::{chunk_ranges, Chunk};
pub use pool::WorkerPool;
pub use scope::{parallel_for, parallel_for_grained, parallel_map, parallel_reduce};

/// Returns the degree of parallelism used by default: the number of
/// available hardware threads, with a floor of one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_threads_is_positive() {
        assert!(super::default_threads() >= 1);
    }
}
