//! Persistent worker pool.
//!
//! The fork–join helpers in [`crate::scope`] spawn threads per call, which
//! is fine for coarse work but too costly inside a per-batch-step loop. The
//! `WorkerPool` keeps `k` threads alive and feeds them boxed closures over a
//! crossbeam MPMC channel; `join` is a barrier that waits until every task
//! submitted so far has finished.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Tracks outstanding tasks for the `join` barrier.
struct Outstanding {
    count: Mutex<usize>,
    all_done: Condvar,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    outstanding: Arc<Outstanding>,
    restarts: Arc<AtomicU64>,
    size: usize,
}

impl WorkerPool {
    /// Creates a pool with `size` threads.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "WorkerPool: size must be positive");
        let (sender, receiver) = unbounded::<Task>();
        let outstanding = Arc::new(Outstanding {
            count: Mutex::new(0),
            all_done: Condvar::new(),
        });
        let restarts = Arc::new(AtomicU64::new(0));
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                let outstanding = Arc::clone(&outstanding);
                let restarts = Arc::clone(&restarts);
                std::thread::Builder::new()
                    .name(format!("parx-worker-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            // A panicking task must not take the worker
                            // down with it: that would silently shrink the
                            // pool and leak the outstanding count, hanging
                            // `join` forever. Catch the panic, count the
                            // restart, and keep serving.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                            if outcome.is_err() {
                                restarts.fetch_add(1, Ordering::Relaxed);
                            }
                            let mut count = outstanding.count.lock();
                            *count -= 1;
                            if *count == 0 {
                                outstanding.all_done.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            outstanding,
            restarts,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of times a worker recovered from a panicking task. Each
    /// recovery is logically a worker death + immediate restart; a healthy
    /// run reports zero.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Tasks submitted but not yet finished (queued plus running) — the
    /// live queue-depth signal shared-service schedulers report.
    pub fn pending(&self) -> usize {
        *self.outstanding.count.lock()
    }

    /// Submits a task for execution on some worker.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, task: F) {
        {
            let mut count = self.outstanding.count.lock();
            *count += 1;
        }
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(task))
            .expect("worker channel closed");
    }

    /// Blocks until every submitted task has completed.
    pub fn join(&self) {
        let mut count = self.outstanding.count.lock();
        while *count > 0 {
            self.outstanding.all_done.wait(&mut count);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining tasks and exit.
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_tasks() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.pending(), 0, "join must drain the pending count");
    }

    #[test]
    fn join_with_no_tasks_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.join();
    }

    #[test]
    fn multiple_join_rounds() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=5 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn drop_waits_for_in_flight_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_panics() {
        WorkerPool::new(0);
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        // Interleave panicking and healthy tasks; join must not hang and
        // every healthy task must still run.
        for i in 0..40 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                if i % 4 == 0 {
                    panic!("injected task failure {i}");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        assert_eq!(pool.restarts(), 10);
        // The pool stays fully usable afterwards.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn tasks_run_on_pool_threads() {
        let pool = WorkerPool::new(2);
        let names = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..8 {
            let names = Arc::clone(&names);
            pool.submit(move || {
                let name = std::thread::current().name().unwrap_or("").to_string();
                names.lock().push(name);
            });
        }
        pool.join();
        let names = names.lock();
        assert_eq!(names.len(), 8);
        assert!(names.iter().all(|n| n.starts_with("parx-worker-")));
    }
}
