//! Scoped fork–join helpers.
//!
//! These are the workhorses behind the numeric kernels. Each call splits an
//! index range into contiguous chunks (one per thread) and runs the body on
//! scoped threads, so borrows of surrounding data work without `Arc`.
//! For small ranges the helpers degrade to a sequential loop — spawn cost
//! would otherwise swamp the work (see the perf-book guidance on
//! parallelization thresholds).

use crate::chunk::{chunk_ranges, Chunk};

/// Minimum number of items per spawned thread before parallelism pays off.
/// Below `threads * MIN_ITEMS_PER_THREAD` items the helpers run sequentially.
const MIN_ITEMS_PER_THREAD: usize = 256;

/// Runs `body(chunk)` for every chunk of `0..n`, in parallel across up to
/// `threads` scoped threads.
///
/// The chunk partition is a pure function of `(n, threads)`, so side effects
/// that are chunk-local (e.g. writing disjoint slices) are deterministic.
pub fn parallel_for<F>(n: usize, threads: usize, body: F)
where
    F: Fn(Chunk) + Sync,
{
    assert!(threads > 0, "parallel_for: threads must be positive");
    if n == 0 {
        return;
    }
    let chunks = chunk_ranges(n, threads);
    if chunks.len() == 1 || n < threads * MIN_ITEMS_PER_THREAD {
        for c in chunks {
            body(c);
        }
        return;
    }
    std::thread::scope(|scope| {
        // First chunk runs on the calling thread; the rest are spawned.
        let (first, rest) = chunks.split_first().expect("nonempty by construction");
        let handles: Vec<_> = rest
            .iter()
            .map(|&c| {
                scope.spawn({
                    let body = &body;
                    move || body(c)
                })
            })
            .collect();
        body(*first);
        for h in handles {
            h.join().expect("parallel_for worker panicked");
        }
    });
}

/// Like [`parallel_for`], but with an explicit grain: the thread count is
/// *reduced* (rather than falling back to fully sequential) until every
/// chunk holds at least `min_items_per_thread` items, and the sequential
/// path runs without any heap allocation.
///
/// Unlike [`parallel_for`], the chunk partition depends on the effective
/// thread count, so callers must only use bodies whose results do not
/// depend on how `0..n` is grouped (e.g. disjoint-slice writes where each
/// index's output is computed independently). The GEMM engine in `tensor`
/// is the intended caller: its row panels are independent by construction.
pub fn parallel_for_grained<F>(n: usize, threads: usize, min_items_per_thread: usize, body: F)
where
    F: Fn(Chunk) + Sync,
{
    assert!(threads > 0, "parallel_for_grained: threads must be positive");
    if n == 0 {
        return;
    }
    let grain = min_items_per_thread.max(1);
    let t = threads.min((n / grain).max(1));
    if t == 1 {
        // Allocation-free sequential path (no `chunk_ranges` Vec).
        body(Chunk {
            index: 0,
            start: 0,
            end: n,
        });
        return;
    }
    let chunks = chunk_ranges(n, t);
    std::thread::scope(|scope| {
        let (first, rest) = chunks.split_first().expect("nonempty by construction");
        let handles: Vec<_> = rest
            .iter()
            .map(|&c| {
                scope.spawn({
                    let body = &body;
                    move || body(c)
                })
            })
            .collect();
        body(*first);
        for h in handles {
            h.join().expect("parallel_for_grained worker panicked");
        }
    });
}

/// Maps `f` over `0..n` in parallel and collects results in index order.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let slots = SendSlice(out.as_mut_ptr() as usize, std::marker::PhantomData::<T>);
        parallel_for(n, threads, |chunk| {
            for i in chunk.start..chunk.end {
                // SAFETY: chunks are disjoint, so each index is written by
                // exactly one thread; the Vec outlives the scope.
                unsafe {
                    let base = slots.0 as *mut Option<T>;
                    *base.add(i) = Some(f(i));
                }
            }
        });
    }
    out.into_iter()
        .map(|x| x.expect("parallel_map: every index filled"))
        .collect()
}

/// Wrapper making a raw base pointer `Sync` for disjoint-index writes.
struct SendSlice<T>(usize, std::marker::PhantomData<T>);
unsafe impl<T> Sync for SendSlice<T> {}

/// Reduces `0..n` in parallel: each chunk folds locally with `fold`, then
/// the per-chunk partials are combined **in chunk order** with `combine`.
///
/// Combining in chunk order keeps floating-point reductions reproducible for
/// a fixed `(n, threads)` pair.
pub fn parallel_reduce<T, Fold, Combine>(
    n: usize,
    threads: usize,
    identity: T,
    fold: Fold,
    combine: Combine,
) -> T
where
    T: Send + Clone,
    Fold: Fn(T, usize) -> T + Sync,
    Combine: Fn(T, T) -> T,
{
    if n == 0 {
        return identity;
    }
    let chunks = chunk_ranges(n, threads);
    let partials: Vec<T> = if chunks.len() == 1 || n < threads * MIN_ITEMS_PER_THREAD {
        chunks
            .iter()
            .map(|c| (c.start..c.end).fold(identity.clone(), &fold))
            .collect()
    } else {
        let fold = &fold;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&c| {
                    let id = identity.clone();
                    scope.spawn(move || (c.start..c.end).fold(id, fold))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel_reduce worker panicked"))
                .collect()
        })
    };
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 8, |chunk| {
            for i in chunk.start..chunk.end {
                counters[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_items_is_noop() {
        parallel_for(0, 4, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_grained_touches_every_index_once() {
        for (n, threads, grain) in [(10_000, 8, 1), (100, 8, 64), (7, 4, 1), (1, 16, 256)] {
            let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_grained(n, threads, grain, |chunk| {
                for i in chunk.start..chunk.end {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "missed index for n={n} threads={threads} grain={grain}"
            );
        }
    }

    #[test]
    fn parallel_for_grained_caps_threads_by_grain() {
        // 100 items with grain 64 admit only one full-grain chunk, so the
        // body must see the whole range as a single chunk.
        let calls = AtomicUsize::new(0);
        parallel_for_grained(100, 8, 64, |chunk| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((chunk.start, chunk.end), (0, 100));
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(5000, 7, |i| i * 3);
        assert_eq!(v.len(), 5000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn parallel_map_small_input_sequential_path() {
        let v = parallel_map(3, 16, |i| i + 1);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_reduce_sums_like_sequential() {
        let n = 100_000;
        let par = parallel_reduce(n, 8, 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        let seq: u64 = (0..n as u64).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_reduce_float_deterministic_for_fixed_threads() {
        let n = 50_000;
        let run = || parallel_reduce(n, 6, 0.0f64, |acc, i| acc + (i as f64).sqrt(), |a, b| a + b);
        let bits_a = run().to_bits();
        let bits_b = run().to_bits();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn parallel_reduce_empty_returns_identity() {
        let r = parallel_reduce(0, 4, 42u32, |acc, _| acc + 1, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_panics() {
        parallel_for(10, 0, |_| {});
    }
}
