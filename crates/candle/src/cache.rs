//! Binary dataset caching for the training pipeline.
//!
//! The paper's headline profile result is that data loading dominates the
//! CANDLE benchmarks' wall-clock; [`datacache`] removes the repeated cost by
//! persisting the generated/parsed dataset as checksummed binary shards. This
//! module is the glue: it packs a benchmark's train+test [`Dataset`] pair
//! into one [`dataio::Frame`], keys the cache by the benchmark geometry and
//! seed, and reconstructs the pair — optionally through the background
//! [`Prefetcher`] so shard decode overlaps with consumption.

use crate::dataset::{benchmark_dataset, BenchDataKind};
use datacache::format::fnv1a64;
use datacache::{
    source_key_for_file, CacheError, CacheOutcome, CacheStore, PrefetchStats, Prefetcher,
};
use dataio::{read_csv, Column, Frame, IngestPhases, ReadStrategy};
use dlframe::Dataset;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// Where a cold build gets its source frame from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheSource {
    /// Generate the benchmark dataset synthetically (the default): the
    /// key is the benchmark geometry plus seed.
    Generate,
    /// Ingest a packed train+test CSV (see [`export_packed_csv`]) with the
    /// given read strategy: the key is the file identity plus the
    /// strategy label, so a modified file or a different engine rebuilds.
    Csv {
        /// The packed CSV file.
        path: PathBuf,
        /// Engine used for the cold parse.
        strategy: ReadStrategy,
    },
}

/// Where and how the pipeline caches its datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    /// Cache root directory (one subdirectory per dataset key).
    pub root: PathBuf,
    /// Shards to split the dataset into (clamped to at least 1).
    pub shards: usize,
    /// Load warm shards through the background [`Prefetcher`] instead of
    /// sequentially, reporting hit/wait counters in the phase profile.
    pub prefetch: bool,
    /// Cold-build source: synthetic generation or a CSV ingest.
    pub source: CacheSource,
}

/// How the data phase was actually served, with the timings the pipeline
/// attributes to its phase profile.
#[derive(Debug, Clone)]
pub enum DataPhase {
    /// Cold: the dataset was generated or ingested and the shards written.
    Cold {
        /// Time producing the source dataset (the `data_loading` phase):
        /// synthetic generation, or the CSV read for a
        /// [`CacheSource::Csv`] build.
        generate: Duration,
        /// Time encoding and writing shards plus the manifest.
        encode_write: Duration,
        /// Time decoding the freshly written shards back.
        decode: Duration,
        /// Per-phase ingest attribution (scan / parse / materialize) when
        /// the source was a CSV read through the turbo engine.
        ingest: Option<IngestPhases>,
    },
    /// Warm: the dataset came from existing shards.
    Warm {
        /// Manifest validation plus shard decode time (the `cache_load`
        /// phase).
        load: Duration,
        /// Prefetcher counters, when prefetching was enabled.
        prefetch: Option<PrefetchStats>,
    },
}

impl DataPhase {
    /// True when the data came from an existing cache.
    pub fn is_warm(&self) -> bool {
        matches!(self, DataPhase::Warm { .. })
    }
}

/// A handle onto a shared [`datapipe::DatasetService`], attached to a
/// [`ParallelRunSpec`](crate::ParallelRunSpec): the run draws its data
/// through the service's admission-controlled shard pool instead of
/// opening a private cache. N concurrent runs over one `ServiceSpec`
/// share one decode of every shard.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// The shared data plane.
    pub service: Arc<datapipe::DatasetService>,
    /// Shard count used if this run is the one that cold-builds.
    pub shards: usize,
}

impl ServiceSpec {
    /// Wraps a service with the default shard count.
    pub fn new(service: Arc<datapipe::DatasetService>) -> Self {
        Self { service, shards: 4 }
    }
}

/// How a service-fed data phase went: open/stream timings plus the job's
/// isolation stats, which the pipeline surfaces as `service_*` phases in
/// the profile.
#[derive(Debug, Clone)]
pub struct ServiceLoad {
    /// True when this run's open performed the cold build.
    pub cold: bool,
    /// Time in `open_dataset` (cold build or manifest warm hit).
    pub open: Duration,
    /// Time streaming and materializing the train/test tensors.
    pub stream: Duration,
    /// The job's isolation stats after materialization.
    pub job: datapipe::JobStats,
}

/// Loads the train/test pair of a benchmark through a shared dataset
/// service: opens (single-flight) the packed dataset under the same key
/// as [`load_benchmark_dataset`], admits a bulk job, and materializes the
/// pair from the job's sequential stream. Bit-identical to the private
/// cache path and to fresh generation.
pub fn load_benchmark_dataset_via_service(
    kind: &BenchDataKind,
    seed: u64,
    spec: &ServiceSpec,
) -> Result<(Dataset, Dataset, ServiceLoad), CacheError> {
    let (key, desc) = dataset_key(kind, seed);
    let tag = format!("train_rows={};features={}", kind.train_rows, kind.features);
    let open_start = Instant::now();
    let outcome = spec
        .service
        .open_dataset(key, &desc, &tag, spec.shards.max(1), || {
            let (train, test) = benchmark_dataset(kind, seed);
            Ok(pack_pair(&train, &test))
        })?;
    let open = open_start.elapsed();

    let stream_start = Instant::now();
    let job = spec
        .service
        .admit(datapipe::JobSpec {
            dataset: key,
            features: kind.features,
            batch: 512,
            seed,
        })
        .map_err(|e| CacheError::Corrupt(format!("service admission: {e}")))?;
    let ycols = job.ycols();
    let rows = kind.train_rows + kind.test_rows;
    let mut xs = Vec::with_capacity(rows * kind.features);
    let mut ys = Vec::with_capacity(rows * ycols);
    for item in job.sequential() {
        let batch = item?;
        xs.extend_from_slice(batch.x.data());
        ys.extend_from_slice(batch.y.data());
    }
    if xs.len() != rows * kind.features {
        return Err(CacheError::Corrupt(format!(
            "service stream delivered {} feature values, expected {}",
            xs.len(),
            rows * kind.features
        )));
    }
    let slice = |data: &[f32], row0: usize, nrows: usize, width: usize| {
        Tensor::from_vec(
            [nrows, width],
            data[row0 * width..(row0 + nrows) * width].to_vec(),
        )
        .expect("slice length matches shape")
    };
    let train = Dataset::new(
        slice(&xs, 0, kind.train_rows, kind.features),
        slice(&ys, 0, kind.train_rows, ycols),
    );
    let test = Dataset::new(
        slice(&xs, kind.train_rows, kind.test_rows, kind.features),
        slice(&ys, kind.train_rows, kind.test_rows, ycols),
    );
    let load = ServiceLoad {
        cold: !outcome.is_warm(),
        open,
        stream: stream_start.elapsed(),
        job: job.stats(),
    };
    Ok((train, test, load))
}

/// The cache key for one benchmark dataset: every field of the geometry
/// plus the seed participates, so any change is a rebuild.
pub fn dataset_key(kind: &BenchDataKind, seed: u64) -> (u64, String) {
    let desc = format!(
        "candle:{:?}:features={}:train={}:test={}:seed={}",
        kind.bench, kind.features, kind.train_rows, kind.test_rows, seed
    );
    (fnv1a64(desc.as_bytes()), desc)
}

/// Loads (warm) or generates-and-caches (cold) the train/test pair for a
/// benchmark, mirroring [`benchmark_dataset`] exactly: the unpacked warm
/// tensors are bit-identical to a fresh generation because f32 values
/// round-trip losslessly through the shard format's f64 columns.
pub fn load_benchmark_dataset(
    kind: &BenchDataKind,
    seed: u64,
    cache: &CacheSpec,
) -> Result<(Dataset, Dataset, DataPhase), CacheError> {
    let store = CacheStore::new(&cache.root)?;
    let tag = format!("train_rows={};features={}", kind.train_rows, kind.features);
    let mut generate_time = Duration::ZERO;
    let mut ingest: Option<IngestPhases> = None;
    let (ds, outcome) = match &cache.source {
        CacheSource::Generate => {
            let (key, desc) = dataset_key(kind, seed);
            store.open_or_build(key, &desc, &tag, cache.shards.max(1), || {
                let start = Instant::now();
                let (train, test) = benchmark_dataset(kind, seed);
                generate_time = start.elapsed();
                Ok(pack_pair(&train, &test))
            })?
        }
        CacheSource::Csv { path, strategy } => {
            let key = source_key_for_file(path, strategy.label())?;
            store.open_or_build(
                key,
                &path.to_string_lossy(),
                &tag,
                cache.shards.max(1),
                || {
                    let (frame, stats) = read_csv(path, *strategy)?;
                    generate_time = stats.elapsed;
                    ingest = stats.ingest;
                    Ok(frame)
                },
            )?
        }
    };

    let decode_start = Instant::now();
    let ds = Arc::new(ds);
    let (frame, stats) = if cache.prefetch {
        let mut pf = Prefetcher::all(Arc::clone(&ds));
        let mut frames = Vec::with_capacity(pf.len_total());
        for item in pf.by_ref() {
            frames.push(item?.frame);
        }
        let stats = pf.stats();
        (Frame::concat(frames)?, Some(stats))
    } else {
        (ds.load_all()?, None)
    };
    let decode = decode_start.elapsed();
    let (train, test) = unpack_pair(&frame, kind)?;

    let phase = match outcome {
        CacheOutcome::ColdBuilt { encode_write, .. } => DataPhase::Cold {
            generate: generate_time,
            encode_write,
            decode,
            ingest,
        },
        CacheOutcome::WarmHit { manifest_load } => DataPhase::Warm {
            load: manifest_load + decode,
            prefetch: stats,
        },
    };
    Ok((train, test, phase))
}

/// Packs train+test into one frame: train rows first, then test rows;
/// feature columns first, then target columns. All columns are `Float64`
/// (f32 → f64 is exact, so the round trip is bit-identical).
fn pack_pair(train: &Dataset, test: &Dataset) -> Frame {
    let features = train.x().shape().dims()[1];
    let ycols = train.y().shape().dims()[1];
    let train_rows = train.x().shape().dims()[0];
    let test_rows = test.x().shape().dims()[0];
    let mut columns = Vec::with_capacity(features + ycols);
    let column = |get: &dyn Fn(usize) -> f32| -> Column {
        let mut v = Vec::with_capacity(train_rows + test_rows);
        for r in 0..train_rows + test_rows {
            v.push(get(r) as f64);
        }
        Column::Float64(v)
    };
    let pick = |a: &[f32], b: &[f32], width: usize, c: usize, r: usize| {
        if r < train_rows {
            a[r * width + c]
        } else {
            b[(r - train_rows) * width + c]
        }
    };
    for c in 0..features {
        columns.push(column(&|r| {
            pick(train.x().data(), test.x().data(), features, c, r)
        }));
    }
    for c in 0..ycols {
        columns.push(column(&|r| {
            pick(train.y().data(), test.y().data(), ycols, c, r)
        }));
    }
    Frame::new(columns).expect("packed columns share a length")
}

/// Exports the packed train+test frame of a benchmark (the exact layout
/// [`pack_pair`] produces) as a headerless numeric CSV, so a pipeline run
/// with [`CacheSource::Csv`] trains on it bit-identically to synthetic
/// generation: `f64`'s `Display` prints the shortest string that parses
/// back to the same value, and the packed values are exact `f32 → f64`
/// widenings to begin with.
pub fn export_packed_csv(
    kind: &BenchDataKind,
    seed: u64,
    path: &Path,
) -> Result<(), std::io::Error> {
    use std::io::Write;
    let (train, test) = benchmark_dataset(kind, seed);
    let frame = pack_pair(&train, &test);
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut line = String::new();
    for r in 0..frame.nrows() {
        line.clear();
        for (c, col) in frame.columns().iter().enumerate() {
            if c > 0 {
                line.push(',');
            }
            match col {
                Column::Float64(v) => {
                    use std::fmt::Write as _;
                    write!(line, "{}", v[r]).expect("formatting into a String cannot fail");
                }
                other => unreachable!("pack_pair emits Float64 only, got {:?}", other.dtype()),
            }
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()
}

/// Inverse of [`pack_pair`], validated against the expected geometry.
fn unpack_pair(frame: &Frame, kind: &BenchDataKind) -> Result<(Dataset, Dataset), CacheError> {
    let rows = kind.train_rows + kind.test_rows;
    if frame.nrows() != rows || frame.ncols() <= kind.features {
        return Err(CacheError::Corrupt(format!(
            "cached frame is {}x{}, expected {} rows and more than {} columns",
            frame.nrows(),
            frame.ncols(),
            rows,
            kind.features
        )));
    }
    let ycols = frame.ncols() - kind.features;
    let slice = |row0: usize, nrows: usize, col0: usize, ncols: usize| {
        let mut v = Vec::with_capacity(nrows * ncols);
        for r in row0..row0 + nrows {
            for c in col0..col0 + ncols {
                v.push(frame.columns()[c].f32_at(r));
            }
        }
        Tensor::from_vec([nrows, ncols], v).expect("slice length matches shape")
    };
    let train = Dataset::new(
        slice(0, kind.train_rows, 0, kind.features),
        slice(0, kind.train_rows, kind.features, ycols),
    );
    let test = Dataset::new(
        slice(kind.train_rows, kind.test_rows, 0, kind.features),
        slice(kind.train_rows, kind.test_rows, kind.features, ycols),
    );
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::calib::Bench;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("candle_cache_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(bench: Bench) -> CacheSpec {
        CacheSpec {
            root: tmp(&format!("{bench:?}")),
            shards: 3,
            prefetch: true,
            source: CacheSource::Generate,
        }
    }

    #[test]
    fn pack_unpack_round_trips_bit_exactly() {
        let kind = BenchDataKind::tiny(Bench::Nt3);
        let (train, test) = benchmark_dataset(&kind, 7);
        let frame = pack_pair(&train, &test);
        let (t2, e2) = unpack_pair(&frame, &kind).unwrap();
        assert_eq!(train.x().data(), t2.x().data());
        assert_eq!(train.y().data(), t2.y().data());
        assert_eq!(test.x().data(), e2.x().data());
        assert_eq!(test.y().data(), e2.y().data());
    }

    #[test]
    fn cold_then_warm_is_identical() {
        let kind = BenchDataKind::tiny(Bench::P1b2);
        let cache = spec(Bench::P1b2);
        let (t1, e1, p1) = load_benchmark_dataset(&kind, 11, &cache).unwrap();
        assert!(!p1.is_warm());
        let (t2, e2, p2) = load_benchmark_dataset(&kind, 11, &cache).unwrap();
        assert!(p2.is_warm());
        assert_eq!(t1.x().data(), t2.x().data());
        assert_eq!(t1.y().data(), t2.y().data());
        assert_eq!(e1.x().data(), e2.x().data());
        assert_eq!(e1.y().data(), e2.y().data());
        if let DataPhase::Warm { prefetch, .. } = p2 {
            let stats = prefetch.expect("prefetch enabled");
            assert_eq!(stats.decoded, 3);
            assert_eq!(stats.ready_hits + stats.waits, 3);
        }
        std::fs::remove_dir_all(&cache.root).ok();
    }

    #[test]
    fn warm_matches_fresh_generation() {
        let kind = BenchDataKind::tiny(Bench::P1b3);
        let cache = CacheSpec {
            prefetch: false,
            ..spec(Bench::P1b3)
        };
        load_benchmark_dataset(&kind, 5, &cache).unwrap();
        let (train, test, phase) = load_benchmark_dataset(&kind, 5, &cache).unwrap();
        assert!(phase.is_warm());
        let (ft, fe) = benchmark_dataset(&kind, 5);
        assert_eq!(train.x().data(), ft.x().data());
        assert_eq!(train.y().data(), ft.y().data());
        assert_eq!(test.x().data(), fe.x().data());
        assert_eq!(test.y().data(), fe.y().data());
        std::fs::remove_dir_all(&cache.root).ok();
    }

    /// A pipeline fed from an exported CSV trains on bit-identical tensors:
    /// export → turbo ingest → shard cache must round-trip exactly, and the
    /// cold build must report the turbo engine's ingest phases.
    #[test]
    fn csv_source_round_trips_bit_exactly_and_reports_ingest() {
        let kind = BenchDataKind::tiny(Bench::Nt3);
        let root = tmp("csv_source");
        std::fs::create_dir_all(&root).unwrap();
        let csv = root.join("packed.csv");
        export_packed_csv(&kind, 21, &csv).unwrap();

        let cache = CacheSpec {
            root: root.join("cache"),
            shards: 3,
            prefetch: false,
            source: CacheSource::Csv {
                path: csv.clone(),
                strategy: ReadStrategy::TurboParallel,
            },
        };
        let (train, test, phase) = load_benchmark_dataset(&kind, 21, &cache).unwrap();
        match phase {
            DataPhase::Cold { ingest, .. } => {
                assert!(ingest.is_some(), "turbo ingest must report phases");
            }
            DataPhase::Warm { .. } => panic!("first open must cold-build"),
        }
        let (ft, fe) = benchmark_dataset(&kind, 21);
        assert_eq!(train.x().data(), ft.x().data());
        assert_eq!(train.y().data(), ft.y().data());
        assert_eq!(test.x().data(), fe.x().data());
        assert_eq!(test.y().data(), fe.y().data());

        // Warm reopen serves the same data without re-ingesting.
        let (t2, _, p2) = load_benchmark_dataset(&kind, 21, &cache).unwrap();
        assert!(p2.is_warm());
        assert_eq!(t2.x().data(), ft.x().data());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn different_seed_or_geometry_changes_key() {
        let kind = BenchDataKind::tiny(Bench::Nt3);
        let (k1, _) = dataset_key(&kind, 1);
        let (k2, _) = dataset_key(&kind, 2);
        assert_ne!(k1, k2);
        let mut wider = kind;
        wider.features += 1;
        let (k3, _) = dataset_key(&wider, 1);
        assert_ne!(k1, k3);
    }
}
