//! The functional data-parallel pipeline: real multi-worker training.
//!
//! Implements paper §2.3.2 faithfully, one simulated Horovod worker per
//! thread:
//!
//! 1. every rank builds the model with its *own* random initialization;
//! 2. rank 0's weights are broadcast (`BroadcastGlobalVariablesHook(0)`);
//! 3. the learning rate is scaled linearly by the worker count;
//! 4. every rank trains `comp_epochs`-balanced epochs over the full
//!    dataset, with the flat gradient ring-allreduce-averaged after every
//!    batch step (`hvd.DistributedOptimizer`);
//! 5. rank 0 evaluates on the held-out test set.
//!
//! The outcome carries the *functional* results — accuracy and loss as a
//! function of workers/epochs/batch — which the paper's Figures 6b, 8b,
//! 9b, 10b, and Table 6 report. Wall-clock at Summit scale comes from the
//! `cluster` simulator instead.

use crate::cache::{
    load_benchmark_dataset, load_benchmark_dataset_via_service, CacheSpec, DataPhase, ServiceSpec,
};
use crate::dataset::{benchmark_dataset, BenchDataKind};
use crate::models::build_model;
use crate::params::BenchId;
use crate::profiler::PhaseProfiler;
use crate::scaling::{comp_epochs_balanced, scaled_lr};
use collectives::{broadcast_parameters, run_workers, DistributedOptimizer, Timeline};
use dlframe::{FitConfig, History};
use std::sync::Arc;
use std::time::Instant;

/// How the functional run divides work (mirrors `cluster::ScalingMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncScaling {
    /// Divide `total_epochs` across workers (balanced, remainder dropped).
    Strong {
        /// Total epoch budget to divide.
        total_epochs: usize,
    },
    /// Fixed epochs per worker.
    Weak {
        /// Epochs each worker runs.
        epochs_per_worker: usize,
    },
}

/// How the training data is distributed across workers (paper §2.3.1:
/// "Data parallelism is at the epoch level and/or the batch step level").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataMode {
    /// Every worker trains on the full dataset (the paper's epoch-level
    /// parallelization of NT3/P1B1/P1B2: epochs are divided, data is not).
    #[default]
    FullReplicated,
    /// Block-sharded data: each worker trains on its `1/N` shard every
    /// epoch (the `keras_mnist_advanced.py`-style batch-step-level
    /// parallelism Horovod also supports).
    Sharded,
}

/// Specification of one functional parallel run.
#[derive(Debug, Clone)]
pub struct ParallelRunSpec {
    /// Benchmark to run.
    pub bench: BenchId,
    /// Simulated worker count.
    pub workers: usize,
    /// Scaling regime.
    pub scaling: FuncScaling,
    /// Effective batch size (after any batch-size scaling strategy).
    pub batch: usize,
    /// Base learning rate; the pipeline applies linear scaling by
    /// `workers`.
    pub base_lr: f32,
    /// Dataset geometry.
    pub data: BenchDataKind,
    /// Master seed.
    pub seed: u64,
    /// Record a Horovod-style timeline of the run.
    pub record_timeline: bool,
    /// Data distribution across workers.
    pub data_mode: DataMode,
    /// Optional binary dataset cache: when set, the data phase serves warm
    /// runs from checksummed shards (`cache_load` in the phase profile)
    /// instead of regenerating (`data_loading`).
    pub cache: Option<CacheSpec>,
    /// Optional shared dataset service: when set, the data phase draws its
    /// tensors from the service's admission-controlled shard pool
    /// (`service_*` phases in the profile) so N concurrent runs share one
    /// data plane. Takes precedence over `cache`.
    pub data_service: Option<ServiceSpec>,
    /// Overlap gradient communication with backward compute: when set,
    /// each worker wraps its communicator in
    /// [`collectives::AsyncBucketedOptimizer`] with a bucket plan derived
    /// from the model's per-layer gradient sizes at this fusion threshold
    /// (bytes). `None` keeps the blocking post-backward allreduce. The
    /// phase profile gains `comm_overlap` (communication hidden under
    /// backward) and `comm_exposed` (communication the optimizer step had
    /// to wait for) entries.
    pub comm_overlap: Option<usize>,
}

/// Results of a functional parallel run.
#[derive(Debug)]
pub struct ParallelRunOutcome {
    /// Epochs each worker actually ran.
    pub epochs_per_worker: usize,
    /// Rank 0's final-epoch training loss.
    pub train_loss: f64,
    /// Rank 0's final-epoch training accuracy (classification only).
    pub train_accuracy: Option<f64>,
    /// Test loss evaluated by rank 0 after training.
    pub test_loss: f64,
    /// Test accuracy evaluated by rank 0 (argmax; meaningful for
    /// classifiers).
    pub test_accuracy: f64,
    /// Rank 0's communication counters.
    pub comm_stats: collectives::CommStats,
    /// Per-rank training histories.
    pub histories: Vec<History>,
    /// Recorded timeline, if requested.
    pub timeline: Option<Timeline>,
    /// Wall-clock duration of the whole parallel run.
    pub wall: std::time::Duration,
    /// Variance of the test targets (for R²-style regression accuracy:
    /// `1 - test_loss / test_target_variance`).
    pub test_target_variance: f64,
    /// cProfile-style phase attribution of rank 0's run (data generation,
    /// broadcast, training, evaluation).
    pub profile: PhaseProfiler,
}

/// Errors from the functional pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Epoch budget too small for the worker count (mirrors the paper's
    /// "P1B1 requires at least 4 epochs" constraint).
    NoEpochs {
        /// Requested workers.
        workers: usize,
        /// Total epochs that could not be split.
        total_epochs: usize,
    },
    /// A training error from `dlframe`.
    Train(String),
    /// The dataset cache could not be built or read.
    Cache(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NoEpochs {
                workers,
                total_epochs,
            } => {
                write!(f, "{total_epochs} epochs cannot feed {workers} workers")
            }
            PipelineError::Train(msg) => write!(f, "training failed: {msg}"),
            PipelineError::Cache(msg) => write!(f, "dataset cache failed: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Builds the model exactly as rank `rank` of [`run_parallel`] does:
/// linear learning-rate scaling by the worker count, then the per-rank
/// initialization seed `derive_seed(spec.seed, 100 + rank)` (Horovod:
/// every worker random-inits before rank 0 wins via broadcast).
///
/// Extracted so external drivers — the `resil` recovery driver in
/// particular — can construct bit-identical replicas of the pipeline's
/// workers and resume them from a checkpoint.
pub fn build_rank_model(spec: &ParallelRunSpec, rank: usize) -> dlframe::Sequential {
    let lr = scaled_lr(spec.base_lr, spec.workers);
    let init_seed = xrng::derive_seed(spec.seed, 100 + rank as u64);
    build_model(spec.bench, spec.data.features, lr, init_seed).0
}

/// Runs the benchmark with `spec.workers` simulated Horovod workers.
pub fn run_parallel(spec: &ParallelRunSpec) -> Result<ParallelRunOutcome, PipelineError> {
    let epochs_per_worker = match spec.scaling {
        FuncScaling::Strong { total_epochs } => {
            let e = comp_epochs_balanced(total_epochs, spec.workers);
            if e == 0 {
                return Err(PipelineError::NoEpochs {
                    workers: spec.workers,
                    total_epochs,
                });
            }
            e
        }
        FuncScaling::Weak { epochs_per_worker } => epochs_per_worker,
    };
    let mut profile = PhaseProfiler::new();
    let (full_train, test) = if let Some(service) = &spec.data_service {
        let (train, test, load) =
            load_benchmark_dataset_via_service(&spec.data, spec.seed, service)
                .map_err(|e| PipelineError::Cache(e.to_string()))?;
        // Attribute the shared plane's work: open (cold build lands here
        // for exactly one of N concurrent runs), streaming, and the job's
        // isolation counters as call counts.
        profile.record(
            if load.cold {
                "service_build"
            } else {
                "service_open"
            },
            load.open,
        );
        profile.record("service_stream", load.stream);
        let job = load.job;
        profile.record_n("service_wait", job.wait_time(), job.waits);
        profile.record_n("service_hit", std::time::Duration::ZERO, job.shard_hits);
        profile.record_n("service_miss", std::time::Duration::ZERO, job.shard_misses);
        (train, test)
    } else {
        match &spec.cache {
            None => {
                let data_gen_start = Instant::now();
                let pair = benchmark_dataset(&spec.data, spec.seed);
                profile.record("data_loading", data_gen_start.elapsed());
                pair
            }
            Some(cache) => {
                let (train, test, phase) = load_benchmark_dataset(&spec.data, spec.seed, cache)
                    .map_err(|e| PipelineError::Cache(e.to_string()))?;
                match phase {
                    DataPhase::Cold {
                        generate,
                        encode_write,
                        decode,
                        ingest,
                    } => {
                        profile.record("data_loading", generate);
                        profile.record("cache_build", encode_write);
                        profile.record("cache_load", decode);
                        // Turbo CSV ingests break the load down further:
                        // structural scan vs parallel parse vs frame build.
                        if let Some(phases) = ingest {
                            profile.record("ingest_scan", phases.scan);
                            profile.record("ingest_parse", phases.parse);
                            profile.record("ingest_materialize", phases.materialize);
                        }
                    }
                    DataPhase::Warm { load, prefetch } => {
                        profile.record("cache_load", load);
                        if let Some(stats) = prefetch {
                            profile.record_n(
                                "prefetch_wait",
                                stats.wait_time(),
                                stats.waits as u64,
                            );
                            profile.record_n(
                                "prefetch_ready",
                                std::time::Duration::ZERO,
                                stats.ready_hits as u64,
                            );
                        }
                    }
                }
                (train, test)
            }
        }
    };
    let test_target_variance = {
        let y = test.y().data();
        let mean = y.iter().map(|&v| v as f64).sum::<f64>() / y.len().max(1) as f64;
        y.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / y.len().max(1) as f64
    };
    let train = Arc::new(full_train);
    let test = Arc::new(test);
    let timeline = spec.record_timeline.then(Timeline::new);
    let origin = Instant::now();

    let spec2 = spec.clone();
    let tl2 = timeline.clone();
    type RankResult = (
        History,
        collectives::CommStats,
        Option<(f64, f64)>,
        Option<(f64, Option<f64>)>,
        PhaseProfiler,
    );
    let per_rank: Vec<Result<RankResult, String>> = run_workers(spec.workers, move |comm| {
        let rank = comm.rank();
        let mut rank_profile = PhaseProfiler::new();
        let mut model = build_rank_model(&spec2, rank);
        // BroadcastGlobalVariablesHook(0).
        let bc_start = Instant::now();
        let mut params = model.flat_params();
        broadcast_parameters(comm, &mut params, tl2.as_ref().map(|t| (t, origin)));
        model.set_flat_params(&params);
        rank_profile.record("broadcast", bc_start.elapsed());
        // DistributedOptimizer wrapping.
        let endpoint = std::mem::replace(
            comm,
            collectives::Communicator::world(1).pop().expect("nonempty"),
        );
        let config = FitConfig {
            epochs: epochs_per_worker,
            batch_size: spec2.batch,
            shuffle: true,
            compute_accuracy: true,
            ..Default::default()
        };
        // Sharded mode materializes this rank's block; replicated mode
        // trains on the full dataset (the paper's NT3/P1B1/P1B2 setup).
        let local_train = match spec2.data_mode {
            DataMode::FullReplicated => None,
            DataMode::Sharded => Some(train.shard(rank, spec2.workers)),
        };
        let train_ref: &dlframe::Dataset = local_train.as_ref().unwrap_or(&train);
        let fit_start = Instant::now();
        let (history, stats) = if let Some(threshold) = spec2.comm_overlap {
            // Overlapped path: per-bucket allreduce on a comm worker while
            // backward is still producing earlier layers' gradients.
            let plan = collectives::FusionPlan::for_model(&model, threshold);
            let mut dist = collectives::AsyncBucketedOptimizer::new(endpoint, &plan);
            if let Some(tl) = &tl2 {
                dist = dist.with_timeline(tl.clone(), origin);
            }
            let history = match model.fit(train_ref, &config, &mut dist) {
                Ok(h) => h,
                Err(e) => return Err(e.to_string()),
            };
            rank_profile.record("training", fit_start.elapsed());
            let (endpoint, ostats) = dist.shutdown();
            rank_profile.record_n(
                "comm_overlap",
                ostats.comm_busy.saturating_sub(ostats.exposed),
                ostats.buckets,
            );
            rank_profile.record_n("comm_exposed", ostats.exposed, ostats.steps);
            (history, endpoint.stats().clone())
        } else {
            let mut dist = DistributedOptimizer::new(endpoint);
            if let Some(tl) = &tl2 {
                dist = dist.with_timeline(tl.clone(), origin);
            }
            let history = match model.fit(train_ref, &config, &mut dist) {
                Ok(h) => h,
                Err(e) => return Err(e.to_string()),
            };
            rank_profile.record("training", fit_start.elapsed());
            (history, dist.comm().stats().clone())
        };
        // Split the training wall time into the hot-path phases the model
        // accumulated (forward+loss, backward, sync+optimizer).
        let hot = model.hot_stats();
        rank_profile.record_n("train_forward", hot.forward, hot.batches);
        rank_profile.record_n("train_backward", hot.backward, hot.batches);
        rank_profile.record_n("train_optimizer", hot.optimizer, hot.batches);
        // Rank 0 evaluates the trained model.
        let eval = if rank == 0 {
            let eval_start = Instant::now();
            let result = match model.evaluate(&test, spec2.batch.max(32)) {
                Ok(le) => Some(le),
                Err(e) => return Err(e.to_string()),
            };
            rank_profile.record("evaluate", eval_start.elapsed());
            result
        } else {
            None
        };
        let train_final = if rank == 0 {
            history.last().map(|e| (e.loss, e.accuracy))
        } else {
            None
        };
        Ok((history, stats, eval, train_final, rank_profile))
    });

    let mut histories = Vec::with_capacity(per_rank.len());
    let mut comm_stats = collectives::CommStats::default();
    let mut eval = None;
    let mut train_final = None;
    for (rank, r) in per_rank.into_iter().enumerate() {
        let (h, stats, e, tf, rank_profile) = r.map_err(PipelineError::Train)?;
        if rank == 0 {
            comm_stats = stats;
            eval = e;
            train_final = tf;
            for rec in rank_profile.records() {
                profile.record_n(&rec.name, rec.elapsed, rec.calls);
            }
        }
        histories.push(h);
    }
    let (test_loss, test_accuracy) = eval.expect("rank 0 evaluates");
    let (train_loss, train_accuracy) = train_final.expect("rank 0 records history");
    Ok(ParallelRunOutcome {
        epochs_per_worker,
        train_loss,
        train_accuracy,
        test_loss,
        test_accuracy,
        comm_stats,
        histories,
        timeline,
        wall: origin.elapsed(),
        test_target_variance,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSource;
    use cluster::calib::Bench;

    fn spec(bench: BenchId, workers: usize, total_epochs: usize) -> ParallelRunSpec {
        ParallelRunSpec {
            bench,
            workers,
            scaling: FuncScaling::Strong { total_epochs },
            batch: 20,
            base_lr: 0.02,
            data: BenchDataKind::tiny(bench),
            seed: 42,
            record_timeline: false,
            data_mode: DataMode::FullReplicated,
            cache: None,
            data_service: None,
            comm_overlap: None,
        }
    }

    /// At the default 64 MB fusion threshold the tiny benchmark models fit
    /// in a single bucket, so the overlapped engine performs the exact same
    /// whole-gradient ring allreduce as the blocking optimizer — the run
    /// must be bit-identical, and the profile gains the overlap phases.
    #[test]
    fn overlapped_run_matches_blocking_bitwise() {
        let blocking = run_parallel(&spec(Bench::Nt3, 2, 4)).unwrap();
        let mut overlapped_spec = spec(Bench::Nt3, 2, 4);
        overlapped_spec.comm_overlap = Some(collectives::DEFAULT_FUSION_THRESHOLD_BYTES);
        let overlapped = run_parallel(&overlapped_spec).unwrap();
        assert_eq!(
            blocking.train_loss.to_bits(),
            overlapped.train_loss.to_bits()
        );
        assert_eq!(blocking.test_loss.to_bits(), overlapped.test_loss.to_bits());
        assert_eq!(
            blocking.comm_stats.allreduce_calls,
            overlapped.comm_stats.allreduce_calls
        );
        let names: Vec<_> = overlapped
            .profile
            .records()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert!(names.iter().any(|n| n == "comm_overlap"));
        assert!(names.iter().any(|n| n == "comm_exposed"));
    }

    /// A run fed from an exported CSV through the turbo engine trains
    /// bit-identically to the generate-sourced run, and the cold profile
    /// carries the new ingest phase counters.
    #[test]
    fn csv_sourced_run_reports_ingest_phases_and_matches_generate() {
        let root = std::env::temp_dir().join(format!("candle_pipe_csv_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let csv = root.join("packed.csv");
        let base = spec(Bench::Nt3, 2, 4);
        crate::cache::export_packed_csv(&base.data, base.seed, &csv).unwrap();

        let mut s = base.clone();
        s.cache = Some(CacheSpec {
            root: root.join("cache"),
            shards: 3,
            prefetch: false,
            source: CacheSource::Csv {
                path: csv,
                strategy: dataio::ReadStrategy::TurboParallel,
            },
        });
        let cold = run_parallel(&s).unwrap();
        let cold_phases: Vec<_> = cold
            .profile
            .records()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        for phase in ["ingest_scan", "ingest_parse", "ingest_materialize"] {
            assert!(
                cold_phases.iter().any(|n| n == phase),
                "missing {phase} in {cold_phases:?}"
            );
        }

        let plain = run_parallel(&base).unwrap();
        assert_eq!(cold.train_loss, plain.train_loss);
        assert_eq!(cold.test_accuracy, plain.test_accuracy);

        // The warm rerun skips the ingest entirely.
        let warm = run_parallel(&s).unwrap();
        assert_eq!(warm.train_loss, plain.train_loss);
        assert!(!warm
            .profile
            .records()
            .iter()
            .any(|r| r.name.starts_with("ingest_")));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn nt3_single_worker_learns() {
        let out = run_parallel(&spec(Bench::Nt3, 1, 16)).unwrap();
        assert_eq!(out.epochs_per_worker, 16);
        assert!(out.test_accuracy > 0.9, "accuracy {}", out.test_accuracy);
        assert_eq!(out.histories.len(), 1);
    }

    #[test]
    fn nt3_parallel_workers_agree_and_learn() {
        let out = run_parallel(&spec(Bench::Nt3, 4, 16)).unwrap();
        assert_eq!(out.epochs_per_worker, 4);
        assert!(out.test_accuracy > 0.85, "accuracy {}", out.test_accuracy);
        // Gradient averaging must have happened on every batch step:
        // 120 samples / 20 batch = 6 steps × 4 epochs = 24 allreduces.
        assert_eq!(out.comm_stats.allreduce_calls, 24);
    }

    #[test]
    fn too_few_epochs_for_workers_errors() {
        let r = run_parallel(&spec(Bench::Nt3, 8, 4));
        assert!(matches!(
            r,
            Err(PipelineError::NoEpochs {
                workers: 8,
                total_epochs: 4
            })
        ));
    }

    #[test]
    fn weak_scaling_runs_fixed_epochs() {
        let mut s = spec(Bench::Nt3, 3, 0);
        s.scaling = FuncScaling::Weak {
            epochs_per_worker: 2,
        };
        let out = run_parallel(&s).unwrap();
        assert_eq!(out.epochs_per_worker, 2);
        for h in &out.histories {
            assert_eq!(h.epochs().len(), 2);
        }
    }

    #[test]
    fn accuracy_degrades_with_too_few_epochs_per_worker() {
        // The Fig 6b effect: same total epoch budget, more workers ⇒ fewer
        // sequential epochs each ⇒ lower accuracy.
        let few = run_parallel(&spec(Bench::Nt3, 8, 8)).unwrap(); // 1 epoch each
        let many = run_parallel(&spec(Bench::Nt3, 1, 8)).unwrap(); // 8 epochs
        assert!(
            many.test_accuracy >= few.test_accuracy,
            "8 epochs ({}) should beat 1 epoch ({})",
            many.test_accuracy,
            few.test_accuracy
        );
    }

    #[test]
    fn p1b1_autoencoder_reduces_reconstruction_loss() {
        let mut s = spec(Bench::P1b1, 2, 8);
        s.batch = 30;
        s.base_lr = 0.001;
        let out = run_parallel(&s).unwrap();
        let h = &out.histories[0];
        let first = h.epochs().first().unwrap().loss;
        let last = h.epochs().last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn p1b3_regression_runs() {
        let mut s = spec(Bench::P1b3, 2, 2);
        s.batch = 100;
        s.base_lr = 0.05;
        let out = run_parallel(&s).unwrap();
        assert!(out.test_loss < 0.2, "P1B3 mse {}", out.test_loss);
    }

    #[test]
    fn timeline_records_broadcast_and_allreduce() {
        let mut s = spec(Bench::Nt3, 2, 2);
        s.record_timeline = true;
        let out = run_parallel(&s).unwrap();
        let tl = out.timeline.expect("requested");
        let events = tl.events();
        assert!(events.iter().any(|e| e.name == "mpi_broadcast"));
        assert!(events.iter().any(|e| e.name == "nccl_allreduce"));
    }

    #[test]
    fn sharded_mode_trains_on_blocks() {
        let mut s = spec(Bench::Nt3, 4, 8);
        s.data_mode = DataMode::Sharded;
        let out = run_parallel(&s).unwrap();
        // 120 samples sharded over 4 workers = 30 each; batch 20 -> 2
        // steps/epoch x 2 epochs = 4 allreduces.
        assert_eq!(out.epochs_per_worker, 2);
        assert_eq!(out.comm_stats.allreduce_calls, 4);
        assert!(out.test_loss.is_finite());
    }

    #[test]
    fn sharded_and_replicated_modes_differ_in_steps() {
        let mut replicated = spec(Bench::Nt3, 3, 6);
        replicated.data_mode = DataMode::FullReplicated;
        let mut sharded = replicated.clone();
        sharded.data_mode = DataMode::Sharded;
        let r = run_parallel(&replicated).unwrap();
        let s = run_parallel(&sharded).unwrap();
        // Sharded workers see a third of the data per epoch.
        assert!(s.comm_stats.allreduce_calls < r.comm_stats.allreduce_calls);
    }

    #[test]
    fn cached_run_matches_uncached_and_reports_cache_phases() {
        let root = std::env::temp_dir().join(format!("candle_pipe_cache_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut s = spec(Bench::Nt3, 2, 4);
        s.cache = Some(CacheSpec {
            root: root.clone(),
            shards: 3,
            prefetch: true,
            source: CacheSource::Generate,
        });
        let cold = run_parallel(&s).unwrap();
        let phases = |o: &ParallelRunOutcome| {
            o.profile
                .records()
                .iter()
                .map(|r| r.name.clone())
                .collect::<Vec<_>>()
        };
        let cold_phases = phases(&cold);
        assert!(cold_phases.iter().any(|n| n == "data_loading"));
        assert!(cold_phases.iter().any(|n| n == "cache_build"));

        let warm = run_parallel(&s).unwrap();
        let warm_phases = phases(&warm);
        assert!(warm_phases.iter().any(|n| n == "cache_load"));
        assert!(
            !warm_phases.iter().any(|n| n == "data_loading"),
            "warm run must not regenerate: {warm_phases:?}"
        );
        // Prefetch counters surface in the profile (wait + ready cover
        // every shard).
        let count = |name: &str| {
            warm.profile
                .records()
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.calls)
                .unwrap_or(0)
        };
        assert_eq!(count("prefetch_wait") + count("prefetch_ready"), 3);

        // The cached data is bit-identical to fresh generation, so all
        // three runs train identically.
        let plain = run_parallel(&spec(Bench::Nt3, 2, 4)).unwrap();
        assert_eq!(cold.train_loss, plain.train_loss);
        assert_eq!(warm.train_loss, plain.train_loss);
        assert_eq!(warm.test_accuracy, plain.test_accuracy);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Two runs fed from one shared service train bit-identically to the
    /// plain generate path, and the profile attributes the shared plane's
    /// work (`service_build` on the cold open, `service_open` after).
    #[test]
    fn service_fed_runs_match_plain_and_report_service_phases() {
        let root = std::env::temp_dir().join(format!("candle_pipe_service_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let service = datapipe::DatasetService::new(datapipe::ServiceConfig::new(&root)).unwrap();
        let mut s = spec(Bench::Nt3, 2, 4);
        s.data_service = Some(crate::cache::ServiceSpec::new(Arc::clone(&service)));

        let first = run_parallel(&s).unwrap();
        let second = run_parallel(&s).unwrap();
        let plain = run_parallel(&spec(Bench::Nt3, 2, 4)).unwrap();
        assert_eq!(first.train_loss, plain.train_loss);
        assert_eq!(second.train_loss, plain.train_loss);
        assert_eq!(first.test_accuracy, plain.test_accuracy);

        let phases = |o: &ParallelRunOutcome| {
            o.profile
                .records()
                .iter()
                .map(|r| r.name.clone())
                .collect::<Vec<_>>()
        };
        assert!(phases(&first).iter().any(|n| n == "service_build"));
        assert!(phases(&first).iter().any(|n| n == "service_stream"));
        assert!(
            phases(&second).iter().any(|n| n == "service_open"),
            "second run must warm-open, not rebuild: {:?}",
            phases(&second)
        );
        // The second run's shards were already resident: hits, no misses.
        let hit_calls = second
            .profile
            .records()
            .iter()
            .find(|r| r.name == "service_hit")
            .map(|r| r.calls)
            .unwrap_or(0);
        assert!(hit_calls > 0, "resident shards must be attributed as hits");
        assert_eq!(service.stats().admitted, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn deterministic_outcome_for_fixed_seed_single_worker() {
        let a = run_parallel(&spec(Bench::Nt3, 1, 4)).unwrap();
        let b = run_parallel(&spec(Bench::Nt3, 1, 4)).unwrap();
        assert_eq!(a.train_loss, b.train_loss);
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }
}
