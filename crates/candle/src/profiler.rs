//! Phase profiling — the cProfile analogue.
//!
//! The paper profiles its Python benchmarks with `cProfile` (§4) to find
//! where wall-clock goes; this module gives the functional pipeline the
//! same capability: named phase timers with exclusive wall-clock
//! attribution and a sorted text report.

use std::time::{Duration, Instant};

/// One profiled phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label.
    pub name: String,
    /// Accumulated wall time.
    pub elapsed: Duration,
    /// Times the phase was entered.
    pub calls: u64,
}

/// A simple accumulating phase profiler.
///
/// ```
/// let mut prof = candle::profiler::PhaseProfiler::new();
/// prof.measure("data_loading", || std::thread::sleep(std::time::Duration::from_millis(5)));
/// let answer = prof.measure("training", || 6 * 7);
/// assert_eq!(answer, 42);
/// assert_eq!(prof.records().len(), 2);
/// assert!(prof.total().as_millis() >= 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    records: Vec<PhaseRecord>,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing its wall time to `name`.
    pub fn measure<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Adds an externally measured span.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        if let Some(r) = self.records.iter_mut().find(|r| r.name == name) {
            r.elapsed += elapsed;
            r.calls += 1;
        } else {
            self.records.push(PhaseRecord {
                name: name.to_string(),
                elapsed,
                calls: 1,
            });
        }
    }

    /// Adds an externally measured span that stands for `calls` entries
    /// (e.g. a prefetcher's total blocked time across its waits).
    pub fn record_n(&mut self, name: &str, elapsed: Duration, calls: u64) {
        if let Some(r) = self.records.iter_mut().find(|r| r.name == name) {
            r.elapsed += elapsed;
            r.calls += calls;
        } else {
            self.records.push(PhaseRecord {
                name: name.to_string(),
                elapsed,
                calls,
            });
        }
    }

    /// All phase records, in first-seen order.
    pub fn records(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// Total attributed wall time.
    pub fn total(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// The dominant phase (largest accumulated time), if any.
    pub fn dominant(&self) -> Option<&PhaseRecord> {
        self.records.iter().max_by_key(|r| r.elapsed)
    }

    /// Renders a cProfile-style table sorted by cumulative time.
    pub fn report(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-12);
        let mut sorted: Vec<&PhaseRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.elapsed));
        let mut out = format!("{:<20} {:>10} {:>8} {:>7}\n", "phase", "cumtime", "calls", "share");
        out.push_str(&"-".repeat(48));
        out.push('\n');
        for r in sorted {
            out.push_str(&format!(
                "{:<20} {:>9.3}s {:>8} {:>6.1}%\n",
                r.name,
                r.elapsed.as_secs_f64(),
                r.calls,
                r.elapsed.as_secs_f64() / total * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_accumulates() {
        let mut p = PhaseProfiler::new();
        let v = p.measure("phase_a", || 123);
        assert_eq!(v, 123);
        p.measure("phase_a", || ());
        assert_eq!(p.records().len(), 1);
        assert_eq!(p.records()[0].calls, 2);
    }

    #[test]
    fn dominant_finds_largest() {
        let mut p = PhaseProfiler::new();
        p.record("small", Duration::from_millis(1));
        p.record("big", Duration::from_millis(100));
        p.record("medium", Duration::from_millis(10));
        assert_eq!(p.dominant().unwrap().name, "big");
        assert_eq!(p.total(), Duration::from_millis(111));
    }

    #[test]
    fn report_is_sorted_by_time() {
        let mut p = PhaseProfiler::new();
        p.record("data_loading", Duration::from_millis(80));
        p.record("training", Duration::from_millis(20));
        let report = p.report();
        let loading_pos = report.find("data_loading").unwrap();
        let training_pos = report.find("training").unwrap();
        assert!(loading_pos < training_pos, "dominant phase listed first");
        assert!(report.contains("80.0%"));
    }

    #[test]
    fn record_n_accumulates_calls() {
        let mut p = PhaseProfiler::new();
        p.record_n("prefetch_wait", Duration::from_millis(3), 4);
        p.record_n("prefetch_wait", Duration::from_millis(1), 2);
        assert_eq!(p.records()[0].calls, 6);
        assert_eq!(p.records()[0].elapsed, Duration::from_millis(4));
    }

    #[test]
    fn empty_profiler() {
        let p = PhaseProfiler::new();
        assert!(p.dominant().is_none());
        assert_eq!(p.total(), Duration::ZERO);
        assert!(p.report().contains("phase"));
    }
}
