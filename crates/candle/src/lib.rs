//! `candle` — the CANDLE Pilot1 benchmarks and their Horovod-style
//! parallelization (the paper's primary contribution).
//!
//! The crate ties the whole reproduction together:
//!
//! * [`params`] — the Table-1 hyperparameters of NT3, P1B1, P1B2, P1B3
//!   (epochs, batch sizes, learning rates, optimizers, sample counts, file
//!   sizes) and their [`cluster::WorkloadProfile`]s;
//! * [`scaling`] — the paper's `comp_epochs` epoch partitioning, the
//!   strong/weak scaling regimes (Fig 4a), the batch-size scaling
//!   strategies (linear / square-root / cubic-root, Fig 4b) and linear
//!   learning-rate scaling;
//! * [`models`] — the four network architectures built on `dlframe`
//!   (NT3's 1-D conv classifier, P1B1's autoencoder, P1B2's MLP
//!   classifier, P1B3's drug-response regressor), dimension-scaled by a
//!   documented factor so functional runs finish in seconds;
//! * [`dataset`] — synthetic stand-ins for the NCI data with the right
//!   geometry and learnable structure, plus CSV round-trips through
//!   `dataio` for the three-phase benchmark flow (Fig 2);
//! * [`pipeline`] — the data-parallel functional runner: N simulated
//!   workers (threads) training with per-batch ring-allreduce gradient
//!   averaging and rank-0 weight broadcast, exactly the Horovod recipe of
//!   paper §2.3.

pub mod cache;
pub mod dataset;
pub mod models;
pub mod params;
pub mod pipeline;
pub mod profiler;
pub mod scaling;

pub use cache::{
    dataset_key, export_packed_csv, load_benchmark_dataset, load_benchmark_dataset_via_service,
    CacheSource, CacheSpec, DataPhase, ServiceLoad, ServiceSpec,
};
pub use dataset::{benchmark_dataset, BenchDataKind};
pub use models::build_model;
pub use params::{BenchId, HyperParams};
pub use pipeline::{
    build_rank_model, run_parallel, DataMode, FuncScaling, ParallelRunOutcome, ParallelRunSpec,
    PipelineError,
};
pub use scaling::{comp_epochs, comp_epochs_balanced, scaled_batch, scaled_lr, BatchScaling};
