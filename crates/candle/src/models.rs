//! The four network architectures, built on `dlframe`.
//!
//! Shapes follow the published CANDLE models (NT3's 1-D convolutional
//! classifier; P1B1's sparse autoencoder with a bottleneck; P1B2's
//! regularized MLP classifier; P1B3's MLP drug-response regressor), with
//! layer widths scaled down in proportion to the feature dimension so the
//! functional experiments run in seconds. The architecture *kind* per
//! benchmark — conv vs autoencoder vs classifier vs regressor, and the
//! loss/optimizer pairing of Table 1 — is preserved exactly.

use crate::params::{BenchId, HyperParams};
use cluster::calib::Bench;
use dlframe::{
    Activation, ActivationLayer, Conv1D, Dense, Dropout, Flatten, Loss, MaxPooling1D, Reshape3,
    Sequential,
};

/// Builds the benchmark's model for `features` input features, compiled
/// with its Table-1 optimizer at learning rate `lr`.
///
/// Returns the model and its loss (also set on the model).
///
/// # Panics
/// Panics if `features` is too small for the architecture (NT3 needs at
/// least 16 features for its conv/pool stack).
pub fn build_model(bench: BenchId, features: usize, lr: f32, seed: u64) -> (Sequential, Loss) {
    let hp = HyperParams::of(bench);
    let mut rng = xrng::seeded(xrng::derive_seed(seed, 0x90DE1));
    let mut model = Sequential::new(seed);
    let loss = match bench {
        Bench::Nt3 => {
            assert!(
                features >= 16,
                "NT3 conv stack needs >= 16 features, got {features}"
            );
            // Classic conv architecture: Conv1D → pool → Conv1D → pool →
            // dense head (the full-scale model uses 128 filters and kernel
            // 20 over 60,483 steps).
            let conv1 = Conv1D::new(1, 16, 5, 2, Activation::Relu, &mut rng);
            let steps1 = conv1.output_len(features).expect("checked above");
            let pool1 = 2usize;
            let steps1p = steps1 / pool1;
            assert!(steps1p >= 3, "NT3 needs more features for the second conv");
            let conv2 = Conv1D::new(16, 16, 3, 1, Activation::Relu, &mut rng);
            let steps2 = conv2.output_len(steps1p).expect("checked above");
            let flat = steps2 * 16;
            model.add(Box::new(Reshape3::new(features, 1)));
            model.add(Box::new(conv1));
            model.add(Box::new(MaxPooling1D::new(pool1)));
            model.add(Box::new(conv2));
            model.add(Box::new(Flatten::new()));
            model.add(Box::new(Dense::new(flat, 32, Activation::Relu, &mut rng)));
            model.add(Box::new(Dropout::new(
                0.1,
                xrng::seeded(xrng::derive_seed(seed, 1)),
            )));
            model.add(Box::new(Dense::new(32, 2, Activation::Linear, &mut rng)));
            Loss::SoftmaxCrossEntropy
        }
        Bench::P1b1 => {
            // Autoencoder: encode → bottleneck → decode, MSE
            // reconstruction (full scale: 2000-600-2000 over 60,484).
            let h = (features / 4).clamp(8, 128);
            let z = (features / 16).clamp(4, 32);
            model.add(Box::new(Dense::new(
                features,
                h,
                Activation::Relu,
                &mut rng,
            )));
            model.add(Box::new(Dense::new(h, z, Activation::Relu, &mut rng)));
            model.add(Box::new(Dense::new(z, h, Activation::Relu, &mut rng)));
            model.add(Box::new(Dense::new(
                h,
                features,
                Activation::Linear,
                &mut rng,
            )));
            Loss::MeanSquaredError
        }
        Bench::P1b2 => {
            // Five-layer regularized MLP classifier (full scale:
            // 1024-512-256 over 28,204 SNP features, 10 cancer types).
            let h1 = (features / 2).clamp(16, 128);
            let h2 = (h1 / 2).max(8);
            model.add(Box::new(Dense::new(
                features,
                h1,
                Activation::Relu,
                &mut rng,
            )));
            model.add(Box::new(Dropout::new(
                0.1,
                xrng::seeded(xrng::derive_seed(seed, 2)),
            )));
            model.add(Box::new(Dense::new(h1, h2, Activation::Relu, &mut rng)));
            model.add(Box::new(Dense::new(h2, 10, Activation::Linear, &mut rng)));
            Loss::SoftmaxCrossEntropy
        }
        Bench::P1b3 => {
            // MLP regressor with convolution-like dense feature layers
            // (full scale: 1000-500-100-50 heads on drug descriptors).
            let h1 = (features / 2).clamp(8, 64);
            let h2 = (h1 / 2).max(4);
            model.add(Box::new(Dense::new(
                features,
                h1,
                Activation::Relu,
                &mut rng,
            )));
            model.add(Box::new(Dense::new(h1, h2, Activation::Relu, &mut rng)));
            model.add(Box::new(Dense::new(h2, 1, Activation::Linear, &mut rng)));
            model.add(Box::new(ActivationLayer::new(Activation::Sigmoid)));
            Loss::MeanSquaredError
        }
    };
    model.compile(loss, hp.make_optimizer(lr));
    (model, loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn nt3_forward_shape() {
        let (m, loss) = build_model(Bench::Nt3, 64, 0.001, 1);
        assert_eq!(loss, Loss::SoftmaxCrossEntropy);
        let y = m.predict(&Tensor::zeros([3, 64])).unwrap();
        assert_eq!(y.shape().dims(), &[3, 2]);
    }

    #[test]
    fn p1b1_reconstructs_input_dim() {
        let (m, loss) = build_model(Bench::P1b1, 48, 0.001, 2);
        assert_eq!(loss, Loss::MeanSquaredError);
        let y = m.predict(&Tensor::zeros([2, 48])).unwrap();
        assert_eq!(y.shape().dims(), &[2, 48]);
    }

    #[test]
    fn p1b2_outputs_ten_classes() {
        let (m, _) = build_model(Bench::P1b2, 40, 0.001, 3);
        let y = m.predict(&Tensor::zeros([5, 40])).unwrap();
        assert_eq!(y.shape().dims(), &[5, 10]);
    }

    #[test]
    fn p1b3_outputs_bounded_growth() {
        let (m, _) = build_model(Bench::P1b3, 20, 0.001, 4);
        let y = m.predict(&Tensor::zeros([4, 20])).unwrap();
        assert_eq!(y.shape().dims(), &[4, 1]);
        for &v in y.data() {
            assert!((0.0..=1.0).contains(&v), "sigmoid output {v}");
        }
    }

    #[test]
    fn models_have_parameters() {
        for bench in [Bench::Nt3, Bench::P1b1, Bench::P1b2, Bench::P1b3] {
            let (m, _) = build_model(bench, 64, 0.001, 5);
            assert!(
                m.param_count() > 100,
                "{bench:?} has {} params",
                m.param_count()
            );
        }
    }

    #[test]
    fn same_seed_same_weights_different_seed_different() {
        let (a, _) = build_model(Bench::P1b2, 32, 0.001, 7);
        let (b, _) = build_model(Bench::P1b2, 32, 0.001, 7);
        let (c, _) = build_model(Bench::P1b2, 32, 0.001, 8);
        assert_eq!(a.flat_params(), b.flat_params());
        assert_ne!(a.flat_params(), c.flat_params());
    }

    #[test]
    #[should_panic(expected = "NT3 conv stack")]
    fn nt3_rejects_tiny_input() {
        build_model(Bench::Nt3, 8, 0.001, 9);
    }

    #[test]
    fn optimizer_lr_is_respected() {
        let (m, _) = build_model(Bench::Nt3, 64, 0.048, 10);
        assert!((m.optimizer().unwrap().learning_rate() - 0.048).abs() < 1e-7);
    }
}
