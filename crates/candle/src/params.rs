//! Table-1 hyperparameters of the four P1 benchmarks.

use cluster::calib::Bench;
use cluster::WorkloadProfile;
use dlframe::OptimizerKind;

/// Benchmark identity, aliasing the calibration enum so the whole
/// workspace shares one type.
pub type BenchId = Bench;

/// The published configuration of one benchmark (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperParams {
    /// Which benchmark.
    pub bench: BenchId,
    /// Default number of epochs.
    pub epochs: usize,
    /// Default batch size.
    pub batch_size: usize,
    /// Learning rate (`None` means the Keras optimizer default — P1B1).
    pub learning_rate: Option<f32>,
    /// Optimizer (sgd / adam / rmsprop).
    pub optimizer: OptimizerKind,
    /// Total training samples.
    pub train_samples: usize,
    /// Total test samples (≈ quarter of training, matching file-size
    /// ratios).
    pub test_samples: usize,
    /// Elements (features + label) per sample.
    pub elements_per_sample: usize,
    /// Output classes (0 ⇒ regression).
    pub classes: usize,
}

impl HyperParams {
    /// The Table-1 configuration for a benchmark.
    pub fn of(bench: BenchId) -> HyperParams {
        match bench {
            Bench::Nt3 => HyperParams {
                bench,
                epochs: 384,
                batch_size: 20,
                learning_rate: Some(0.001),
                optimizer: OptimizerKind::Sgd { momentum: 0.0 },
                train_samples: 1_120,
                test_samples: 280,
                elements_per_sample: 60_483,
                classes: 2,
            },
            Bench::P1b1 => HyperParams {
                bench,
                epochs: 384,
                batch_size: 100,
                learning_rate: None,
                optimizer: OptimizerKind::Adam {
                    beta1: 0.9,
                    beta2: 0.999,
                    epsilon: 1e-7,
                },
                train_samples: 2_700,
                test_samples: 900,
                elements_per_sample: 60_484,
                classes: 0,
            },
            Bench::P1b2 => HyperParams {
                bench,
                epochs: 768,
                batch_size: 60,
                learning_rate: Some(0.001),
                optimizer: OptimizerKind::RmsProp {
                    rho: 0.9,
                    epsilon: 1e-7,
                },
                train_samples: 2_700,
                test_samples: 900,
                elements_per_sample: 28_204,
                classes: 10,
            },
            Bench::P1b3 => HyperParams {
                bench,
                epochs: 1,
                batch_size: 100,
                learning_rate: Some(0.001),
                optimizer: OptimizerKind::Sgd { momentum: 0.0 },
                train_samples: 900_100,
                test_samples: 225_025,
                elements_per_sample: 1_000,
                classes: 0,
            },
        }
    }

    /// Batch steps per epoch at the default batch size (Table 1 text:
    /// NT3 56, P1B1 27, P1B2 45, P1B3 9001).
    pub fn batch_steps_per_epoch(&self) -> usize {
        self.train_samples.div_ceil(self.batch_size)
    }

    /// The effective learning rate (Keras defaults where Table 1 says
    /// "none": adam's 0.001).
    pub fn effective_lr(&self) -> f32 {
        self.learning_rate.unwrap_or(0.001)
    }

    /// The workload profile handed to the `cluster` simulator.
    pub fn workload(&self) -> WorkloadProfile {
        WorkloadProfile {
            bench: self.bench,
            train_samples: self.train_samples,
            default_batch: self.batch_size,
            total_epochs: self.epochs,
        }
    }

    /// Builds the benchmark's optimizer at a given learning rate.
    pub fn make_optimizer(&self, lr: f32) -> dlframe::Optimizer {
        dlframe::Optimizer::new(self.optimizer, lr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_batch_steps() {
        assert_eq!(HyperParams::of(Bench::Nt3).batch_steps_per_epoch(), 56);
        assert_eq!(HyperParams::of(Bench::P1b1).batch_steps_per_epoch(), 27);
        assert_eq!(HyperParams::of(Bench::P1b2).batch_steps_per_epoch(), 45);
        assert_eq!(HyperParams::of(Bench::P1b3).batch_steps_per_epoch(), 9_001);
    }

    #[test]
    fn table1_epochs_and_batches() {
        assert_eq!(HyperParams::of(Bench::Nt3).epochs, 384);
        assert_eq!(HyperParams::of(Bench::P1b1).epochs, 384);
        assert_eq!(HyperParams::of(Bench::P1b2).epochs, 768);
        assert_eq!(HyperParams::of(Bench::P1b3).epochs, 1);
        assert_eq!(HyperParams::of(Bench::Nt3).batch_size, 20);
        assert_eq!(HyperParams::of(Bench::P1b2).batch_size, 60);
    }

    #[test]
    fn optimizers_match_table1() {
        assert!(matches!(
            HyperParams::of(Bench::Nt3).optimizer,
            OptimizerKind::Sgd { .. }
        ));
        assert!(matches!(
            HyperParams::of(Bench::P1b1).optimizer,
            OptimizerKind::Adam { .. }
        ));
        assert!(matches!(
            HyperParams::of(Bench::P1b2).optimizer,
            OptimizerKind::RmsProp { .. }
        ));
        assert!(matches!(
            HyperParams::of(Bench::P1b3).optimizer,
            OptimizerKind::Sgd { .. }
        ));
    }

    #[test]
    fn p1b1_lr_defaults_to_adam_default() {
        let hp = HyperParams::of(Bench::P1b1);
        assert_eq!(hp.learning_rate, None);
        assert_eq!(hp.effective_lr(), 0.001);
    }

    #[test]
    fn workload_mirrors_hyperparams() {
        let hp = HyperParams::of(Bench::Nt3);
        let w = hp.workload();
        assert_eq!(w.train_samples, 1120);
        assert_eq!(w.default_batch, 20);
        assert_eq!(w.total_epochs, 384);
    }

    #[test]
    fn make_optimizer_uses_requested_lr() {
        let hp = HyperParams::of(Bench::P1b2);
        let opt = hp.make_optimizer(0.024);
        assert!((opt.learning_rate() - 0.024).abs() < 1e-7);
    }
}
