//! Synthetic benchmark datasets with the Table-1 geometry.

use crate::params::{BenchId, HyperParams};
use cluster::calib::Bench;
use dataio::{generate, ClassSpec, Scaler, ScalerKind, SyntheticSpec};
use dlframe::Dataset;
use tensor::Tensor;

/// The preprocessing each benchmark applies after loading (paper Fig 2's
/// "data loading and preprocessing" phase): NT3 max-abs-scales expression
/// values, P1B1 min-max-scales for its sigmoid-friendly autoencoder
/// inputs, P1B2/P1B3 standardize.
pub fn scaler_kind(bench: BenchId) -> ScalerKind {
    match bench {
        Bench::Nt3 => ScalerKind::MaxAbs,
        Bench::P1b1 => ScalerKind::MinMax,
        Bench::P1b2 | Bench::P1b3 => ScalerKind::Standard,
    }
}

/// A dimension-scaled description of one benchmark's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchDataKind {
    /// Which benchmark.
    pub bench: BenchId,
    /// Feature count after scaling.
    pub features: usize,
    /// Training rows after scaling.
    pub train_rows: usize,
    /// Test rows after scaling.
    pub test_rows: usize,
}

impl BenchDataKind {
    /// Scales the Table-1 geometry down by `scale` (features and, for
    /// P1B3, rows), with floors that keep every architecture viable.
    /// `scale = 1` is the paper's full size.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn scaled(bench: BenchId, scale: usize) -> Self {
        assert!(scale > 0, "scale must be positive");
        let hp = HyperParams::of(bench);
        let features_full = hp.elements_per_sample.saturating_sub(1).max(4);
        let features = (features_full / scale).max(24);
        // NT3/P1B1/P1B2 have few samples — keep all rows so batch-step
        // counts match Table 1; P1B3's 900k rows must shrink with scale.
        let (train_rows, test_rows) = match bench {
            Bench::P1b3 => (
                (hp.train_samples / scale).max(400),
                (hp.test_samples / scale).max(100),
            ),
            _ => (hp.train_samples, hp.test_samples),
        };
        Self {
            bench,
            features,
            train_rows,
            test_rows,
        }
    }

    /// A deliberately small configuration for fast unit tests and the
    /// quickstart example.
    pub fn tiny(bench: BenchId) -> Self {
        let (train_rows, test_rows) = match bench {
            // P1B3's whole point is many batch steps within one epoch
            // (9,001 at full scale) — keep enough rows for that shape.
            Bench::P1b3 => (4000, 1000),
            _ => (120, 40),
        };
        Self {
            bench,
            features: 48,
            train_rows,
            test_rows,
        }
    }
}

/// Generates the train and test `dlframe` datasets for a benchmark.
///
/// Classification benchmarks (NT3, P1B2) get one-hot targets; P1B1 is an
/// autoencoder (target = input); P1B3 is regression on a single growth
/// column.
pub fn benchmark_dataset(kind: &BenchDataKind, seed: u64) -> (Dataset, Dataset) {
    let hp = HyperParams::of(kind.bench);
    // Train and test must come from the SAME distribution (same class
    // centroids / same regression weights), so generate one pool and split
    // it. Class labels are interleaved (`row % classes`), so both splits
    // stay balanced.
    let total_rows = kind.train_rows + kind.test_rows;
    let sub_seed = xrng::derive_seed(seed, 0xDA7A);
    let pool = match kind.bench {
        Bench::Nt3 | Bench::P1b2 => {
            let classes = hp.classes;
            let ds = generate(&SyntheticSpec {
                rows: total_rows,
                cols: kind.features,
                kind: ClassSpec::Classification {
                    classes,
                    // NT3's binary normal/tumor task is easier than P1B2's
                    // 10-way cancer typing — mirrored in the separation so
                    // accuracy curves behave like the paper's (NT3 reaches
                    // 1.0, P1B2 plateaus lower).
                    separation: if classes == 2 { 1.0 } else { 0.8 },
                },
                noise: if classes == 2 { 1.1 } else { 1.4 },
                seed: sub_seed,
            });
            let x = Tensor::from_vec([total_rows, kind.features], ds.features.clone())
                .expect("generator length");
            let y = Tensor::from_vec([total_rows, classes], ds.one_hot_labels())
                .expect("one-hot length");
            Dataset::new(x, y)
        }
        Bench::P1b1 => {
            // Structured blobs the autoencoder can compress.
            let ds = generate(&SyntheticSpec {
                rows: total_rows,
                cols: kind.features,
                kind: ClassSpec::Classification {
                    classes: 10,
                    separation: 1.0,
                },
                noise: 0.4,
                seed: sub_seed,
            });
            let x = Tensor::from_vec([total_rows, kind.features], ds.features)
                .expect("generator length");
            let y = x.clone();
            Dataset::new(x, y)
        }
        Bench::P1b3 => {
            let ds = generate(&SyntheticSpec {
                rows: total_rows,
                cols: kind.features,
                kind: ClassSpec::Regression {
                    signal_features: kind.features.min(16),
                },
                noise: 0.02,
                seed: sub_seed,
            });
            let x = Tensor::from_vec([total_rows, kind.features], ds.features)
                .expect("generator length");
            let y = Tensor::from_vec([total_rows, 1], ds.labels).expect("label length");
            Dataset::new(x, y)
        }
    };
    let (train, test) = pool.split(kind.test_rows as f64 / total_rows as f64);
    // Preprocessing: fit the benchmark's scaler on the training features
    // only, then apply to both splits (no test leakage).
    let mut train_x = train.x().data().to_vec();
    let mut test_x = test.x().data().to_vec();
    Scaler::fit_transform(
        scaler_kind(kind.bench),
        &mut train_x,
        &mut test_x,
        kind.train_rows,
        kind.features,
    );
    let rebuild = |orig: &Dataset, x: Vec<f32>, rows: usize| {
        Dataset::new(
            Tensor::from_vec([rows, kind.features], x).expect("scaled features"),
            // P1B1's autoencoder target is the *scaled* input.
            if kind.bench == Bench::P1b1 {
                Tensor::from_vec([rows, kind.features], orig.x().data().to_vec())
                    .expect("autoencoder target")
            } else {
                orig.y().clone()
            },
        )
    };
    let mut train_ds = rebuild(&train, train_x.clone(), kind.train_rows);
    let mut test_ds = rebuild(&test, test_x.clone(), kind.test_rows);
    if kind.bench == Bench::P1b1 {
        // Replace the autoencoder targets with the scaled features.
        train_ds = Dataset::new(
            Tensor::from_vec([kind.train_rows, kind.features], train_x.clone()).expect("x"),
            Tensor::from_vec([kind.train_rows, kind.features], train_x).expect("y"),
        );
        test_ds = Dataset::new(
            Tensor::from_vec([kind.test_rows, kind.features], test_x.clone()).expect("x"),
            Tensor::from_vec([kind.test_rows, kind.features], test_x).expect("y"),
        );
    }
    (train_ds, test_ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_keeps_row_counts_for_small_benchmarks() {
        let k = BenchDataKind::scaled(Bench::Nt3, 100);
        assert_eq!(k.train_rows, 1120);
        assert_eq!(k.test_rows, 280);
        assert_eq!(k.features, 604);
    }

    #[test]
    fn scaled_shrinks_p1b3_rows() {
        let k = BenchDataKind::scaled(Bench::P1b3, 100);
        assert_eq!(k.train_rows, 9001);
        assert!(k.features >= 24);
    }

    #[test]
    fn scale_one_is_full_size() {
        let k = BenchDataKind::scaled(Bench::Nt3, 1);
        assert_eq!(k.features, 60_482);
        assert_eq!(k.train_rows, 1_120);
    }

    #[test]
    fn nt3_dataset_shapes() {
        let kind = BenchDataKind::tiny(Bench::Nt3);
        let (train, test) = benchmark_dataset(&kind, 1);
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 40);
        assert_eq!(train.x().shape().dims(), &[120, 48]);
        assert_eq!(train.y().shape().dims(), &[120, 2]);
    }

    #[test]
    fn p1b1_targets_equal_inputs() {
        let kind = BenchDataKind::tiny(Bench::P1b1);
        let (train, _) = benchmark_dataset(&kind, 2);
        assert_eq!(train.x().data(), train.y().data());
    }

    #[test]
    fn p1b2_has_ten_classes() {
        let kind = BenchDataKind::tiny(Bench::P1b2);
        let (train, _) = benchmark_dataset(&kind, 3);
        assert_eq!(train.y().shape().dims(), &[120, 10]);
        // Every row is one-hot.
        for r in 0..120 {
            let s: f32 = train.y().row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn p1b3_targets_single_column() {
        let kind = BenchDataKind::tiny(Bench::P1b3);
        let (train, _) = benchmark_dataset(&kind, 4);
        assert_eq!(train.y().shape().dims(), &[4000, 1]);
    }

    #[test]
    fn train_and_test_are_different_draws() {
        let kind = BenchDataKind::tiny(Bench::Nt3);
        let (train, test) = benchmark_dataset(&kind, 5);
        assert_ne!(train.x().row(0), test.x().row(0));
    }

    #[test]
    fn deterministic_in_seed() {
        let kind = BenchDataKind::tiny(Bench::P1b2);
        let (a, _) = benchmark_dataset(&kind, 6);
        let (b, _) = benchmark_dataset(&kind, 6);
        assert_eq!(a.x().data(), b.x().data());
    }
}
