//! Scaling strategies (paper §2.3.1, Figure 4).

/// Batch-size scaling strategies for large-sample benchmarks (P1B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchScaling {
    /// Batch size stays at the default (NT3/P1B1/P1B2 — few samples).
    Constant,
    /// `batch × N` — fewest steps, fastest, risks OOM and accuracy loss.
    Linear,
    /// `int(batch × √N)`.
    SquareRoot,
    /// `int(batch × ∛N)` — the paper finds this gives the best accuracy.
    CubicRoot,
}

impl BatchScaling {
    /// Display name matching the paper's Figure 10 legend.
    pub fn label(self) -> &'static str {
        match self {
            BatchScaling::Constant => "constant",
            BatchScaling::Linear => "linear",
            BatchScaling::SquareRoot => "square root",
            BatchScaling::CubicRoot => "cubic root",
        }
    }
}

/// The paper's `comp_epochs` function, verbatim: ranks `0..n-1` get
/// `E / n` epochs and the last rank also takes the remainder.
///
/// # Panics
/// Panics if `nprocs == 0` or `myrank >= nprocs`.
pub fn comp_epochs(n: usize, myrank: usize, nprocs: usize) -> usize {
    assert!(nprocs > 0, "nprocs must be positive");
    assert!(myrank < nprocs, "rank {myrank} out of {nprocs}");
    let j = n / nprocs;
    let k = n % nprocs;
    if myrank < nprocs - 1 {
        j
    } else {
        j + k
    }
}

/// The load-balanced variant the paper actually runs ("for load balancing,
/// we ensure that the number of epochs is the same for each GPU"): every
/// rank gets `E / n` epochs; the remainder is dropped.
pub fn comp_epochs_balanced(n: usize, nprocs: usize) -> usize {
    assert!(nprocs > 0, "nprocs must be positive");
    n / nprocs
}

/// Effective batch size under a scaling strategy with `workers` workers.
pub fn scaled_batch(base: usize, workers: usize, strategy: BatchScaling) -> usize {
    assert!(workers > 0, "workers must be positive");
    match strategy {
        BatchScaling::Constant => base,
        BatchScaling::Linear => base * workers,
        BatchScaling::SquareRoot => ((base as f64) * (workers as f64).sqrt()) as usize,
        BatchScaling::CubicRoot => ((base as f64) * (workers as f64).cbrt()) as usize,
    }
}

/// Linear learning-rate scaling: `lr × workers` (paper §2.3.2).
pub fn scaled_lr(base: f32, workers: usize) -> f32 {
    assert!(workers > 0, "workers must be positive");
    base * workers as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn comp_epochs_matches_paper_examples() {
        // 384 epochs on 384 GPUs: one each.
        for r in 0..384 {
            assert_eq!(comp_epochs(384, r, 384), 1);
        }
        // 384 epochs on 5 GPUs: 76 each, last gets 76 + 4.
        assert_eq!(comp_epochs(384, 0, 5), 76);
        assert_eq!(comp_epochs(384, 4, 5), 80);
    }

    #[test]
    fn comp_epochs_single_proc_gets_all() {
        assert_eq!(comp_epochs(384, 0, 1), 384);
    }

    #[test]
    fn balanced_drops_remainder() {
        assert_eq!(comp_epochs_balanced(384, 5), 76);
        assert_eq!(comp_epochs_balanced(10, 3), 3);
        assert_eq!(comp_epochs_balanced(2, 4), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rank_out_of_range_panics() {
        comp_epochs(10, 3, 3);
    }

    #[test]
    fn batch_scaling_matches_paper_fig10() {
        // Paper: base 100; 48 GPUs cubic root → int(100 × 48^(1/3)) = 363.
        assert_eq!(scaled_batch(100, 48, BatchScaling::CubicRoot), 363);
        // Linear at 192 GPUs → 19,200 (the failing case).
        assert_eq!(scaled_batch(100, 192, BatchScaling::Linear), 19_200);
        assert_eq!(scaled_batch(100, 384, BatchScaling::Linear), 38_400);
        // Square root at 4 GPUs → 200.
        assert_eq!(scaled_batch(100, 4, BatchScaling::SquareRoot), 200);
        assert_eq!(scaled_batch(20, 7, BatchScaling::Constant), 20);
    }

    #[test]
    fn lr_scaling_is_linear() {
        assert_eq!(scaled_lr(0.001, 24), 0.024);
        assert_eq!(scaled_lr(0.001, 1), 0.001);
    }

    #[test]
    fn labels() {
        assert_eq!(BatchScaling::CubicRoot.label(), "cubic root");
    }

    proptest! {
        #[test]
        fn comp_epochs_partitions_exactly(n in 0usize..10_000, nprocs in 1usize..128) {
            let total: usize = (0..nprocs).map(|r| comp_epochs(n, r, nprocs)).sum();
            prop_assert_eq!(total, n);
            // All but the last rank get the same count.
            let first = comp_epochs(n, 0, nprocs);
            for r in 0..nprocs - 1 {
                prop_assert_eq!(comp_epochs(n, r, nprocs), first);
            }
            prop_assert!(comp_epochs(n, nprocs - 1, nprocs) >= first);
        }

        #[test]
        fn scaling_strategies_are_ordered(base in 1usize..200, workers in 1usize..500) {
            let c = scaled_batch(base, workers, BatchScaling::Constant);
            let cb = scaled_batch(base, workers, BatchScaling::CubicRoot);
            let sq = scaled_batch(base, workers, BatchScaling::SquareRoot);
            let li = scaled_batch(base, workers, BatchScaling::Linear);
            prop_assert!(c <= cb + 1);
            prop_assert!(cb <= sq + 1);
            prop_assert!(sq <= li);
        }
    }
}
