//! `dlframe` — a from-scratch Keras-style deep-learning framework.
//!
//! This crate replaces the Keras/TensorFlow layer of the CANDLE benchmarks.
//! It provides exactly the pieces the four Pilot1 networks use:
//!
//! * layers: [`Dense`], [`Conv1D`], [`MaxPooling1D`], [`Dropout`],
//!   [`Flatten`], [`Reshape3`], [`ActivationLayer`];
//! * activations: ReLU, sigmoid, tanh, softmax, linear;
//! * losses: softmax cross-entropy (classification) and mean squared error
//!   (autoencoder / regression);
//! * optimizers: SGD (the paper's NT3/P1B3 default), Adam (P1B1), RMSProp
//!   (P1B2), each with a runtime-adjustable learning rate so Horovod-style
//!   linear LR scaling can be applied;
//! * a [`Sequential`] model with `fit` / `evaluate` / `predict`, per-epoch
//!   [`History`], and two integration points used by the `collectives`
//!   crate: a [`GradientSync`] hook called between backward and the
//!   optimizer step (Horovod's `DistributedOptimizer` splice point) and
//!   flat get/set of all parameters (the `BroadcastGlobalVariablesHook`
//!   splice point).
//!
//! Everything is deterministic given a seed: initialization, shuffling and
//! dropout all draw from `xrng` streams owned by the model.

mod activation;
pub mod checkpoint;
mod data;
mod history;
mod layers;
mod loss;
mod model;
mod optimizer;
mod schedule;

pub use activation::Activation;
pub use checkpoint::{
    load as load_checkpoint, restore_model, save_model, Checkpoint, CheckpointError,
};
pub use data::Dataset;
pub use history::{EpochStats, History};
pub use layers::{ActivationLayer, Conv1D, Dense, Dropout, Flatten, Layer, MaxPooling1D, Reshape3};
pub use loss::Loss;
pub use model::{FitConfig, GradientSync, HotStats, NoSync, Sequential};
pub use optimizer::{Optimizer, OptimizerKind, SlotSnapshot};
pub use schedule::LrSchedule;

/// Errors surfaced by the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum DlError {
    /// Input fed to a layer or model has the wrong shape.
    BadInput(String),
    /// Model was used before `compile` or without layers.
    NotReady(String),
}

impl std::fmt::Display for DlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DlError::BadInput(msg) => write!(f, "bad input: {msg}"),
            DlError::NotReady(msg) => write!(f, "model not ready: {msg}"),
        }
    }
}

impl std::error::Error for DlError {}
