//! Activation functions with forward and backward evaluation.
//!
//! The pointwise functions mirror `tensor::FusedAct` exactly (sigmoid is
//! shared via [`tensor::sigmoid`]), so a layer that fuses its activation
//! into the GEMM epilogue produces bit-identical outputs to one applying
//! the activation as a separate pass.

use tensor::{sigmoid, FusedAct, Tensor};

/// Pointwise (or row-wise, for softmax) activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Row-wise softmax (rank-2 inputs only).
    Softmax,
}

impl Activation {
    /// Applies the activation.
    pub fn forward(self, x: &Tensor) -> Tensor {
        let mut out = x.clone();
        self.forward_inplace(&mut out);
        out
    }

    /// Applies the activation in place (allocation-free forward).
    pub fn forward_inplace(self, x: &mut Tensor) {
        match self {
            Activation::Linear => {}
            Activation::Relu => x.map_inplace(|v| v.max(0.0)),
            Activation::Sigmoid => x.map_inplace(sigmoid),
            Activation::Tanh => x.map_inplace(f32::tanh),
            Activation::Softmax => x.softmax_rows_inplace(),
        }
    }

    /// The GEMM-epilogue equivalent of this activation, if it is pointwise.
    /// Softmax is row-wise and cannot be fused per element.
    pub fn fused(self) -> Option<FusedAct> {
        match self {
            Activation::Linear => Some(FusedAct::Linear),
            Activation::Relu => Some(FusedAct::Relu),
            Activation::Sigmoid => Some(FusedAct::Sigmoid),
            Activation::Tanh => Some(FusedAct::Tanh),
            Activation::Softmax => None,
        }
    }

    /// Computes `dL/dx` given the activation *output* `y` and `dL/dy`.
    ///
    /// Using the output (rather than the input) is valid for every function
    /// here because each derivative is expressible in terms of the output —
    /// the standard trick that avoids retaining both tensors.
    ///
    /// For `Softmax` this computes the full row-wise Jacobian product,
    /// `dx_i = y_i (g_i - Σ_j g_j y_j)`.
    pub fn backward(self, y: &Tensor, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        self.backward_in_place(y, &mut g);
        g
    }

    /// [`Activation::backward`] writing into a preallocated tensor of the
    /// same length as `grad_out` (allocation-free backward).
    pub fn backward_into(self, y: &Tensor, grad_out: &Tensor, out: &mut Tensor) {
        debug_assert_eq!(out.len(), grad_out.len());
        out.data_mut().copy_from_slice(grad_out.data());
        self.backward_in_place(y, out);
    }

    /// Turns a copy of `dL/dy` held in `g` into `dL/dx`, in place.
    fn backward_in_place(self, y: &Tensor, g: &mut Tensor) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                    if yv <= 0.0 {
                        *gv = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                    *gv *= yv * (1.0 - yv);
                }
            }
            Activation::Tanh => {
                for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                    *gv *= 1.0 - yv * yv;
                }
            }
            Activation::Softmax => {
                let (rows, cols) = y.shape().as_2d();
                for r in 0..rows {
                    let yrow = &y.data()[r * cols..(r + 1) * cols];
                    let grow = &mut g.data_mut()[r * cols..(r + 1) * cols];
                    let dot: f32 = grow.iter().zip(yrow).map(|(g, y)| g * y).sum();
                    for (gv, &yv) in grow.iter_mut().zip(yrow) {
                        *gv = yv * (*gv - dot);
                    }
                }
            }
        }
    }

    /// The Keras-style name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softmax => "softmax",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    fn finite_diff_check(act: Activation, tol: f64) {
        // Loss = sum(act(x) * w) for random w; compare analytic vs numeric.
        let mut rng = xrng::seeded(42);
        let x = Tensor::from_fn([3, 5], |_| rng.next_f32() * 2.0 - 1.0);
        let w = Tensor::from_fn([3, 5], |_| rng.next_f32() * 2.0 - 1.0);
        let y = act.forward(&x);
        let analytic = act.backward(&y, &w);
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let lp: f64 = act.forward(&plus).mul(&w).unwrap().sum();
            let lm: f64 = act.forward(&minus).mul(&w).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let a = analytic.data()[idx] as f64;
            assert!(
                (numeric - a).abs() < tol,
                "{}: idx {idx}: numeric {numeric} vs analytic {a}",
                act.name()
            );
        }
    }

    #[test]
    fn relu_forward() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(Activation::Relu.forward(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_range_and_stability() {
        let x = Tensor::from_vec([3], vec![-100.0, 0.0, 100.0]).unwrap();
        let y = Activation::Sigmoid.forward(&x);
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6 && y.data()[2] <= 1.0);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn linear_is_identity_both_ways() {
        let x = Tensor::from_vec([3], vec![1.0, -2.0, 3.0]).unwrap();
        assert_eq!(Activation::Linear.forward(&x), x);
        let g = Tensor::from_vec([3], vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(Activation::Linear.backward(&x, &g), g);
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(Activation::Sigmoid, 1e-2);
        finite_diff_check(Activation::Tanh, 1e-2);
        finite_diff_check(Activation::Softmax, 1e-2);
        finite_diff_check(Activation::Linear, 1e-2);
    }

    #[test]
    fn relu_gradient_masks_negative() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, -0.2, 2.0]).unwrap();
        let y = Activation::Relu.forward(&x);
        let g = Tensor::full([4], 1.0);
        let gx = Activation::Relu.backward(&y, &g);
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_backward_of_uniform_gradient_is_zero() {
        // d/dx of sum(softmax(x)) is zero since rows sum to one.
        let x = Tensor::from_vec([1, 3], vec![0.2, -0.7, 1.5]).unwrap();
        let y = Activation::Softmax.forward(&x);
        let g = Tensor::full([1, 3], 1.0);
        let gx = Activation::Softmax.backward(&y, &g);
        for v in gx.data() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn names_are_keras_style() {
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::Softmax.name(), "softmax");
    }
}
