//! In-memory datasets and mini-batch iteration.

use tensor::Tensor;
use xrng::Rng;

/// A supervised dataset: feature rows `x` and target rows `y` with matching
/// sample counts.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Tensor,
    y: Tensor,
}

impl Dataset {
    /// Creates a dataset from features and targets.
    ///
    /// # Panics
    /// Panics if the leading (sample) dimensions differ.
    pub fn new(x: Tensor, y: Tensor) -> Self {
        let nx = x.shape().dims()[0];
        let ny = y.shape().dims()[0];
        assert_eq!(nx, ny, "x has {nx} samples but y has {ny}");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.shape().dims()[0]
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature tensor.
    pub fn x(&self) -> &Tensor {
        &self.x
    }

    /// Target tensor.
    pub fn y(&self) -> &Tensor {
        &self.y
    }

    /// Splits off the last `fraction` of samples as a validation set.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n = self.len();
        let n_val = ((n as f64) * fraction).round() as usize;
        let n_train = n - n_val;
        let train_idx: Vec<usize> = (0..n_train).collect();
        let val_idx: Vec<usize> = (n_train..n).collect();
        (
            Dataset::new(
                self.x.gather_rows(&train_idx),
                self.y.gather_rows(&train_idx),
            ),
            Dataset::new(self.x.gather_rows(&val_idx), self.y.gather_rows(&val_idx)),
        )
    }

    /// Returns the sample indices of each mini-batch for one epoch,
    /// optionally shuffled. A trailing partial batch is kept (Keras
    /// behaviour).
    pub fn batch_indices(&self, batch_size: usize, shuffle: Option<&mut Rng>) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let Some(rng) = shuffle {
            xrng::shuffle(&mut order, rng);
        }
        order.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Materializes the feature/target rows of one batch.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        (self.x.gather_rows(indices), self.y.gather_rows(indices))
    }

    /// [`Dataset::batch`] into caller-owned tensors, reusing their buffers.
    /// After the first batch of an epoch the gather is allocation-free.
    pub fn batch_into(&self, indices: &[usize], x_out: &mut Tensor, y_out: &mut Tensor) {
        self.x.gather_rows_into(indices, x_out);
        self.y.gather_rows_into(indices, y_out);
    }

    /// Returns the shard of samples assigned to `rank` of `nranks` under
    /// block partitioning — the data-parallel split used by the Horovod
    /// implementation.
    pub fn shard(&self, rank: usize, nranks: usize) -> Dataset {
        assert!(nranks > 0 && rank < nranks, "invalid rank {rank}/{nranks}");
        let chunks = parx::chunk_ranges(self.len(), nranks);
        let indices: Vec<usize> = chunks
            .get(rank)
            .map(|c| (c.start..c.end).collect())
            .unwrap_or_default();
        Dataset::new(self.x.gather_rows(&indices), self.y.gather_rows(&indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, fx: usize) -> Dataset {
        Dataset::new(
            Tensor::from_fn([n, fx], |i| i as f32),
            Tensor::from_fn([n, 1], |i| i as f32),
        )
    }

    #[test]
    fn batch_indices_cover_all_samples() {
        let d = make(10, 2);
        let batches = d.batch_indices(3, None);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 1);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_batches_are_permutation() {
        let d = make(50, 1);
        let mut rng = xrng::seeded(5);
        let batches = d.batch_indices(7, Some(&mut rng));
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batch_materializes_rows() {
        let d = make(5, 2);
        let (x, y) = d.batch(&[4, 0]);
        assert_eq!(x.data(), &[8.0, 9.0, 0.0, 1.0]);
        assert_eq!(y.data(), &[4.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "samples")]
    fn mismatched_sample_counts_panic() {
        Dataset::new(Tensor::zeros([3, 2]), Tensor::zeros([4, 1]));
    }

    #[test]
    fn shard_partitions_evenly() {
        let d = make(10, 1);
        let total: usize = (0..3).map(|r| d.shard(r, 3).len()).sum();
        assert_eq!(total, 10);
        assert_eq!(d.shard(0, 3).len(), 4);
        assert_eq!(d.shard(2, 3).len(), 3);
        // Shards are disjoint and ordered.
        assert_eq!(d.shard(0, 3).x().at2(0, 0), 0.0);
        assert_eq!(d.shard(1, 3).x().at2(0, 0), 4.0);
    }

    #[test]
    fn shard_single_rank_is_identity() {
        let d = make(6, 2);
        let s = d.shard(0, 1);
        assert_eq!(s.x().data(), d.x().data());
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        make(4, 1).batch_indices(0, None);
    }
}
