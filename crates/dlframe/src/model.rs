//! The `Sequential` model: Keras-style layer stack with `fit`, `evaluate`
//! and `predict`, plus the two splice points the distributed runtime needs.

use crate::history::{EpochStats, History};
use crate::layers::Layer;
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use crate::{Dataset, DlError};
use std::time::{Duration, Instant};
use tensor::{Tensor, Workspace};
use xrng::Rng;

/// Hook invoked on the flattened gradient vector after backward and before
/// the optimizer step — exactly where Horovod's `DistributedOptimizer`
/// inserts its allreduce.
pub trait GradientSync {
    /// Synchronizes (e.g. averages across workers) the flat gradient in
    /// place.
    fn sync_gradients(&mut self, flat: &mut [f32]);

    /// Opens one batch step. Returning `true` switches
    /// [`Sequential::train_batch`] to the streaming protocol: each layer's
    /// gradient region is handed over via [`GradientSync::region_ready`] as
    /// soon as that layer's backward pass finishes (regions arrive in
    /// descending flat-offset order, covering the layout exactly once), and
    /// [`GradientSync::finish_step`] is the completion barrier before the
    /// optimizer step. The default (blocking) implementation returns
    /// `false`, in which case only [`GradientSync::sync_gradients`] fires.
    ///
    /// `param_count` is the full flat-gradient length, so implementations
    /// can validate their bucket geometry eagerly.
    fn begin_step(&mut self, param_count: usize) -> bool {
        let _ = param_count;
        false
    }

    /// Streams one ready gradient region (`offset` is its flat offset).
    /// Only called between a `begin_step` that returned `true` and the
    /// matching `finish_step`; an implementation may start communicating
    /// this region immediately while earlier layers are still computing.
    fn region_ready(&mut self, offset: usize, grad: &[f32]) {
        let _ = (offset, grad);
    }

    /// Completion barrier for a streamed step: must overwrite `flat` (the
    /// full gradient layout) with the synchronized values before returning.
    fn finish_step(&mut self, flat: &mut [f32]) {
        let _ = flat;
    }
}

/// No-op sync for single-process training.
pub struct NoSync;

impl GradientSync for NoSync {
    fn sync_gradients(&mut self, _flat: &mut [f32]) {}
}

/// Training-run configuration (the knobs the paper varies).
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Number of passes over the (local shard of the) dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle sample order each epoch.
    pub shuffle: bool,
    /// Record classification accuracy per epoch (argmax match).
    pub compute_accuracy: bool,
    /// Fraction of the training data held out for per-epoch validation
    /// (Keras `validation_split`; the "cross-validation" of the paper's
    /// Figure-2 phase 2). 0 disables validation.
    pub validation_split: f64,
    /// Stop early when validation loss (or training loss without a
    /// validation split) has not improved for this many epochs.
    pub early_stop_patience: Option<usize>,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            epochs: 1,
            batch_size: 32,
            shuffle: true,
            compute_accuracy: true,
            validation_split: 0.0,
            early_stop_patience: None,
        }
    }
}

/// Wall-clock accounting of the training hot path, split into the three
/// phases the paper's per-phase profiles use (forward, backward, optimizer
/// step — the optimizer bucket includes gradient flatten/sync/scatter).
#[derive(Debug, Clone, Copy, Default)]
pub struct HotStats {
    /// Total time in layer forward passes plus the loss.
    pub forward: Duration,
    /// Total time in layer backward passes.
    pub backward: Duration,
    /// Total time in gradient sync and optimizer updates.
    pub optimizer: Duration,
    /// Number of batches accumulated into the totals.
    pub batches: u64,
}

/// A linear stack of layers trained with backpropagation.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    loss: Option<Loss>,
    optimizer: Option<Optimizer>,
    rng: Rng,
    /// Pooled scratch buffers for the training hot path: activations,
    /// gradients, and GEMM packing all draw from here, so steady-state
    /// training performs no per-batch heap allocation.
    ws: Workspace,
    /// Flat gradient buffer reused across batches for sync + optimizer.
    flat_buf: Vec<f32>,
    hot: HotStats,
}

impl Sequential {
    /// Creates an empty model with a deterministic shuffling stream.
    pub fn new(seed: u64) -> Self {
        Self {
            layers: Vec::new(),
            loss: None,
            optimizer: None,
            rng: xrng::seeded(xrng::derive_seed(seed, 0xF17)),
            ws: Workspace::new(),
            flat_buf: Vec::new(),
            hot: HotStats::default(),
        }
    }

    /// Accumulated hot-path timings since the last reset.
    pub fn hot_stats(&self) -> HotStats {
        self.hot
    }

    /// Clears the hot-path timing accumulators.
    pub fn reset_hot_stats(&mut self) {
        self.hot = HotStats::default();
    }

    /// Appends a layer.
    pub fn add(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Sets the loss and optimizer (Keras `compile`).
    pub fn compile(&mut self, loss: Loss, optimizer: Optimizer) -> &mut Self {
        self.loss = Some(loss);
        self.optimizer = Some(optimizer);
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Per-layer trainable parameter counts in forward (layer) order,
    /// including zero entries for parameterless layers. Reversed, this is
    /// the order in which gradient regions become ready during backward —
    /// the input for overlap-aware fusion plans.
    pub fn layer_param_counts(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.param_count()).collect()
    }

    /// Immutable access to the optimizer, if compiled.
    pub fn optimizer(&self) -> Option<&Optimizer> {
        self.optimizer.as_ref()
    }

    /// Mutable access to the optimizer, if compiled (for LR scaling).
    pub fn optimizer_mut(&mut self) -> Option<&mut Optimizer> {
        self.optimizer.as_mut()
    }

    /// Serialises every random stream the model owns: the epoch-shuffle
    /// stream first, then each stochastic layer's private stream (e.g.
    /// dropout) in layer order.
    ///
    /// Restoring these via [`Sequential::set_rng_states`] is what makes a
    /// checkpointed training run resumable bit-exactly — both the sample
    /// order and the dropout masks continue from the captured position.
    pub fn rng_states(&self) -> Vec<[u8; 32]> {
        let mut states = vec![self.rng.to_bytes()];
        states.extend(self.layers.iter().filter_map(|l| l.rng().map(Rng::to_bytes)));
        states
    }

    /// Restores every random stream captured by [`Sequential::rng_states`]
    /// on a model of identical architecture.
    ///
    /// # Panics
    /// Panics if the number of states does not match this model's stream
    /// count (shuffle stream + one per stochastic layer).
    pub fn set_rng_states(&mut self, states: &[[u8; 32]]) {
        let expected = 1 + self.layers.iter().filter(|l| l.rng().is_some()).count();
        assert_eq!(
            states.len(),
            expected,
            "rng state count mismatch: model has {expected} streams"
        );
        let mut it = states.iter();
        self.rng = Rng::from_bytes(*it.next().expect("checked above"));
        for layer in &mut self.layers {
            if let Some(rng) = layer.rng_mut() {
                *rng = Rng::from_bytes(*it.next().expect("checked above"));
            }
        }
    }

    /// Runs a forward pass through all layers.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, DlError> {
        if self.layers.is_empty() {
            return Err(DlError::NotReady("model has no layers".into()));
        }
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, training)?;
        }
        Ok(h)
    }

    /// Immutable inference forward pass: no backward caches are written
    /// and no RNG state advances, so a trained model behind an `Arc` can
    /// serve predictions from many threads concurrently. Bit-identical to
    /// `forward(x, false)`.
    pub fn forward_infer(&self, x: &Tensor) -> Result<Tensor, DlError> {
        if self.layers.is_empty() {
            return Err(DlError::NotReady("model has no layers".into()));
        }
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward_infer(&h)?;
        }
        Ok(h)
    }

    /// Inference forward pass (shared, thread-safe).
    pub fn predict(&self, x: &Tensor) -> Result<Tensor, DlError> {
        self.forward_infer(x)
    }

    /// Inference through the mutable training path (writes backward
    /// caches). Only needed when a later `backward` should see this
    /// input; plain prediction should use [`Sequential::predict`].
    pub fn predict_mut(&mut self, x: &Tensor) -> Result<Tensor, DlError> {
        self.forward(x, false)
    }

    /// Copies all parameters into one flat vector, in layer/parameter order.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Overwrites all parameters from a flat vector produced by a model of
    /// identical architecture (the weight-broadcast splice point).
    ///
    /// # Panics
    /// Panics if the length does not match [`Sequential::param_count`].
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
    }

    /// Copies the current gradients into one flat vector.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Trains on one already-materialized batch, returning the batch loss
    /// and (for classifiers) the number of argmax-correct predictions.
    ///
    /// This is the zero-allocation hot path: activations and gradients come
    /// from the model's [`Workspace`] pool and are recycled as the chain
    /// advances, gradients flow through one reused flat buffer, and the
    /// optimizer updates parameter slices in place.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        sync: &mut dyn GradientSync,
    ) -> Result<(f64, usize), DlError> {
        let loss_fn = self
            .loss
            .ok_or_else(|| DlError::NotReady("compile before fit".into()))?;
        if self.layers.is_empty() {
            return Err(DlError::NotReady("model has no layers".into()));
        }
        if self.optimizer.is_none() {
            return Err(DlError::NotReady("compile before fit".into()));
        }
        // Forward chain, recycling each intermediate activation once the
        // next layer has consumed it (layers cache what backward needs).
        let fwd_start = Instant::now();
        let mut h: Option<Tensor> = None;
        for layer in &mut self.layers {
            let out = match h.as_ref() {
                Some(t) => layer.forward_ws(t, true, &mut self.ws)?,
                None => layer.forward_ws(x, true, &mut self.ws)?,
            };
            if let Some(prev) = h.replace(out) {
                self.ws.recycle(prev);
            }
        }
        let pred = h.expect("at least one layer");
        let (loss, grad) = loss_fn.loss_and_grad_ws(&pred, y, &mut self.ws);
        let correct = count_argmax_matches(&pred, y);
        self.ws.recycle(pred);
        self.hot.forward += fwd_start.elapsed();
        // Backward through the stack, recycling each upstream gradient. In
        // overlapped mode each layer's gradient region is streamed to the
        // sync hook the moment that layer's backward finishes (descending
        // flat offsets), so communication proceeds under the remaining
        // layers' compute.
        let bwd_start = Instant::now();
        let total = self.param_count();
        let overlap = sync.begin_step(total);
        if overlap {
            self.flat_buf.resize(total, 0.0);
        }
        let mut end = total;
        let mut g = grad;
        for layer in self.layers.iter_mut().rev() {
            let gi = layer.backward_ws(&g, &mut self.ws)?;
            self.ws.recycle(std::mem::replace(&mut g, gi));
            if overlap {
                let n = layer.param_count();
                if n == 0 {
                    continue;
                }
                let start = end - n;
                let mut off = start;
                let flat = &mut self.flat_buf;
                layer.for_each_grad(&mut |gt| {
                    flat[off..off + gt.len()].copy_from_slice(gt.data());
                    off += gt.len();
                });
                sync.region_ready(start, &self.flat_buf[start..end]);
                end = start;
            }
        }
        self.ws.recycle(g);
        self.hot.backward += bwd_start.elapsed();
        // Gradient synchronization on the flat layout, then scatter back so
        // external observers of `grads()` see the synchronized values.
        let opt_start = Instant::now();
        if overlap {
            debug_assert_eq!(end, 0, "streamed regions must cover the layout");
            sync.finish_step(&mut self.flat_buf);
        } else {
            self.flat_buf.clear();
            for layer in &self.layers {
                layer.for_each_grad(&mut |gt| self.flat_buf.extend_from_slice(gt.data()));
            }
            sync.sync_gradients(&mut self.flat_buf);
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.for_each_grad_mut(&mut |gt| {
                let n = gt.len();
                gt.data_mut()
                    .copy_from_slice(&self.flat_buf[offset..offset + n]);
                offset += n;
            });
        }
        // Optimizer step, slot per parameter tensor, reading each slot's
        // gradient window straight out of the flat buffer.
        let opt = self.optimizer.as_mut().expect("checked above");
        let mut slot = 0;
        let mut offset = 0;
        for layer in &mut self.layers {
            layer.for_each_param_mut(&mut |p| {
                let n = p.len();
                opt.update_slice(slot, p.data_mut(), &self.flat_buf[offset..offset + n]);
                slot += 1;
                offset += n;
            });
        }
        self.hot.optimizer += opt_start.elapsed();
        self.hot.batches += 1;
        Ok((loss, correct))
    }

    /// Trains for `config.epochs` passes over `data`, invoking `sync` on
    /// every batch gradient.
    ///
    /// With `validation_split > 0` the trailing fraction of `data` is held
    /// out; its loss/accuracy are recorded per epoch and drive early
    /// stopping when `early_stop_patience` is set.
    ///
    /// NOTE for distributed training: early stopping triggers on every
    /// rank at the same epoch only if all ranks see identical loss
    /// sequences (true in this workspace because gradients are averaged
    /// and data is identical); heterogeneous setups should disable it.
    pub fn fit(
        &mut self,
        data: &Dataset,
        config: &FitConfig,
        sync: &mut dyn GradientSync,
    ) -> Result<History, DlError> {
        if data.is_empty() {
            return Err(DlError::BadInput("empty training dataset".into()));
        }
        if !(0.0..1.0).contains(&config.validation_split) {
            return Err(DlError::BadInput(format!(
                "validation_split must be in [0,1), got {}",
                config.validation_split
            )));
        }
        let (train, val) = if config.validation_split > 0.0 {
            let (t, v) = data.split(config.validation_split);
            if t.is_empty() || v.is_empty() {
                return Err(DlError::BadInput(
                    "validation split leaves an empty partition".into(),
                ));
            }
            (t, Some(v))
        } else {
            (data.clone(), None)
        };
        let mut history = History::new();
        let mut best_monitor = f64::INFINITY;
        let mut stale_epochs = 0usize;
        // Batch tensors persist across the whole fit; `batch_into` reuses
        // their buffers, so batch materialization is allocation-free after
        // the first (full-size) batch.
        let mut bx = Tensor::zeros([1, 1]);
        let mut by = Tensor::zeros([1, 1]);
        for epoch in 0..config.epochs {
            let batches =
                train.batch_indices(config.batch_size, config.shuffle.then_some(&mut self.rng));
            let mut loss_sum = 0.0;
            let mut correct = 0usize;
            let steps = batches.len();
            for idx in &batches {
                train.batch_into(idx, &mut bx, &mut by);
                let (loss, c) = self.train_batch(&bx, &by, sync)?;
                loss_sum += loss;
                correct += c;
            }
            let train_loss = loss_sum / steps.max(1) as f64;
            let (val_loss, val_accuracy) = match &val {
                Some(v) => {
                    let (l, a) = self.evaluate(v, config.batch_size)?;
                    (Some(l), config.compute_accuracy.then_some(a))
                }
                None => (None, None),
            };
            history.push(EpochStats {
                epoch,
                loss: train_loss,
                accuracy: config
                    .compute_accuracy
                    .then(|| correct as f64 / train.len() as f64),
                batch_steps: steps,
                val_loss,
                val_accuracy,
            });
            if let Some(patience) = config.early_stop_patience {
                let monitor = val_loss.unwrap_or(train_loss);
                if monitor < best_monitor - 1e-12 {
                    best_monitor = monitor;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs > patience {
                        break;
                    }
                }
            }
        }
        Ok(history)
    }

    /// Like [`Sequential::fit`], but applies an [`crate::LrSchedule`]:
    /// before each epoch the optimizer's rate is set to `base_lr ×
    /// schedule.multiplier(epoch)`. The base rate is captured from the
    /// optimizer at entry.
    pub fn fit_scheduled(
        &mut self,
        data: &Dataset,
        config: &FitConfig,
        schedule: crate::LrSchedule,
        sync: &mut dyn GradientSync,
    ) -> Result<History, DlError> {
        let base_lr = self
            .optimizer
            .as_ref()
            .ok_or_else(|| DlError::NotReady("compile before fit".into()))?
            .learning_rate();
        let mut history = History::new();
        // Reuse `fit` one epoch at a time so the schedule can retune the
        // optimizer between epochs.
        let mut per_epoch = config.clone();
        per_epoch.epochs = 1;
        per_epoch.early_stop_patience = None;
        for epoch in 0..config.epochs {
            let lr = base_lr * schedule.multiplier(epoch);
            self.optimizer
                .as_mut()
                .expect("checked above")
                .set_learning_rate(lr);
            let h = self.fit(data, &per_epoch, sync)?;
            let mut stats = h.epochs()[0].clone();
            stats.epoch = epoch;
            history.push(stats);
        }
        // Restore the base rate.
        self.optimizer
            .as_mut()
            .expect("checked above")
            .set_learning_rate(base_lr);
        Ok(history)
    }

    /// Computes `(mean loss, accuracy)` on a dataset without training.
    /// Runs on the immutable inference path, so it can be called on a
    /// shared model replica.
    pub fn evaluate(&self, data: &Dataset, batch_size: usize) -> Result<(f64, f64), DlError> {
        let loss_fn = self
            .loss
            .ok_or_else(|| DlError::NotReady("compile first".into()))?;
        if data.is_empty() {
            return Err(DlError::BadInput("empty evaluation dataset".into()));
        }
        let batches = data.batch_indices(batch_size, None);
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        for idx in &batches {
            let (x, y) = data.batch(idx);
            let pred = self.forward_infer(&x)?;
            let (loss, _) = loss_fn.loss_and_grad(&pred, &y);
            loss_sum += loss * idx.len() as f64;
            correct += count_argmax_matches(&pred, &y);
        }
        Ok((
            loss_sum / data.len() as f64,
            correct as f64 / data.len() as f64,
        ))
    }
}

/// Counts rows where prediction and target argmax agree (classification
/// accuracy numerator). For single-column outputs this degenerates to
/// "always 0 matches count" — regression callers ignore it.
///
/// Row-at-a-time with the same first-max tie rule as
/// [`Tensor::argmax_rows`], without materializing the index vectors.
fn count_argmax_matches(pred: &Tensor, target: &Tensor) -> usize {
    if pred.shape().rank() != 2 {
        return 0;
    }
    let (_, cols) = pred.shape().as_2d();
    if cols == 0 {
        return 0;
    }
    pred.data()
        .chunks_exact(cols)
        .zip(target.data().chunks_exact(cols))
        .filter(|(p, t)| argmax_slice(p) == argmax_slice(t))
        .count()
}

/// Index of the first maximum of a non-empty row.
fn argmax_slice(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in row.iter().enumerate().skip(1) {
        if x > row[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense};

    /// Builds a small two-class spiral-ish dataset that a 2-layer MLP can
    /// separate.
    fn toy_classification(n: usize, seed: u64) -> Dataset {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(seed);
        let mut x = Tensor::zeros([n, 2]);
        let mut y = Tensor::zeros([n, 2]);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { -1.0 } else { 1.0 };
            *x.at2_mut(i, 0) = base + (rng.next_f32() - 0.5) * 0.4;
            *x.at2_mut(i, 1) = base + (rng.next_f32() - 0.5) * 0.4;
            *y.at2_mut(i, class) = 1.0;
        }
        Dataset::new(x, y)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = xrng::seeded(seed);
        let mut m = Sequential::new(seed);
        m.add(Box::new(Dense::new(2, 8, Activation::Relu, &mut rng)));
        m.add(Box::new(Dense::new(8, 2, Activation::Linear, &mut rng)));
        m.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.1));
        m
    }

    #[test]
    fn fit_reduces_loss_and_reaches_high_accuracy() {
        let data = toy_classification(200, 1);
        let mut model = mlp(2);
        let config = FitConfig {
            epochs: 30,
            batch_size: 20,
            ..Default::default()
        };
        let history = model.fit(&data, &config, &mut NoSync).unwrap();
        let first = history.epochs().first().unwrap().loss;
        let last = history.final_loss().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(history.final_accuracy().unwrap() > 0.95);
        let (eval_loss, eval_acc) = model.evaluate(&data, 50).unwrap();
        assert!(eval_loss < 0.3);
        assert!(eval_acc > 0.95);
    }

    #[test]
    fn fit_without_compile_errors() {
        let data = toy_classification(10, 3);
        let mut rng = xrng::seeded(4);
        let mut m = Sequential::new(4);
        m.add(Box::new(Dense::new(2, 2, Activation::Linear, &mut rng)));
        let config = FitConfig::default();
        assert!(matches!(
            m.fit(&data, &config, &mut NoSync),
            Err(DlError::NotReady(_))
        ));
    }

    #[test]
    fn forward_without_layers_errors() {
        let mut m = Sequential::new(5);
        assert!(m.forward(&Tensor::zeros([1, 2]), false).is_err());
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut a = mlp(10);
        let b = mlp(11);
        assert_ne!(a.flat_params(), b.flat_params());
        let theirs = b.flat_params();
        a.set_flat_params(&theirs);
        assert_eq!(a.flat_params(), theirs);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_params_wrong_length_panics() {
        let mut m = mlp(12);
        m.set_flat_params(&[0.0; 3]);
    }

    #[test]
    fn gradient_sync_hook_is_invoked_with_full_layout() {
        struct Probe {
            calls: usize,
            len: usize,
        }
        impl GradientSync for Probe {
            fn sync_gradients(&mut self, flat: &mut [f32]) {
                self.calls += 1;
                self.len = flat.len();
                // Zeroing the gradient must freeze the parameters.
                for g in flat.iter_mut() {
                    *g = 0.0;
                }
            }
        }
        let data = toy_classification(40, 6);
        let mut model = mlp(7);
        let before = model.flat_params();
        let mut probe = Probe { calls: 0, len: 0 };
        let config = FitConfig {
            epochs: 1,
            batch_size: 10,
            shuffle: false,
            compute_accuracy: false,
            ..Default::default()
        };
        model.fit(&data, &config, &mut probe).unwrap();
        assert_eq!(probe.calls, 4);
        assert_eq!(probe.len, model.param_count());
        assert_eq!(
            model.flat_params(),
            before,
            "zeroed grads must not move params"
        );
    }

    #[test]
    fn overlapped_sync_streams_descending_contiguous_regions() {
        struct StreamProbe {
            total: usize,
            cursor: usize,
            regions: Vec<(usize, usize)>,
            finishes: usize,
        }
        impl GradientSync for StreamProbe {
            fn sync_gradients(&mut self, _flat: &mut [f32]) {
                panic!("blocking hook must not fire in overlapped mode");
            }
            fn begin_step(&mut self, param_count: usize) -> bool {
                self.total = param_count;
                self.cursor = param_count;
                true
            }
            fn region_ready(&mut self, offset: usize, grad: &[f32]) {
                assert_eq!(
                    offset + grad.len(),
                    self.cursor,
                    "regions must arrive in descending contiguous order"
                );
                assert!(!grad.is_empty());
                self.cursor = offset;
                self.regions.push((offset, grad.len()));
            }
            fn finish_step(&mut self, flat: &mut [f32]) {
                assert_eq!(self.cursor, 0, "regions must cover the full layout");
                assert_eq!(flat.len(), self.total);
                self.finishes += 1;
                // Zeroing the synchronized gradient must freeze the
                // parameters, proving finish_step's output is what the
                // optimizer consumes.
                for g in flat.iter_mut() {
                    *g = 0.0;
                }
            }
        }
        let data = toy_classification(40, 8);
        let mut model = mlp(9);
        // Dropout contributes a zero-parameter layer mid-stack, so the
        // region stream must skip it without breaking contiguity.
        model.add(Box::new(crate::Dropout::new(0.1, xrng::seeded(10))));
        let before = model.flat_params();
        let mut probe = StreamProbe {
            total: 0,
            cursor: 0,
            regions: Vec::new(),
            finishes: 0,
        };
        let config = FitConfig {
            epochs: 1,
            batch_size: 10,
            shuffle: false,
            compute_accuracy: false,
            ..Default::default()
        };
        model.fit(&data, &config, &mut probe).unwrap();
        assert_eq!(probe.finishes, 4);
        // Two Dense layers with parameters -> two regions per step.
        assert_eq!(probe.regions.len(), 8);
        let counts = model.layer_param_counts();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[2], 0, "dropout has no parameters");
        assert_eq!(probe.regions[0], (counts[0], counts[1]));
        assert_eq!(probe.regions[1], (0, counts[0]));
        assert_eq!(model.flat_params(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let data = toy_classification(60, 20);
            let mut model = mlp(21);
            let config = FitConfig {
                epochs: 3,
                batch_size: 12,
                ..Default::default()
            };
            model.fit(&data, &config, &mut NoSync).unwrap();
            model.flat_params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn history_counts_batch_steps() {
        let data = toy_classification(50, 30);
        let mut model = mlp(31);
        let config = FitConfig {
            epochs: 2,
            batch_size: 20,
            ..Default::default()
        };
        let h = model.fit(&data, &config, &mut NoSync).unwrap();
        // 50 samples / 20 batch = 3 steps (trailing partial kept).
        assert_eq!(h.epochs()[0].batch_steps, 3);
        assert_eq!(h.total_batch_steps(), 6);
    }

    #[test]
    fn validation_split_records_val_metrics() {
        let data = toy_classification(100, 50);
        let mut model = mlp(51);
        let config = FitConfig {
            epochs: 5,
            batch_size: 20,
            validation_split: 0.2,
            ..Default::default()
        };
        let h = model.fit(&data, &config, &mut NoSync).unwrap();
        for e in h.epochs() {
            assert!(e.val_loss.is_some());
            assert!(e.val_accuracy.is_some());
            // 80 training samples / 20 batch = 4 steps.
            assert_eq!(e.batch_steps, 4);
        }
        // Validation loss should end up low on this separable task.
        assert!(h.epochs().last().unwrap().val_loss.unwrap() < 1.0);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let data = toy_classification(60, 52);
        let mut model = mlp(53);
        // Freeze learning by zeroing gradients through the sync hook, so
        // the loss plateaus immediately and patience kicks in.
        struct ZeroGrad;
        impl GradientSync for ZeroGrad {
            fn sync_gradients(&mut self, flat: &mut [f32]) {
                for g in flat.iter_mut() {
                    *g = 0.0;
                }
            }
        }
        let config = FitConfig {
            epochs: 50,
            batch_size: 20,
            shuffle: false,
            early_stop_patience: Some(2),
            ..Default::default()
        };
        let h = model.fit(&data, &config, &mut ZeroGrad).unwrap();
        assert!(
            h.epochs().len() <= 4,
            "plateau should stop after ~1+patience epochs, ran {}",
            h.epochs().len()
        );
    }

    #[test]
    fn invalid_validation_split_rejected() {
        let data = toy_classification(10, 54);
        let mut model = mlp(55);
        let config = FitConfig {
            validation_split: 1.0,
            ..Default::default()
        };
        assert!(model.fit(&data, &config, &mut NoSync).is_err());
        let config = FitConfig {
            validation_split: -0.5,
            ..Default::default()
        };
        assert!(model.fit(&data, &config, &mut NoSync).is_err());
    }

    #[test]
    fn fit_scheduled_warmup_restores_base_lr() {
        let data = toy_classification(60, 60);
        let mut model = mlp(61);
        let base = model.optimizer().unwrap().learning_rate();
        let config = FitConfig {
            epochs: 6,
            batch_size: 20,
            ..Default::default()
        };
        let h = model
            .fit_scheduled(
                &data,
                &config,
                crate::LrSchedule::LinearWarmup { warmup_epochs: 3 },
                &mut NoSync,
            )
            .unwrap();
        assert_eq!(h.epochs().len(), 6);
        assert_eq!(h.epochs().last().unwrap().epoch, 5);
        assert!((model.optimizer().unwrap().learning_rate() - base).abs() < 1e-9);
        // Warmup training still learns.
        assert!(h.final_loss().unwrap() < h.epochs()[0].loss);
    }

    #[test]
    fn predict_is_immutable_and_matches_training_path() {
        use crate::Dropout;
        let data = toy_classification(60, 70);
        let mut model = mlp(71);
        // Insert dropout to prove the inference path ignores it without
        // touching its RNG stream.
        model.add(Box::new(Dropout::new(0.5, xrng::seeded(72))));
        let config = FitConfig {
            epochs: 2,
            batch_size: 20,
            ..Default::default()
        };
        model.fit(&data, &config, &mut NoSync).unwrap();
        let x = Tensor::from_fn([7, 2], |i| (i as f32) * 0.1 - 0.5);
        let via_shared = model.predict(&x).unwrap();
        let via_training_path = model.predict_mut(&x).unwrap();
        assert_eq!(via_shared.data(), via_training_path.data());
        // Repeated shared predictions are stable (no hidden state moves).
        assert_eq!(model.predict(&x).unwrap().data(), via_shared.data());
        // And the model is shareable across threads.
        let shared = std::sync::Arc::new(model);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&shared);
                let x = x.clone();
                std::thread::spawn(move || m.predict(&x).unwrap().into_vec())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), via_shared.data());
        }
    }

    #[test]
    fn empty_dataset_is_error() {
        let mut model = mlp(40);
        let empty = Dataset::new(Tensor::zeros([0, 2]), Tensor::zeros([0, 2]));
        assert!(model
            .fit(&empty, &FitConfig::default(), &mut NoSync)
            .is_err());
        assert!(model.evaluate(&empty, 4).is_err());
    }
}
