//! Optimizers: SGD, Adam, and RMSProp — the three used by the P1
//! benchmarks (Table 1 of the paper: NT3/P1B3 use `sgd`, P1B1 uses `adam`,
//! P1B2 uses `rmsprop`).
//!
//! The learning rate is mutable at runtime because the Horovod methodology
//! scales it linearly with the worker count (`lr × nprocs`).

use tensor::Tensor;

/// The optimizer algorithm and its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba 2015) with Keras-default betas.
    Adam {
        /// Exponential decay rate of the first-moment estimate.
        beta1: f32,
        /// Exponential decay rate of the second-moment estimate.
        beta2: f32,
        /// Numerical-stability constant.
        epsilon: f32,
    },
    /// RMSProp with Keras-default decay.
    RmsProp {
        /// Moving-average decay of the squared gradient.
        rho: f32,
        /// Numerical-stability constant.
        epsilon: f32,
    },
}

/// Per-parameter-slot optimizer state.
#[derive(Debug, Clone, Default)]
struct SlotState {
    /// SGD velocity or Adam first moment.
    m: Vec<f32>,
    /// Adam second moment or RMSProp mean square.
    v: Vec<f32>,
    /// Number of updates applied to this slot (Adam bias correction).
    t: u64,
}

/// An exported copy of one slot's moment buffers, used by checkpointing
/// to capture and restore the optimizer mid-run (see
/// [`Optimizer::export_slots`] / [`Optimizer::import_slots`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotSnapshot {
    /// SGD velocity or Adam first moment.
    pub m: Vec<f32>,
    /// Adam second moment or RMSProp mean square.
    pub v: Vec<f32>,
    /// Number of updates applied to this slot (Adam bias correction).
    pub t: u64,
}

/// A stateful optimizer applying updates tensor-by-tensor.
///
/// Each trainable tensor in the model is identified by a stable `slot`
/// index; momentum/moment buffers are kept per slot.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f32,
    /// Decoupled L2 weight decay coefficient (0 disables). P1B2 is "an MLP
    /// network with regularization" — this is that knob.
    weight_decay: f32,
    slots: Vec<SlotState>,
}

impl Optimizer {
    /// Plain SGD, the paper's NT3/P1B3 default (`lr = 0.001`).
    pub fn sgd(lr: f32) -> Self {
        Self::new(OptimizerKind::Sgd { momentum: 0.0 }, lr)
    }

    /// SGD with momentum.
    pub fn sgd_momentum(lr: f32, momentum: f32) -> Self {
        Self::new(OptimizerKind::Sgd { momentum }, lr)
    }

    /// Adam with Keras defaults, the P1B1 optimizer.
    pub fn adam(lr: f32) -> Self {
        Self::new(
            OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                epsilon: 1e-7,
            },
            lr,
        )
    }

    /// RMSProp with Keras defaults, the P1B2 optimizer.
    pub fn rmsprop(lr: f32) -> Self {
        Self::new(
            OptimizerKind::RmsProp {
                rho: 0.9,
                epsilon: 1e-7,
            },
            lr,
        )
    }

    /// Creates an optimizer from explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if `lr` is not positive and finite.
    pub fn new(kind: OptimizerKind, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            kind,
            lr,
            weight_decay: 0.0,
            slots: Vec::new(),
        }
    }

    /// Enables decoupled L2 weight decay: every update also shrinks the
    /// parameters by `lr × decay × p` (the AdamW-style decoupling, which
    /// composes with all three algorithms).
    ///
    /// # Panics
    /// Panics if `decay` is negative or non-finite.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!(decay.is_finite() && decay >= 0.0, "weight decay must be >= 0");
        self.weight_decay = decay;
        self
    }

    /// The configured weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (used for warm restarts in tests).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies the Horovod linear scaling rule: `lr ← lr × workers`.
    pub fn scale_learning_rate(&mut self, workers: usize) {
        assert!(workers > 0, "worker count must be positive");
        self.lr *= workers as f32;
    }

    /// The algorithm in use.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Copies out all per-slot moment buffers, in slot order.
    ///
    /// An optimizer restored via [`Optimizer::import_slots`] continues the
    /// update sequence bit-exactly (the update math reads only `kind`, `lr`,
    /// `weight_decay`, and these buffers).
    pub fn export_slots(&self) -> Vec<SlotSnapshot> {
        self.slots
            .iter()
            .map(|s| SlotSnapshot {
                m: s.m.clone(),
                v: s.v.clone(),
                t: s.t,
            })
            .collect()
    }

    /// Replaces all per-slot moment buffers with an exported snapshot.
    pub fn import_slots(&mut self, slots: Vec<SlotSnapshot>) {
        self.slots = slots
            .into_iter()
            .map(|s| SlotState {
                m: s.m,
                v: s.v,
                t: s.t,
            })
            .collect();
    }

    /// Applies one update to `param` given `grad`, using the state of
    /// `slot`.
    ///
    /// # Panics
    /// Panics if `param` and `grad` lengths differ.
    pub fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        self.update_slice(slot, param.data_mut(), grad.data());
    }

    /// [`Optimizer::update`] on raw slices. This is the form the training
    /// hot loop uses: the model keeps all gradients in one flat buffer and
    /// hands each slot's window here, so no gradient tensors are cloned.
    ///
    /// # Panics
    /// Panics if `param` and `grad` lengths differ.
    pub fn update_slice(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(
            param.len(),
            grad.len(),
            "optimizer: parameter/gradient length mismatch"
        );
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, SlotState::default);
        }
        if self.weight_decay > 0.0 {
            let shrink = 1.0 - self.lr * self.weight_decay;
            for p in param.iter_mut() {
                *p *= shrink;
            }
        }
        let state = &mut self.slots[slot];
        let n = param.len();
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                if momentum == 0.0 {
                    for (p, &g) in param.iter_mut().zip(grad) {
                        *p -= self.lr * g;
                    }
                } else {
                    if state.m.len() != n {
                        state.m = vec![0.0; n];
                    }
                    for ((p, &g), v) in param.iter_mut().zip(grad).zip(&mut state.m) {
                        *v = momentum * *v - self.lr * g;
                        *p += *v;
                    }
                }
            }
            OptimizerKind::Adam {
                beta1,
                beta2,
                epsilon,
            } => {
                if state.m.len() != n {
                    state.m = vec![0.0; n];
                    state.v = vec![0.0; n];
                    state.t = 0;
                }
                state.t += 1;
                let t = state.t as f64;
                let bc1 = 1.0 - (beta1 as f64).powf(t);
                let bc2 = 1.0 - (beta2 as f64).powf(t);
                let alpha = self.lr as f64 * bc2.sqrt() / bc1;
                for (((p, &g), m), v) in param
                    .iter_mut()
                    .zip(grad)
                    .zip(&mut state.m)
                    .zip(&mut state.v)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    *p -= (alpha * (*m as f64) / ((*v as f64).sqrt() + epsilon as f64)) as f32;
                }
            }
            OptimizerKind::RmsProp { rho, epsilon } => {
                if state.v.len() != n {
                    state.v = vec![0.0; n];
                }
                for ((p, &g), v) in param.iter_mut().zip(grad).zip(&mut state.v) {
                    *v = rho * *v + (1.0 - rho) * g * g;
                    *p -= self.lr * g / (v.sqrt() + epsilon);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(mut opt: Optimizer, steps: usize) -> f32 {
        // Minimize f(x) = x² starting at x = 5; gradient is 2x.
        let mut x = Tensor::from_vec([1], vec![5.0]).unwrap();
        for _ in 0..steps {
            let g = Tensor::from_vec([1], vec![2.0 * x.data()[0]]).unwrap();
            opt.update(0, &mut x, &g);
        }
        x.data()[0].abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(quadratic_descent(Optimizer::sgd(0.1), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(quadratic_descent(Optimizer::sgd_momentum(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(quadratic_descent(Optimizer::adam(0.2), 300) < 1e-2);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        assert!(quadratic_descent(Optimizer::rmsprop(0.05), 400) < 0.05);
    }

    #[test]
    fn sgd_step_is_exactly_lr_times_grad() {
        let mut opt = Optimizer::sgd(0.5);
        let mut p = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let g = Tensor::from_vec([2], vec![0.2, -0.4]).unwrap();
        opt.update(0, &mut p, &g);
        assert_eq!(p.data(), &[0.9, 2.2]);
    }

    #[test]
    fn slots_have_independent_state() {
        let mut opt = Optimizer::adam(0.1);
        let mut a = Tensor::from_vec([1], vec![1.0]).unwrap();
        let mut b = Tensor::from_vec([1], vec![1.0]).unwrap();
        let g = Tensor::from_vec([1], vec![1.0]).unwrap();
        // Updating slot 0 many times must not affect slot 1's bias correction.
        for _ in 0..10 {
            opt.update(0, &mut a, &g);
        }
        let mut fresh = Optimizer::adam(0.1);
        let mut b2 = Tensor::from_vec([1], vec![1.0]).unwrap();
        opt.update(1, &mut b, &g);
        fresh.update(0, &mut b2, &g);
        assert!((b.data()[0] - b2.data()[0]).abs() < 1e-7);
    }

    #[test]
    fn linear_lr_scaling() {
        let mut opt = Optimizer::sgd(0.001);
        opt.scale_learning_rate(24);
        assert!((opt.learning_rate() - 0.024).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Optimizer::sgd(0.1);
        let mut p = Tensor::zeros([2]);
        let g = Tensor::zeros([3]);
        opt.update(0, &mut p, &g);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_lr_rejected() {
        Optimizer::sgd(0.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut opt = Optimizer::sgd(0.1).with_weight_decay(0.5);
        let mut p = Tensor::from_vec([1], vec![2.0]).unwrap();
        let g = Tensor::zeros([1]);
        opt.update(0, &mut p, &g);
        // p <- p * (1 - lr*decay) = 2.0 * 0.95
        assert!((p.data()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_regularizes_against_blowup() {
        // On a diverging direction (gradient pushing away from 0), decay
        // bounds the parameter magnitude.
        let mut plain = Optimizer::sgd(0.1);
        let mut decayed = Optimizer::sgd(0.1).with_weight_decay(1.0);
        let mut a = Tensor::from_vec([1], vec![1.0]).unwrap();
        let mut b = Tensor::from_vec([1], vec![1.0]).unwrap();
        let g = Tensor::from_vec([1], vec![-0.5]).unwrap();
        for _ in 0..100 {
            plain.update(0, &mut a, &g);
            decayed.update(0, &mut b, &g);
        }
        assert!(b.data()[0].abs() < a.data()[0].abs());
        assert!(b.data()[0].abs() < 1.0, "decayed param stays bounded");
    }

    #[test]
    #[should_panic(expected = "weight decay must be >= 0")]
    fn negative_decay_rejected() {
        let _ = Optimizer::sgd(0.1).with_weight_decay(-0.1);
    }

    #[test]
    fn slot_export_import_resumes_bit_exactly() {
        // Run Adam 5 steps, snapshot, run 5 more; a fresh optimizer fed the
        // snapshot must reproduce the second half exactly.
        let mut opt = Optimizer::adam(0.05);
        let mut p = Tensor::from_vec([3], vec![1.0, -2.0, 0.5]).unwrap();
        let g = Tensor::from_vec([3], vec![0.3, -0.1, 0.7]).unwrap();
        for _ in 0..5 {
            opt.update(0, &mut p, &g);
        }
        let snap_slots = opt.export_slots();
        let snap_p = p.clone();
        for _ in 0..5 {
            opt.update(0, &mut p, &g);
        }
        let mut resumed = Optimizer::adam(0.05);
        resumed.import_slots(snap_slots);
        let mut q = snap_p;
        for _ in 0..5 {
            resumed.update(0, &mut q, &g);
        }
        assert_eq!(p.data(), q.data());
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // Adam's bias-corrected first step has magnitude ≈ lr regardless of
        // gradient scale.
        let mut opt = Optimizer::adam(0.01);
        let mut p = Tensor::from_vec([1], vec![0.0]).unwrap();
        let g = Tensor::from_vec([1], vec![123.0]).unwrap();
        opt.update(0, &mut p, &g);
        assert!(
            (p.data()[0].abs() - 0.01).abs() < 1e-4,
            "step {}",
            p.data()[0]
        );
    }
}
