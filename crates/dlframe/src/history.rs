//! Per-epoch training statistics, mirroring the Keras `History` object.

/// Metrics recorded at the end of one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
    /// Training accuracy (classification) or `None` for pure regression.
    pub accuracy: Option<f64>,
    /// Number of batch steps executed in the epoch.
    pub batch_steps: usize,
    /// Held-out validation loss, when a validation split is configured.
    pub val_loss: Option<f64>,
    /// Held-out validation accuracy, when configured and applicable.
    pub val_accuracy: Option<f64>,
}

/// Accumulated run history.
#[derive(Debug, Clone, Default)]
pub struct History {
    epochs: Vec<EpochStats>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch record.
    pub fn push(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
    }

    /// All epoch records in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// The most recent epoch record, if any.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }

    /// Final training loss, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.last().map(|e| e.loss)
    }

    /// Final training accuracy, if recorded.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.last().and_then(|e| e.accuracy)
    }

    /// Total batch steps across all epochs.
    pub fn total_batch_steps(&self) -> usize {
        self.epochs.iter().map(|e| e.batch_steps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(epoch: usize, loss: f64) -> EpochStats {
        EpochStats {
            epoch,
            loss,
            accuracy: Some(0.5 + epoch as f64 * 0.1),
            batch_steps: 4,
            val_loss: Some(loss * 1.1),
            val_accuracy: None,
        }
    }

    #[test]
    fn accumulates_in_order() {
        let mut h = History::new();
        h.push(stats(0, 1.0));
        h.push(stats(1, 0.5));
        assert_eq!(h.epochs().len(), 2);
        assert_eq!(h.final_loss(), Some(0.5));
        assert_eq!(h.final_accuracy(), Some(0.6));
        assert_eq!(h.total_batch_steps(), 8);
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.last().is_none());
        assert_eq!(h.final_loss(), None);
        assert_eq!(h.total_batch_steps(), 0);
    }
}
