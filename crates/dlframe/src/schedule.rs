//! Learning-rate schedules.
//!
//! The paper scales the learning rate linearly with the worker count
//! (§2.3.2) and cites the large-batch training literature (McCandlish et
//! al. [20], You et al. [36]) that pairs that rule with a **warmup**: the
//! scaled rate is reached gradually over the first epochs to avoid the
//! early-training instability large effective batches cause. This module
//! provides the standard schedules; `Sequential::fit_scheduled` applies
//! one per epoch.

/// A per-epoch learning-rate schedule, mapping epoch index to a multiplier
/// of the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The base rate throughout.
    Constant,
    /// Linear ramp from `1/warmup_epochs` of the rate to the full rate
    /// over `warmup_epochs`, then constant — the Goyal-style warmup used
    /// with linear LR scaling.
    LinearWarmup {
        /// Epochs over which to ramp.
        warmup_epochs: usize,
    },
    /// Multiply the rate by `factor` every `every_epochs` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every_epochs: usize,
        /// Decay multiplier per step (e.g. 0.1).
        factor: f32,
    },
}

impl LrSchedule {
    /// The multiplier applied to the base learning rate at `epoch`
    /// (0-based).
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero warmup/interval,
    /// non-positive decay factor).
    pub fn multiplier(self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::LinearWarmup { warmup_epochs } => {
                assert!(warmup_epochs > 0, "warmup_epochs must be positive");
                if epoch >= warmup_epochs {
                    1.0
                } else {
                    (epoch + 1) as f32 / warmup_epochs as f32
                }
            }
            LrSchedule::StepDecay {
                every_epochs,
                factor,
            } => {
                assert!(every_epochs > 0, "every_epochs must be positive");
                assert!(factor > 0.0, "decay factor must be positive");
                factor.powi((epoch / every_epochs) as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for e in 0..10 {
            assert_eq!(LrSchedule::Constant.multiplier(e), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::LinearWarmup { warmup_epochs: 4 };
        assert_eq!(s.multiplier(0), 0.25);
        assert_eq!(s.multiplier(1), 0.5);
        assert_eq!(s.multiplier(2), 0.75);
        assert_eq!(s.multiplier(3), 1.0);
        assert_eq!(s.multiplier(4), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            every_epochs: 3,
            factor: 0.5,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert_eq!(s.multiplier(3), 0.5);
        assert_eq!(s.multiplier(6), 0.25);
    }

    #[test]
    #[should_panic(expected = "warmup_epochs must be positive")]
    fn zero_warmup_panics() {
        LrSchedule::LinearWarmup { warmup_epochs: 0 }.multiplier(0);
    }

    #[test]
    #[should_panic(expected = "every_epochs must be positive")]
    fn zero_interval_panics() {
        LrSchedule::StepDecay {
            every_epochs: 0,
            factor: 0.5,
        }
        .multiplier(0);
    }
}
