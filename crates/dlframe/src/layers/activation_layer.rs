//! Standalone activation layer (Keras `Activation("relu")`).

use super::{require_cached, store_cache, Layer};
use crate::{Activation, DlError};
use tensor::{with_scratch, Tensor, Workspace};

/// Applies an [`Activation`] as its own layer.
pub struct ActivationLayer {
    activation: Activation,
    output_cache: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function in a layer.
    pub fn new(activation: Activation) -> Self {
        Self {
            activation,
            output_cache: None,
        }
    }

    /// The wrapped activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> &'static str {
        "activation"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.forward_ws(input, training, ws))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let mut y = ws.alloc_copy(input);
        self.activation.forward_inplace(&mut y);
        store_cache(&mut self.output_cache, &y, ws);
        Ok(y)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        Ok(self.activation.forward(input))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.backward_ws(grad_out, ws))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let y = require_cached(&self.output_cache, "activation")?;
        let mut g = ws.alloc(y.shape().clone());
        self.activation.backward_into(y, grad_out, &mut g);
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_layer_forward_backward() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_vec([4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = layer.backward(&Tensor::full([4], 1.0)).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = ActivationLayer::new(Activation::Sigmoid);
        assert!(layer.backward(&Tensor::zeros([2])).is_err());
    }
}
