//! Standalone activation layer (Keras `Activation("relu")`).

use super::{require_cached, Layer};
use crate::{Activation, DlError};
use tensor::Tensor;

/// Applies an [`Activation`] as its own layer.
pub struct ActivationLayer {
    activation: Activation,
    output_cache: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function in a layer.
    pub fn new(activation: Activation) -> Self {
        Self {
            activation,
            output_cache: None,
        }
    }

    /// The wrapped activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> &'static str {
        "activation"
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, DlError> {
        let y = self.activation.forward(input);
        self.output_cache = Some(y.clone());
        Ok(y)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        Ok(self.activation.forward(input))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        let y = require_cached(&self.output_cache, "activation")?;
        Ok(self.activation.backward(y, grad_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_layer_forward_backward() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_vec([4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = layer.backward(&Tensor::full([4], 1.0)).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = ActivationLayer::new(Activation::Sigmoid);
        assert!(layer.backward(&Tensor::zeros([2])).is_err());
    }
}
