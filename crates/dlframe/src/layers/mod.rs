//! Neural-network layers.
//!
//! Each layer owns its parameters and the gradient buffers the last
//! backward pass produced; the [`Sequential`](crate::Sequential) model walks
//! these through the optimizer (and, in distributed runs, through the
//! gradient-averaging allreduce) in a fixed layer/parameter order so every
//! worker sees an identical flat layout.

mod activation_layer;
mod conv;
mod dense;
mod dropout;
mod pool;
mod reshape;

pub use activation_layer::ActivationLayer;
pub use conv::Conv1D;
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::MaxPooling1D;
pub use reshape::{Flatten, Reshape3};

use crate::DlError;
use tensor::{Tensor, Workspace};

/// A differentiable layer in a [`Sequential`](crate::Sequential) stack.
///
/// `Send + Sync` is required so a trained model can be shared immutably
/// between inference worker threads (the `serve` crate wraps one replica
/// in an `Arc` and runs [`Layer::forward_infer`] from many workers).
pub trait Layer: Send + Sync {
    /// Keras-style layer name (for summaries and traces).
    fn name(&self) -> &'static str;

    /// Computes the layer output, caching whatever the backward pass needs.
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError>;

    /// Inference-only forward pass: no training-time stochasticity
    /// (dropout is identity) and no backward cache, so it works on a
    /// shared `&self` and is safe to call concurrently. Must produce
    /// bit-identical outputs to `forward(input, false)`.
    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError>;

    /// Computes `dL/dinput` from `dL/doutput` and accumulates parameter
    /// gradients internally. Must be called after `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError>;

    /// Workspace-aware forward pass: scratch and output buffers come from
    /// `ws`'s pool, so the training hot loop performs no heap allocation
    /// once warm. Semantically identical to [`Layer::forward`] (which is
    /// the default implementation, for custom layers that don't opt in).
    fn forward_ws(
        &mut self,
        input: &Tensor,
        training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let _ = ws;
        self.forward(input, training)
    }

    /// Workspace-aware backward pass; see [`Layer::forward_ws`].
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let _ = ws;
        self.backward(grad_out)
    }

    /// The layer's trainable parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Gradients of the last backward pass, aligned with [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the gradients (used by the distributed gradient
    /// averaging hook).
    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Visits each gradient tensor in [`Layer::params`] order without
    /// materializing a `Vec` (the hot-path form of [`Layer::grads`]; the
    /// default is allocation-free only for parameterless layers, so
    /// parameterized layers should override).
    fn for_each_grad(&self, f: &mut dyn FnMut(&Tensor)) {
        for g in self.grads() {
            f(g);
        }
    }

    /// Mutable counterpart of [`Layer::for_each_grad`].
    fn for_each_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for g in self.grads_mut() {
            f(g);
        }
    }

    /// Visits each parameter tensor mutably, in [`Layer::params`] order,
    /// without materializing a `Vec`.
    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// The layer's private random stream, if it has one (dropout does).
    ///
    /// Checkpointing walks these to capture every stochastic stream in the
    /// model, which is what makes interrupted training resumable bit-exactly.
    fn rng(&self) -> Option<&xrng::Rng> {
        None
    }

    /// Mutable access to the layer's private random stream, aligned with
    /// [`Layer::rng`] (used to restore a checkpointed stream position).
    fn rng_mut(&mut self) -> Option<&mut xrng::Rng> {
        None
    }
}

/// Stores `src` into a layer's persistent cache slot. The first call takes
/// a pooled buffer from `ws`; every later call reuses the slot's own buffer
/// via [`Tensor::copy_from`], so steady-state caching allocates nothing.
pub(crate) fn store_cache(slot: &mut Option<Tensor>, src: &Tensor, ws: &mut Workspace) {
    match slot {
        Some(t) => t.copy_from(src),
        None => *slot = Some(ws.alloc_copy(src)),
    }
}

/// Validates that a cached forward activation exists; shared helper for the
/// "backward before forward" error.
pub(crate) fn require_cached<'t>(
    cache: &'t Option<Tensor>,
    layer: &'static str,
) -> Result<&'t Tensor, DlError> {
    cache
        .as_ref()
        .ok_or_else(|| DlError::NotReady(format!("{layer}: backward called before forward")))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoParams;
    impl Layer for NoParams {
        fn name(&self) -> &'static str {
            "noparams"
        }
        fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, DlError> {
            Ok(input.clone())
        }
        fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
            Ok(grad_out.clone())
        }
    }

    #[test]
    fn default_param_methods_are_empty() {
        let mut l = NoParams;
        assert!(l.params().is_empty());
        assert!(l.params_mut().is_empty());
        assert!(l.grads().is_empty());
        assert_eq!(l.param_count(), 0);
    }

    #[test]
    fn require_cached_error_message() {
        let none: Option<Tensor> = None;
        let err = require_cached(&none, "dense").unwrap_err();
        assert!(matches!(err, DlError::NotReady(_)));
    }
}
