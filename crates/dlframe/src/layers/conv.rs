//! 1-D convolutional layer (the NT3 feature extractor).
//!
//! Runs on the im2col+GEMM kernels: forward is one fused-epilogue GEMM
//! (bias and pointwise activation applied inside the kernel) and backward
//! writes the weight gradient straight into the persistent tensor.

use super::{require_cached, store_cache, Layer};
use crate::{Activation, DlError};
use tensor::{
    conv1d_backward_ws, conv1d_forward_ws, conv1d_output_len, with_scratch, FusedAct,
    Initializer, Tensor, Workspace,
};
use xrng::Rng;

/// Keras-style `Conv1D(filters, kernel_size, strides, activation)` with
/// valid padding.
///
/// Input: `(batch, steps, in_channels)`; output `(batch, out_steps, filters)`.
pub struct Conv1D {
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    activation: Activation,
    stride: usize,
    kernel: usize,
    in_channels: usize,
    filters: usize,
    input_cache: Option<Tensor>,
    output_cache: Option<Tensor>,
}

impl Conv1D {
    /// Creates a convolution layer with Glorot-uniform kernels.
    pub fn new(
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            in_channels > 0 && filters > 0 && kernel > 0 && stride > 0,
            "Conv1D dims must be positive"
        );
        let fan_in = kernel * in_channels;
        let fan_out = kernel * filters;
        Self {
            weights: Initializer::GlorotUniform.init(
                [kernel, in_channels, filters],
                fan_in,
                fan_out,
                rng,
            ),
            bias: Tensor::zeros([filters]),
            grad_weights: Tensor::zeros([kernel, in_channels, filters]),
            grad_bias: Tensor::zeros([filters]),
            activation,
            stride,
            kernel,
            in_channels,
            filters,
            input_cache: None,
            output_cache: None,
        }
    }

    /// Output length for a given input length, if the input is long enough.
    pub fn output_len(&self, steps: usize) -> Option<usize> {
        conv1d_output_len(steps, self.kernel, self.stride)
    }

    /// Number of output channels.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// The pure computation shared by the training and inference paths:
    /// im2col + GEMM with the bias and pointwise activation fused into the
    /// epilogue. (A non-pointwise activation falls back to a separate
    /// pass, preserving the old semantics.)
    fn compute_ws(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let (_, _, in_ch) = input.shape().as_3d();
        if in_ch != self.in_channels {
            return Err(DlError::BadInput(format!(
                "conv1d expects {} channels, got {in_ch}",
                self.in_channels
            )));
        }
        let fused = self.activation.fused();
        let mut z = conv1d_forward_ws(
            input,
            &self.weights,
            self.stride,
            Some(self.bias.data()),
            fused.unwrap_or(FusedAct::Linear),
            ws,
        )
        .map_err(|e| DlError::BadInput(e.to_string()))?;
        if fused.is_none() {
            self.activation.forward_inplace(&mut z);
        }
        Ok(z)
    }
}

impl Layer for Conv1D {
    fn name(&self) -> &'static str {
        "conv1d"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.forward_ws(input, training, ws))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let y = self.compute_ws(input, ws)?;
        store_cache(&mut self.input_cache, input, ws);
        store_cache(&mut self.output_cache, &y, ws);
        Ok(y)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.compute_ws(input, ws))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.backward_ws(grad_out, ws))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let grad_z = {
            let y = require_cached(&self.output_cache, "conv1d")?;
            let mut gz = ws.alloc(y.shape().clone());
            self.activation.backward_into(y, grad_out, &mut gz);
            gz
        };
        let x = require_cached(&self.input_cache, "conv1d")?;
        let grad_input = conv1d_backward_ws(
            x,
            &self.weights,
            &grad_z,
            self.stride,
            &mut self.grad_weights,
            ws,
        )
        .map_err(|e| DlError::BadInput(e.to_string()))?;
        // Bias gradient: sum of grad_z over batch and steps per channel.
        let (_, _, out_ch) = grad_z.shape().as_3d();
        let gb = self.grad_bias.data_mut();
        gb.fill(0.0);
        for row in grad_z.data().chunks_exact(out_ch) {
            for (g, &v) in gb.iter_mut().zip(row) {
                *g += v;
            }
        }
        ws.recycle(grad_z);
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weights, &mut self.grad_bias]
    }

    fn for_each_grad(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.grad_weights);
        f(&self.grad_bias);
    }

    fn for_each_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.grad_weights);
        f(&mut self.grad_bias);
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weights);
        f(&mut self.bias);
    }

    fn param_count(&self) -> usize {
        // Allocation-free override: the default goes through `params()`
        // and would heap-allocate on the training hot path.
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    #[test]
    fn forward_shape() {
        let mut rng = xrng::seeded(1);
        let mut layer = Conv1D::new(2, 5, 3, 1, Activation::Relu, &mut rng);
        let x = Tensor::zeros([4, 10, 2]);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[4, 8, 5]);
        assert_eq!(layer.output_len(10), Some(8));
    }

    #[test]
    fn rejects_channel_mismatch() {
        let mut rng = xrng::seeded(2);
        let mut layer = Conv1D::new(2, 3, 3, 1, Activation::Relu, &mut rng);
        assert!(layer.forward(&Tensor::zeros([1, 10, 4]), true).is_err());
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut rng = xrng::seeded(3);
        let mut layer = Conv1D::new(1, 2, 1, 1, Activation::Linear, &mut rng);
        for w in layer.weights.data_mut() {
            *w = 0.0;
        }
        layer.bias = Tensor::from_vec([2], vec![3.0, -1.0]).unwrap();
        let y = layer.forward(&Tensor::zeros([1, 4, 1]), true).unwrap();
        for t in 0..4 {
            assert_eq!(y.data()[t * 2], 3.0);
            assert_eq!(y.data()[t * 2 + 1], -1.0);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = xrng::seeded(4);
        let mut layer = Conv1D::new(2, 3, 3, 2, Activation::Tanh, &mut rng);
        let x = Tensor::from_fn([2, 9, 2], |_| rng.next_f32() - 0.5);
        let y = layer.forward(&x, true).unwrap();
        let w_dir = Tensor::from_fn(y.shape().clone().dims().to_vec(), |_| rng.next_f32() - 0.5);
        let gx = layer.backward(&w_dir).unwrap();
        let gw = layer.grad_weights.clone();
        let gb = layer.grad_bias.clone();
        let eps = 1e-3f32;
        let loss =
            |l: &mut Conv1D, x: &Tensor| l.forward(x, true).unwrap().mul(&w_dir).unwrap().sum();
        for idx in [0usize, 9, 23] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps as f64);
            assert!(
                (numeric - gx.data()[idx] as f64).abs() < 1e-2,
                "gx idx {idx}"
            );
        }
        for idx in [0usize, 7, 15] {
            let orig = layer.weights.data()[idx];
            layer.weights.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.weights.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.weights.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gw.data()[idx] as f64).abs() < 1e-2,
                "gw idx {idx}"
            );
        }
        for idx in 0..gb.len() {
            let orig = layer.bias.data()[idx];
            layer.bias.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gb.data()[idx] as f64).abs() < 1e-2,
                "gb idx {idx}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = xrng::seeded(5);
        let layer = Conv1D::new(3, 4, 5, 1, Activation::Relu, &mut rng);
        assert_eq!(layer.param_count(), 5 * 3 * 4 + 4);
    }
}
