//! Fully connected layer.
//!
//! Forward is a single fused-epilogue GEMM (`y = act(x·W + b)` in one
//! pass over the output) and backward is two `gemm_into` calls writing
//! straight into the persistent gradient tensors — no temporaries beyond
//! the workspace pool.

use super::{require_cached, store_cache, Layer};
use crate::{Activation, DlError};
use tensor::{gemm_into, gemm_slice, with_scratch, Epilogue, GemmMode, Initializer, Tensor,
    Workspace};
use xrng::Rng;

/// `y = act(x·W + b)` for `x: (batch, in)`, `W: (in, out)`, `b: (out)`.
///
/// The activation is fused into the layer (as in Keras' `Dense(units,
/// activation=...)`), which keeps the backward pass self-contained.
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    activation: Activation,
    input_cache: Option<Tensor>,
    output_cache: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        Self {
            weights: Initializer::GlorotUniform.init([in_dim, out_dim], in_dim, out_dim, rng),
            bias: Tensor::zeros([out_dim]),
            grad_weights: Tensor::zeros([in_dim, out_dim]),
            grad_bias: Tensor::zeros([out_dim]),
            activation,
            input_cache: None,
            output_cache: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The pure computation shared by the training and inference paths:
    /// one GEMM with the bias and (pointwise) activation fused into the
    /// epilogue. Softmax is row-wise, so it runs as a separate in-place
    /// pass after a bias-only epilogue.
    fn compute_ws(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let (batch, cols) = input.shape().as_2d();
        if cols != self.in_dim {
            return Err(DlError::BadInput(format!(
                "dense expects {} features, got {cols}",
                self.in_dim
            )));
        }
        let mut z = ws.alloc([batch, self.out_dim]);
        let fused = self.activation.fused();
        let epilogue = Epilogue {
            bias: Some(self.bias.data()),
            act: fused.unwrap_or_default(),
        };
        gemm_slice(
            GemmMode::Ab,
            input.data(),
            self.weights.data(),
            batch,
            self.in_dim,
            self.out_dim,
            z.data_mut(),
            &epilogue,
            0,
            ws,
        );
        if fused.is_none() {
            self.activation.forward_inplace(&mut z);
        }
        Ok(z)
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.forward_ws(input, training, ws))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let y = self.compute_ws(input, ws)?;
        store_cache(&mut self.input_cache, input, ws);
        store_cache(&mut self.output_cache, &y, ws);
        Ok(y)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.compute_ws(input, ws))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.backward_ws(grad_out, ws))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let grad_z = {
            let y = require_cached(&self.output_cache, "dense")?;
            let mut gz = ws.alloc(y.shape().clone());
            self.activation.backward_into(y, grad_out, &mut gz);
            gz
        };
        let x = require_cached(&self.input_cache, "dense")?;
        gemm_into(
            GemmMode::AtB,
            x,
            &grad_z,
            &mut self.grad_weights,
            &Epilogue::NONE,
            ws,
        )
        .map_err(|e| DlError::BadInput(e.to_string()))?;
        grad_z.sum_rows_into(&mut self.grad_bias);
        let (batch, _) = grad_z.shape().as_2d();
        let mut gx = ws.alloc([batch, self.in_dim]);
        gemm_into(
            GemmMode::ABt,
            &grad_z,
            &self.weights,
            &mut gx,
            &Epilogue::NONE,
            ws,
        )
        .map_err(|e| DlError::BadInput(e.to_string()))?;
        ws.recycle(grad_z);
        Ok(gx)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weights, &mut self.grad_bias]
    }

    fn for_each_grad(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.grad_weights);
        f(&self.grad_bias);
    }

    fn for_each_grad_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.grad_weights);
        f(&mut self.grad_bias);
    }

    fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weights);
        f(&mut self.bias);
    }

    fn param_count(&self) -> usize {
        // Allocation-free override: the default goes through `params()`
        // and would heap-allocate on the training hot path.
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = xrng::seeded(1);
        let mut layer = Dense::new(3, 2, Activation::Linear, &mut rng);
        // Zero the weights to isolate the bias path.
        for w in layer.weights.data_mut() {
            *w = 0.0;
        }
        layer.bias = Tensor::from_vec([2], vec![1.5, -0.5]).unwrap();
        let x = Tensor::zeros([4, 3]);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[4, 2]);
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.5, -0.5]);
        }
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = xrng::seeded(2);
        let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        assert!(layer.forward(&Tensor::zeros([4, 5]), true).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = xrng::seeded(3);
        let mut layer = Dense::new(2, 2, Activation::Linear, &mut rng);
        assert!(layer.backward(&Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = xrng::seeded(4);
        let mut layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Tensor::from_fn([5, 4], |_| rng.next_f32() - 0.5);
        let w_dir = Tensor::from_fn([5, 3], |_| rng.next_f32() - 0.5);
        // Loss = sum(y * w_dir).
        let y = layer.forward(&x, true).unwrap();
        let _ = y;
        let gx = layer.backward(&w_dir).unwrap();
        let eps = 1e-3f32;
        // Input gradient.
        for idx in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = layer.forward(&xp, true).unwrap().mul(&w_dir).unwrap().sum();
            let lm = layer.forward(&xm, true).unwrap().mul(&w_dir).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gx.data()[idx] as f64).abs() < 1e-2,
                "input grad idx {idx}"
            );
        }
        // Weight gradient (recompute baseline gradient after the probes).
        layer.forward(&x, true).unwrap();
        layer.backward(&w_dir).unwrap();
        let gw = layer.grad_weights.clone();
        for idx in [0usize, 5, 11] {
            let orig = layer.weights.data()[idx];
            layer.weights.data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x, true).unwrap().mul(&w_dir).unwrap().sum();
            layer.weights.data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x, true).unwrap().mul(&w_dir).unwrap().sum();
            layer.weights.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gw.data()[idx] as f64).abs() < 1e-2,
                "weight grad idx {idx}: {numeric} vs {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn param_count_and_order() {
        let mut rng = xrng::seeded(5);
        let layer = Dense::new(10, 4, Activation::Relu, &mut rng);
        assert_eq!(layer.param_count(), 44);
        let params = layer.params();
        assert_eq!(params[0].shape().dims(), &[10, 4]);
        assert_eq!(params[1].shape().dims(), &[4]);
    }
}
