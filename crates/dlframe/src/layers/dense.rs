//! Fully connected layer.

use super::{require_cached, Layer};
use crate::{Activation, DlError};
use tensor::{matmul, matmul_a_bt, matmul_at_b, Initializer, Tensor};
use xrng::Rng;

/// `y = act(x·W + b)` for `x: (batch, in)`, `W: (in, out)`, `b: (out)`.
///
/// The activation is fused into the layer (as in Keras' `Dense(units,
/// activation=...)`), which keeps the backward pass self-contained.
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    activation: Activation,
    input_cache: Option<Tensor>,
    output_cache: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        Self {
            weights: Initializer::GlorotUniform.init([in_dim, out_dim], in_dim, out_dim, rng),
            bias: Tensor::zeros([out_dim]),
            grad_weights: Tensor::zeros([in_dim, out_dim]),
            grad_bias: Tensor::zeros([out_dim]),
            activation,
            input_cache: None,
            output_cache: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The pure computation shared by the training and inference paths.
    fn compute(&self, input: &Tensor) -> Result<Tensor, DlError> {
        let (_, cols) = input.shape().as_2d();
        if cols != self.in_dim {
            return Err(DlError::BadInput(format!(
                "dense expects {} features, got {cols}",
                self.in_dim
            )));
        }
        let mut z = matmul(input, &self.weights).map_err(|e| DlError::BadInput(e.to_string()))?;
        z.add_row_broadcast(&self.bias)
            .map_err(|e| DlError::BadInput(e.to_string()))?;
        Ok(self.activation.forward(&z))
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, DlError> {
        let y = self.compute(input)?;
        self.input_cache = Some(input.clone());
        self.output_cache = Some(y.clone());
        Ok(y)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        self.compute(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        let y = require_cached(&self.output_cache, "dense")?;
        let grad_z = self.activation.backward(y, grad_out);
        let x = require_cached(&self.input_cache, "dense")?;
        self.grad_weights =
            matmul_at_b(x, &grad_z).map_err(|e| DlError::BadInput(e.to_string()))?;
        self.grad_bias = grad_z.sum_rows();
        matmul_a_bt(&grad_z, &self.weights).map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weights, &mut self.grad_bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = xrng::seeded(1);
        let mut layer = Dense::new(3, 2, Activation::Linear, &mut rng);
        // Zero the weights to isolate the bias path.
        for w in layer.weights.data_mut() {
            *w = 0.0;
        }
        layer.bias = Tensor::from_vec([2], vec![1.5, -0.5]).unwrap();
        let x = Tensor::zeros([4, 3]);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[4, 2]);
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.5, -0.5]);
        }
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = xrng::seeded(2);
        let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        assert!(layer.forward(&Tensor::zeros([4, 5]), true).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = xrng::seeded(3);
        let mut layer = Dense::new(2, 2, Activation::Linear, &mut rng);
        assert!(layer.backward(&Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = xrng::seeded(4);
        let mut layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Tensor::from_fn([5, 4], |_| rng.next_f32() - 0.5);
        let w_dir = Tensor::from_fn([5, 3], |_| rng.next_f32() - 0.5);
        // Loss = sum(y * w_dir).
        let y = layer.forward(&x, true).unwrap();
        let _ = y;
        let gx = layer.backward(&w_dir).unwrap();
        let eps = 1e-3f32;
        // Input gradient.
        for idx in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = layer.forward(&xp, true).unwrap().mul(&w_dir).unwrap().sum();
            let lm = layer.forward(&xm, true).unwrap().mul(&w_dir).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gx.data()[idx] as f64).abs() < 1e-2,
                "input grad idx {idx}"
            );
        }
        // Weight gradient (recompute baseline gradient after the probes).
        layer.forward(&x, true).unwrap();
        layer.backward(&w_dir).unwrap();
        let gw = layer.grad_weights.clone();
        for idx in [0usize, 5, 11] {
            let orig = layer.weights.data()[idx];
            layer.weights.data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x, true).unwrap().mul(&w_dir).unwrap().sum();
            layer.weights.data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x, true).unwrap().mul(&w_dir).unwrap().sum();
            layer.weights.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - gw.data()[idx] as f64).abs() < 1e-2,
                "weight grad idx {idx}: {numeric} vs {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn param_count_and_order() {
        let mut rng = xrng::seeded(5);
        let layer = Dense::new(10, 4, Activation::Relu, &mut rng);
        assert_eq!(layer.param_count(), 44);
        let params = layer.params();
        assert_eq!(params[0].shape().dims(), &[10, 4]);
        assert_eq!(params[1].shape().dims(), &[4]);
    }
}
