//! Max-pooling layer.

use super::Layer;
use crate::DlError;
use tensor::{
    maxpool1d_backward_ws, maxpool1d_forward, maxpool1d_forward_ws, with_scratch, Shape, Tensor,
    Workspace,
};

/// Keras-style `MaxPooling1D(pool_size)` with non-overlapping windows.
pub struct MaxPooling1D {
    pool: usize,
    /// Argmax buffer of the last training forward; the `Vec` is moved out
    /// and back so its capacity survives across batches.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Shape>,
}

impl MaxPooling1D {
    /// Creates a pooling layer.
    ///
    /// # Panics
    /// Panics if `pool == 0`.
    pub fn new(pool: usize) -> Self {
        assert!(pool > 0, "pool size must be positive");
        Self {
            pool,
            argmax: None,
            input_shape: None,
        }
    }

    /// The pooling window size.
    pub fn pool_size(&self) -> usize {
        self.pool
    }
}

impl Layer for MaxPooling1D {
    fn name(&self) -> &'static str {
        "max_pooling1d"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.forward_ws(input, training, ws))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let mut argmax = self.argmax.take().unwrap_or_default();
        let out = maxpool1d_forward_ws(input, self.pool, &mut argmax, ws)
            .map_err(|e| DlError::BadInput(e.to_string()))?;
        self.argmax = Some(argmax);
        self.input_shape = Some(input.shape().clone());
        Ok(out)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        let (out, _) =
            maxpool1d_forward(input, self.pool).map_err(|e| DlError::BadInput(e.to_string()))?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.backward_ws(grad_out, ws))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or_else(|| DlError::NotReady("max_pooling1d: backward before forward".into()))?;
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| DlError::NotReady("max_pooling1d: missing input shape".into()))?;
        maxpool1d_backward_ws(shape, grad_out, argmax, ws)
            .map_err(|e| DlError::BadInput(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut layer = MaxPooling1D::new(2);
        let x = Tensor::from_vec([1, 4, 1], vec![1.0, 9.0, 3.0, 2.0]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[9.0, 3.0]);
        let g = layer
            .backward(&Tensor::from_vec([1, 2, 1], vec![5.0, 7.0]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 5.0, 7.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = MaxPooling1D::new(2);
        assert!(layer.backward(&Tensor::zeros([1, 1, 1])).is_err());
    }

    #[test]
    fn too_short_input_is_error() {
        let mut layer = MaxPooling1D::new(8);
        assert!(layer.forward(&Tensor::zeros([1, 4, 1]), true).is_err());
    }

    #[test]
    fn has_no_params() {
        let layer = MaxPooling1D::new(2);
        assert_eq!(layer.param_count(), 0);
    }
}
