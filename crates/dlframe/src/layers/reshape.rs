//! Shape adapters: `Flatten` (rank-3 → rank-2) and `Reshape3`
//! (rank-2 → rank-3).
//!
//! `Reshape3` plays the role of feeding the flat RNA-seq feature vector into
//! NT3's first `Conv1D` as a `(steps, 1)` sequence; `Flatten` is the Keras
//! layer between the convolutional stack and the dense head.

use super::Layer;
use crate::DlError;
use tensor::{Shape, Tensor, Workspace};

/// Collapses `(batch, steps, channels)` to `(batch, steps*channels)`.
pub struct Flatten {
    input_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, DlError> {
        self.input_shape = Some(input.shape().clone());
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        let (batch, steps, ch) = input.shape().as_3d();
        input
            .clone()
            .reshape([batch, steps * ch])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| DlError::NotReady("flatten: backward before forward".into()))?;
        grad_out
            .clone()
            .reshape(shape.dims().to_vec())
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        self.input_shape = Some(input.shape().clone());
        let (batch, steps, ch) = input.shape().as_3d();
        ws.alloc_copy(input)
            .reshape([batch, steps * ch])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let shape = self
            .input_shape
            .clone()
            .ok_or_else(|| DlError::NotReady("flatten: backward before forward".into()))?;
        ws.alloc_copy(grad_out)
            .reshape(shape)
            .map_err(|e| DlError::BadInput(e.to_string()))
    }
}

/// Expands `(batch, steps*channels)` to `(batch, steps, channels)`.
pub struct Reshape3 {
    steps: usize,
    channels: usize,
}

impl Reshape3 {
    /// Creates a reshape layer targeting `(steps, channels)` per sample.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(steps: usize, channels: usize) -> Self {
        assert!(steps > 0 && channels > 0, "Reshape3 dims must be positive");
        Self { steps, channels }
    }
}

impl Layer for Reshape3 {
    fn name(&self) -> &'static str {
        "reshape3"
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor, DlError> {
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        let (batch, features) = input.shape().as_2d();
        if features != self.steps * self.channels {
            return Err(DlError::BadInput(format!(
                "reshape3 expects {} features, got {features}",
                self.steps * self.channels
            )));
        }
        input
            .clone()
            .reshape([batch, self.steps, self.channels])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        let (batch, steps, ch) = grad_out.shape().as_3d();
        grad_out
            .clone()
            .reshape([batch, steps * ch])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        _training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        let (batch, features) = input.shape().as_2d();
        if features != self.steps * self.channels {
            return Err(DlError::BadInput(format!(
                "reshape3 expects {} features, got {features}",
                self.steps * self.channels
            )));
        }
        ws.alloc_copy(input)
            .reshape([batch, self.steps, self.channels])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        let (batch, steps, ch) = grad_out.shape().as_3d();
        ws.alloc_copy(grad_out)
            .reshape([batch, steps * ch])
            .map_err(|e| DlError::BadInput(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut layer = Flatten::new();
        let x = Tensor::from_fn([2, 3, 4], |i| i as f32);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 12]);
        assert_eq!(y.data(), x.data());
        let g = layer.backward(&y).unwrap();
        assert_eq!(g.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn reshape3_roundtrip() {
        let mut layer = Reshape3::new(5, 2);
        let x = Tensor::from_fn([3, 10], |i| i as f32);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[3, 5, 2]);
        let g = layer.backward(&y).unwrap();
        assert_eq!(g.shape().dims(), &[3, 10]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn reshape3_rejects_wrong_width() {
        let mut layer = Reshape3::new(5, 2);
        assert!(layer.forward(&Tensor::zeros([3, 9]), true).is_err());
    }

    #[test]
    fn flatten_backward_before_forward_errors() {
        let mut layer = Flatten::new();
        assert!(layer.backward(&Tensor::zeros([1, 2])).is_err());
    }
}
