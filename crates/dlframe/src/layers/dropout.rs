//! Inverted dropout.

use super::Layer;
use crate::DlError;
use tensor::{with_scratch, Tensor, Workspace};
use xrng::{Bernoulli, Rng};

/// Keras-style `Dropout(rate)` using inverted scaling: at training time each
/// unit is kept with probability `1 - rate` and scaled by `1/(1-rate)`, so
/// inference needs no rescaling.
pub struct Dropout {
    rate: f64,
    rng: Rng,
    /// Mask buffer of the last active training forward; reused across
    /// batches so steady-state training allocates nothing here.
    mask: Vec<f32>,
    /// Whether `mask` reflects the last forward (false for inference or
    /// zero-rate passes, where backward is a passthrough).
    active: bool,
}

impl Dropout {
    /// Creates a dropout layer with its own deterministic random stream.
    ///
    /// # Panics
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f64, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Self {
            rate,
            rng,
            mask: Vec::new(),
            active: false,
        }
    }

    /// The configured drop rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.forward_ws(input, training, ws))
    }

    fn forward_ws(
        &mut self,
        input: &Tensor,
        training: bool,
        ws: &mut Workspace,
    ) -> Result<Tensor, DlError> {
        if !training || self.rate == 0.0 {
            self.active = false;
            return Ok(ws.alloc_copy(input));
        }
        let keep = Bernoulli::new(1.0 - self.rate);
        let scale = (1.0 / (1.0 - self.rate)) as f32;
        // Same sample order as always: one Bernoulli draw per element,
        // in element order, so checkpoints replay bit-exactly.
        self.mask.clear();
        self.mask.extend((0..input.len()).map(|_| {
            if keep.sample(&mut self.rng) {
                scale
            } else {
                0.0
            }
        }));
        let mut out = ws.alloc_copy(input);
        for (x, &m) in out.data_mut().iter_mut().zip(&self.mask) {
            *x *= m;
        }
        self.active = true;
        Ok(out)
    }

    fn forward_infer(&self, input: &Tensor) -> Result<Tensor, DlError> {
        // Inverted dropout is identity at inference; the RNG is untouched.
        Ok(input.clone())
    }

    fn rng(&self) -> Option<&Rng> {
        Some(&self.rng)
    }

    fn rng_mut(&mut self) -> Option<&mut Rng> {
        Some(&mut self.rng)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, DlError> {
        with_scratch(|ws| self.backward_ws(grad_out, ws))
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor, DlError> {
        if !self.active {
            return Ok(ws.alloc_copy(grad_out));
        }
        if self.mask.len() != grad_out.len() {
            return Err(DlError::BadInput(format!(
                "dropout mask length {} vs gradient length {}",
                self.mask.len(),
                grad_out.len()
            )));
        }
        let mut g = ws.alloc_copy(grad_out);
        for (x, &m) in g.data_mut().iter_mut().zip(&self.mask) {
            *x *= m;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut layer = Dropout::new(0.5, xrng::seeded(1));
        let x = Tensor::from_fn([100], |i| i as f32);
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let mut layer = Dropout::new(0.0, xrng::seeded(2));
        let x = Tensor::from_fn([50], |i| i as f32);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn training_drops_and_scales() {
        let mut layer = Dropout::new(0.4, xrng::seeded(3));
        let x = Tensor::full([10_000], 1.0);
        let y = layer.forward(&x, true).unwrap();
        let scale = 1.0 / 0.6f32;
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .data()
            .iter()
            .filter(|&&v| (v - scale).abs() < 1e-6)
            .count();
        assert_eq!(dropped + kept, 10_000);
        let frac = dropped as f64 / 10_000.0;
        assert!((frac - 0.4).abs() < 0.03, "drop fraction {frac}");
        // Expectation is preserved by inverted scaling.
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut layer = Dropout::new(0.5, xrng::seeded(4));
        let x = Tensor::full([1000], 1.0);
        let y = layer.forward(&x, true).unwrap();
        let g = layer.backward(&Tensor::full([1000], 1.0)).unwrap();
        // Gradient passes exactly where the forward output was nonzero.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv == &0.0, gv == &0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rate_one_rejected() {
        Dropout::new(1.0, xrng::seeded(5));
    }

    #[test]
    fn mask_is_seed_deterministic() {
        let run = || {
            let mut layer = Dropout::new(0.3, xrng::seeded(9));
            layer
                .forward(&Tensor::full([64], 1.0), true)
                .unwrap()
                .into_vec()
        };
        assert_eq!(run(), run());
    }
}
