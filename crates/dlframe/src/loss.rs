//! Loss functions.
//!
//! The benchmarks use two losses: categorical cross-entropy for the
//! classifiers (NT3, P1B2, and P1B3's coarse growth buckets when run as
//! classification) and mean squared error for the P1B1 autoencoder and
//! P1B3 regression head.
//!
//! Cross-entropy is computed **from logits**: the model's final dense layer
//! stays linear and the softmax is fused into the loss, which gives the
//! numerically exact gradient `(softmax(z) - target) / batch`.

use tensor::{with_scratch, Tensor, Workspace};

/// A differentiable training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + categorical cross-entropy, taking logits.
    SoftmaxCrossEntropy,
    /// Mean squared error, taking raw predictions.
    MeanSquaredError,
}

impl Loss {
    /// Computes `(mean loss, dL/dpred)` for predictions and one-hot (or
    /// continuous) targets of identical shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn loss_and_grad(self, pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
        with_scratch(|ws| self.loss_and_grad_ws(pred, target, ws))
    }

    /// [`Loss::loss_and_grad`] drawing the gradient tensor from a
    /// [`Workspace`] pool, so the training hot loop allocates nothing here.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn loss_and_grad_ws(
        self,
        pred: &Tensor,
        target: &Tensor,
        ws: &mut Workspace,
    ) -> (f64, Tensor) {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss: prediction and target shapes must match"
        );
        match self {
            Loss::SoftmaxCrossEntropy => {
                let (batch, _classes) = pred.shape().as_2d();
                let mut probs = ws.alloc_copy(pred);
                probs.softmax_rows_inplace();
                // Mean negative log-likelihood of the true class.
                let mut loss = 0.0f64;
                for (p, t) in probs.data().iter().zip(target.data()) {
                    if *t > 0.0 {
                        loss -= (*t as f64) * ((*p as f64).max(1e-12)).ln();
                    }
                }
                loss /= batch as f64;
                let mut grad = probs;
                let scale = 1.0 / batch as f32;
                for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
                    *g = (*g - t) * scale;
                }
                (loss, grad)
            }
            Loss::MeanSquaredError => {
                let n = pred.len().max(1);
                let mut diff = ws.alloc_copy(pred);
                for (d, &t) in diff.data_mut().iter_mut().zip(target.data()) {
                    *d -= t;
                }
                let loss = diff.sum_squares() / n as f64;
                diff.scale(2.0 / n as f32);
                (loss, diff)
            }
        }
    }

    /// The Keras-style name.
    pub fn name(self) -> &'static str {
        match self {
            Loss::SoftmaxCrossEntropy => "categorical_crossentropy",
            Loss::MeanSquaredError => "mse",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    #[test]
    fn mse_on_perfect_prediction_is_zero() {
        let p = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.loss_and_grad(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Tensor::from_vec([1, 2], vec![1.0, 3.0]).unwrap();
        let t = Tensor::from_vec([1, 2], vec![0.0, 0.0]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.loss_and_grad(&p, &t);
        assert!((loss - 5.0).abs() < 1e-9); // (1 + 9) / 2
        assert_eq!(grad.data(), &[1.0, 3.0]); // 2*(p-t)/n
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = Tensor::from_vec([1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let target = Tensor::from_vec([1, 3], vec![1.0, 0.0, 0.0]).unwrap();
        let (loss, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, &target);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn cross_entropy_confident_wrong_is_large() {
        let logits = Tensor::from_vec([1, 3], vec![-10.0, 10.0, -10.0]).unwrap();
        let target = Tensor::from_vec([1, 3], vec![1.0, 0.0, 0.0]).unwrap();
        let (loss, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, &target);
        assert!(loss > 10.0, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Tensor::zeros([4, 5]);
        let target = Tensor::from_fn([4, 5], |i| if i % 5 == 0 { 1.0 } else { 0.0 });
        let (loss, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, &target);
        assert!((loss - (5.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = xrng::seeded(7);
        let logits = Tensor::from_fn([3, 4], |_| rng.next_f32() * 2.0 - 1.0);
        let target = Tensor::from_fn([3, 4], |i| if i % 4 == (i / 4) % 4 { 1.0 } else { 0.0 });
        let (_, grad) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, &target);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[idx] += eps;
            let mut m = logits.clone();
            m.data_mut()[idx] -= eps;
            let (lp, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&p, &target);
            let (lm, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&m, &target);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - grad.data()[idx] as f64).abs() < 1e-3,
                "idx {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero_for_cross_entropy() {
        // softmax minus one-hot sums to zero per row.
        let logits = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let target = Tensor::from_vec([2, 3], vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let (_, grad) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, &target);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn shape_mismatch_panics() {
        let p = Tensor::zeros([1, 2]);
        let t = Tensor::zeros([1, 3]);
        Loss::SoftmaxCrossEntropy.loss_and_grad(&p, &t);
    }
}
