//! Model checkpointing — the fault-tolerance feature the paper lists as
//! future work ("We will add checkpoint/restart features to the Horovod
//! benchmarks for fault tolerance", §7).
//!
//! A checkpoint stores the flat parameter vector with a small
//! little-endian binary header (magic, version, epoch, parameter count)
//! and an additive checksum, so a torn write is detected on restore.

use crate::model::Sequential;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CNDLCKPT";
const VERSION: u32 = 1;

/// A restored checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epoch counter stored by the writer (next epoch to run).
    pub epoch: u64,
    /// The flat parameter vector.
    pub params: Vec<f32>,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file, wrong version, or corrupted payload.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn checksum(params: &[f32]) -> u64 {
    // Order-dependent additive checksum over the raw bits.
    let mut acc = 0xCBF2_9CE4_8422_2325u64;
    for &p in params {
        acc = acc
            .rotate_left(5)
            .wrapping_add(p.to_bits() as u64)
            .wrapping_mul(0x1000_0000_01B3);
    }
    acc
}

/// Writes a checkpoint atomically (write to a sibling temp file, then
/// rename).
pub fn save(path: &Path, epoch: u64, params: &[f32]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&epoch.to_le_bytes())?;
        f.write_all(&(params.len() as u64).to_le_bytes())?;
        f.write_all(&checksum(params).to_le_bytes())?;
        for p in params {
            f.write_all(&p.to_le_bytes())?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Saves a model's parameters.
pub fn save_model(path: &Path, epoch: u64, model: &Sequential) -> Result<(), CheckpointError> {
    save(path, epoch, &model.flat_params())
}

/// Loads and validates a checkpoint.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let mut u32buf = [0u8; 4];
    f.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let epoch = u64::from_le_bytes(u64buf);
    f.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    f.read_exact(&mut u64buf)?;
    let expect_sum = u64::from_le_bytes(u64buf);
    // Cap the pre-allocation: a garbled count field must fail via the
    // truncated-payload path below, not via an absurd allocation.
    let mut params = Vec::with_capacity(count.min(1 << 20));
    let mut f32buf = [0u8; 4];
    for _ in 0..count {
        f.read_exact(&mut f32buf).map_err(|_| {
            CheckpointError::Corrupt(format!("truncated payload (expected {count} params)"))
        })?;
        params.push(f32::from_le_bytes(f32buf));
    }
    if checksum(&params) != expect_sum {
        return Err(CheckpointError::Corrupt("checksum mismatch".into()));
    }
    Ok(Checkpoint { epoch, params })
}

/// Restores a checkpoint into a model of identical architecture.
pub fn restore_model(path: &Path, model: &mut Sequential) -> Result<u64, CheckpointError> {
    let ckpt = load(path)?;
    if ckpt.params.len() != model.param_count() {
        return Err(CheckpointError::Corrupt(format!(
            "parameter count mismatch: checkpoint {} vs model {}",
            ckpt.params.len(),
            model.param_count()
        )));
    }
    model.set_flat_params(&ckpt.params);
    Ok(ckpt.epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense, Loss, Optimizer};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("candle_repro_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_model(seed: u64) -> Sequential {
        let mut rng = xrng::seeded(seed);
        let mut m = Sequential::new(seed);
        m.add(Box::new(Dense::new(4, 3, Activation::Relu, &mut rng)));
        m.add(Box::new(Dense::new(3, 2, Activation::Linear, &mut rng)));
        m.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.1));
        m
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmpfile("roundtrip.ckpt");
        let model = small_model(1);
        save_model(&path, 17, &model).unwrap();
        let ckpt = load(&path).unwrap();
        assert_eq!(ckpt.epoch, 17);
        assert_eq!(ckpt.params, model.flat_params());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn restore_into_fresh_model() {
        let path = tmpfile("restore.ckpt");
        let source = small_model(2);
        save_model(&path, 5, &source).unwrap();
        let mut target = small_model(3);
        assert_ne!(target.flat_params(), source.flat_params());
        let epoch = restore_model(&path, &mut target).unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(target.flat_params(), source.flat_params());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_architecture_rejected() {
        let path = tmpfile("arch.ckpt");
        save(&path, 0, &[1.0, 2.0, 3.0]).unwrap();
        let mut model = small_model(4);
        assert!(matches!(
            restore_model(&path, &mut model),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let path = tmpfile("corrupt.ckpt");
        save(&path, 3, &[1.5f32; 64]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit.
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(load(&path), Err(CheckpointError::Corrupt(msg)) if msg.contains("checksum"))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let path = tmpfile("trunc.ckpt");
        save(&path, 3, &[2.0f32; 64]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(
            matches!(load(&path), Err(CheckpointError::Corrupt(msg)) if msg.contains("truncated"))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("magic.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(msg)) if msg.contains("magic")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load(std::path::Path::new("/nonexistent/x.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn empty_params_roundtrip() {
        let path = tmpfile("empty.ckpt");
        save(&path, 0, &[]).unwrap();
        let ckpt = load(&path).unwrap();
        assert!(ckpt.params.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn model_and_optimizer_state_resume_bit_exactly() {
        use crate::{Dataset, Dropout, FitConfig, NoSync};
        use tensor::Tensor;
        use xrng::RandomSource;
        // A full mid-training snapshot = flat params (via the checkpoint
        // file) + optimizer slots + every RNG stream. Restoring all three
        // must reproduce the uninterrupted run bit-for-bit even with
        // shuffling, dropout, and Adam moments in play.
        let build = || {
            let mut rng = xrng::seeded(31);
            let mut m = Sequential::new(31);
            m.add(Box::new(Dense::new(4, 6, Activation::Relu, &mut rng)));
            m.add(Box::new(Dropout::new(0.2, xrng::seeded(32))));
            m.add(Box::new(Dense::new(6, 2, Activation::Linear, &mut rng)));
            m.compile(Loss::SoftmaxCrossEntropy, Optimizer::adam(0.01));
            m
        };
        let mut rng = xrng::seeded(33);
        let x = Tensor::from_fn([48, 4], |_| rng.next_f32() - 0.5);
        let y = Tensor::from_fn([48, 2], |i| if i % 2 == (i / 2) % 2 { 1.0 } else { 0.0 });
        let data = Dataset::new(x, y);
        let config = FitConfig {
            epochs: 2,
            batch_size: 12,
            shuffle: true,
            compute_accuracy: false,
            ..Default::default()
        };

        let mut model = build();
        model.fit(&data, &config, &mut NoSync).unwrap();
        // Snapshot everything mid-run.
        let path = tmpfile("bitexact.ckpt");
        save_model(&path, 2, &model).unwrap();
        let slots = model.optimizer().unwrap().export_slots();
        let rngs = model.rng_states();
        // Continue the original run to the reference endpoint.
        model.fit(&data, &config, &mut NoSync).unwrap();
        let reference = model.flat_params();

        // Restore into a differently-seeded fresh model and resume.
        let mut resumed = build();
        restore_model(&path, &mut resumed).unwrap();
        resumed.optimizer_mut().unwrap().import_slots(slots);
        resumed.set_rng_states(&rngs);
        resumed.fit(&data, &config, &mut NoSync).unwrap();
        assert_eq!(resumed.flat_params(), reference);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbled_header_fields_rejected() {
        // Garbage inside the fixed-size header (not just the magic): an
        // absurd parameter count must fail cleanly, not attempt a huge
        // allocation-and-read.
        let path = tmpfile("garbled.ckpt");
        save(&path, 1, &[1.0f32; 8]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Bytes 20..28 hold the parameter count; inflate it.
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_restart_continues_training() {
        use crate::{Dataset, FitConfig, NoSync};
        use tensor::Tensor;
        // Train 2 epochs, checkpoint, restore into a fresh model, train 2
        // more; loss keeps going down across the restart boundary.
        let mut rng = xrng::seeded(11);
        use xrng::RandomSource;
        let x = Tensor::from_fn([40, 4], |_| rng.next_f32() - 0.5);
        let y = Tensor::from_fn([40, 2], |i| if i % 2 == (i / 2) % 2 { 1.0 } else { 0.0 });
        let data = Dataset::new(x, y);
        let config = FitConfig {
            epochs: 2,
            batch_size: 10,
            shuffle: false,
            compute_accuracy: false,
            ..Default::default()
        };

        let mut first = small_model(20);
        let h1 = first.fit(&data, &config, &mut NoSync).unwrap();
        let path = tmpfile("restart.ckpt");
        save_model(&path, 2, &first).unwrap();

        let mut resumed = small_model(99);
        let epoch = restore_model(&path, &mut resumed).unwrap();
        assert_eq!(epoch, 2);
        let h2 = resumed.fit(&data, &config, &mut NoSync).unwrap();
        assert!(
            h2.final_loss().unwrap() < h1.final_loss().unwrap(),
            "loss should keep decreasing after restart: {} -> {}",
            h1.final_loss().unwrap(),
            h2.final_loss().unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }
}
