//! Proves the zero-allocation training hot path: once the workspace pool,
//! layer caches, and batch buffers are warm, repeated `train_batch` calls
//! perform **zero** heap allocations.
//!
//! A counting global allocator wraps `System`; the test runs a warm-up
//! phase, snapshots the allocation counter, trains three more epochs, and
//! asserts the counter did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation-path call (alloc / alloc_zeroed / realloc) and
/// delegates to the system allocator. Deallocations are free and uncounted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use dlframe::{
    Activation, Conv1D, Dataset, Dense, Dropout, Flatten, Loss, MaxPooling1D, NoSync, Optimizer,
    Reshape3, Sequential,
};
use tensor::Tensor;
use xrng::RandomSource;

/// A scaled-down NT3: reshape → conv → pool → conv → flatten → dense →
/// dropout → dense, exercising every layer kind in the hot path.
fn nt3ish_model() -> Sequential {
    let mut rng = xrng::seeded(11);
    let mut model = Sequential::new(7);
    model.add(Box::new(Reshape3::new(60, 1)));
    model.add(Box::new(Conv1D::new(1, 8, 5, 2, Activation::Relu, &mut rng)));
    model.add(Box::new(MaxPooling1D::new(2)));
    model.add(Box::new(Conv1D::new(8, 8, 3, 1, Activation::Relu, &mut rng)));
    model.add(Box::new(Flatten::new()));
    model.add(Box::new(Dense::new(96, 16, Activation::Relu, &mut rng)));
    model.add(Box::new(Dropout::new(0.1, xrng::seeded(12))));
    model.add(Box::new(Dense::new(16, 2, Activation::Linear, &mut rng)));
    model.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.01));
    model
}

fn toy_data() -> Dataset {
    let mut rng = xrng::seeded(13);
    let x = Tensor::from_fn([64, 60], |_| rng.next_f32() - 0.5);
    let y = Tensor::from_fn([64, 2], |i| if i % 2 == (i / 2) % 2 { 1.0 } else { 0.0 });
    Dataset::new(x, y)
}

#[test]
fn train_batch_steady_state_allocates_nothing() {
    let mut model = nt3ish_model();
    let data = toy_data();
    let mut sync = NoSync;
    // 64 samples / batch 16 → four equal batches; fixed order (no shuffle)
    // so every epoch replays the same shapes.
    let batches = data.batch_indices(16, None);
    let mut bx = Tensor::zeros([1, 1]);
    let mut by = Tensor::zeros([1, 1]);
    // Warm-up: populates the workspace pool, the layers' cache slots, the
    // dropout mask / pooling argmax buffers, and the flat gradient buffer.
    for _ in 0..2 {
        for idx in &batches {
            data.batch_into(idx, &mut bx, &mut by);
            model.train_batch(&bx, &by, &mut sync).unwrap();
        }
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        for idx in &batches {
            data.batch_into(idx, &mut bx, &mut by);
            model.train_batch(&bx, &by, &mut sync).unwrap();
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state training epochs performed {} heap allocations",
        after - before
    );
    // The accounting also proves the batches actually ran.
    assert_eq!(model.hot_stats().batches, 20);
}
