//! Synthetic dataset generation.
//!
//! The CANDLE P1 data (NCI Genomic Data Commons RNA-seq profiles, somatic
//! SNPs, NCI-60 drug screens) is not redistributable, so the reproduction
//! generates class-structured Gaussian data with the same geometry: the
//! same row/column aspect (wide-few-rows for NT3/P1B1/P1B2, narrow-many-
//! rows for P1B3) and a learnable signal so training accuracy behaves like
//! the paper's (rising with epochs, collapsing when each worker sees too
//! few).

use crate::csv::write_matrix_csv;
use crate::frame::{Column, Frame};
use std::path::Path;
use xrng::Normal;

/// The supervised structure of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassSpec {
    /// `classes` Gaussian blobs with centroid scale `separation`.
    Classification {
        /// Number of classes.
        classes: usize,
        /// Standard deviation of centroid coordinates; larger separates
        /// classes more and makes the task easier.
        separation: f64,
    },
    /// Continuous target `y = sigmoid(x[0..k]·w) + noise`.
    Regression {
        /// Number of leading features carrying signal.
        signal_features: usize,
    },
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Sample count.
    pub rows: usize,
    /// Feature count.
    pub cols: usize,
    /// Label structure.
    pub kind: ClassSpec,
    /// Per-feature Gaussian noise standard deviation.
    pub noise: f64,
    /// Generation seed.
    pub seed: u64,
}

/// A generated dataset: dense features plus labels.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Row-major `rows × cols` features.
    pub features: Vec<f32>,
    /// Per-row label: class index (as f32) for classification, continuous
    /// target for regression.
    pub labels: Vec<f32>,
    /// Sample count.
    pub rows: usize,
    /// Feature count.
    pub cols: usize,
    /// Class count (0 for regression).
    pub classes: usize,
}

impl SyntheticDataset {
    /// Packs the dataset into a [`Frame`] — feature columns first, then
    /// one label column, all `Float64` (exact f32 widening). This is the
    /// shared cold-build path: services hand this frame to the shard
    /// cache instead of round-tripping through a CSV on disk.
    pub fn to_frame(&self) -> Frame {
        let mut columns = Vec::with_capacity(self.cols + 1);
        for c in 0..self.cols {
            columns.push(Column::Float64(
                (0..self.rows)
                    .map(|r| self.features[r * self.cols + c] as f64)
                    .collect(),
            ));
        }
        columns.push(Column::Float64(
            self.labels.iter().map(|&v| v as f64).collect(),
        ));
        Frame::new(columns).expect("generated columns share the row count")
    }

    /// One-hot encodes classification labels into a `rows × classes`
    /// row-major matrix.
    ///
    /// # Panics
    /// Panics for regression datasets (`classes == 0`).
    pub fn one_hot_labels(&self) -> Vec<f32> {
        assert!(
            self.classes > 0,
            "one_hot_labels requires a classification dataset"
        );
        let mut out = vec![0.0f32; self.rows * self.classes];
        for (r, &l) in self.labels.iter().enumerate() {
            let class = l as usize;
            debug_assert!(class < self.classes);
            out[r * self.classes + class] = 1.0;
        }
        out
    }
}

/// Generates a dataset from a spec. Deterministic in the seed.
///
/// # Panics
/// Panics on zero rows/cols or a degenerate class spec.
pub fn generate(spec: &SyntheticSpec) -> SyntheticDataset {
    assert!(spec.rows > 0 && spec.cols > 0, "dataset must be non-empty");
    let mut rng = xrng::seeded(spec.seed);
    let mut noise = Normal::new(0.0, spec.noise.max(0.0));
    match spec.kind {
        ClassSpec::Classification {
            classes,
            separation,
        } => {
            assert!(classes >= 2, "need at least two classes");
            let mut centroid_dist = Normal::new(0.0, separation);
            // Centroids: classes × cols.
            let centroids: Vec<f32> = (0..classes * spec.cols)
                .map(|_| centroid_dist.sample_f32(&mut rng))
                .collect();
            let mut features = Vec::with_capacity(spec.rows * spec.cols);
            let mut labels = Vec::with_capacity(spec.rows);
            for r in 0..spec.rows {
                // Balanced classes, interleaved (matches NT3's balanced
                // normal/tumor pairs).
                let class = r % classes;
                labels.push(class as f32);
                let c0 = class * spec.cols;
                for c in 0..spec.cols {
                    features.push(centroids[c0 + c] + noise.sample_f32(&mut rng));
                }
            }
            SyntheticDataset {
                features,
                labels,
                rows: spec.rows,
                cols: spec.cols,
                classes,
            }
        }
        ClassSpec::Regression { signal_features } => {
            let k = signal_features.min(spec.cols).max(1);
            // Weight scale 1/sqrt(k) keeps the logit ~N(0,1), so the
            // sigmoid target stays in its responsive range instead of
            // saturating at 0/1 — the signal a regressor can learn.
            let mut wdist = Normal::new(0.0, 1.0 / (k as f64).sqrt());
            let weights: Vec<f32> = (0..k).map(|_| wdist.sample_f32(&mut rng)).collect();
            let mut feat_dist = Normal::new(0.0, 1.0);
            let mut features = Vec::with_capacity(spec.rows * spec.cols);
            let mut labels = Vec::with_capacity(spec.rows);
            for _ in 0..spec.rows {
                let row_start = features.len();
                for _ in 0..spec.cols {
                    features.push(feat_dist.sample_f32(&mut rng));
                }
                let dot: f32 = weights
                    .iter()
                    .zip(&features[row_start..row_start + k])
                    .map(|(w, x)| w * x)
                    .sum();
                let y = 1.0 / (1.0 + (-dot).exp()) + noise.sample_f32(&mut rng);
                labels.push(y);
            }
            SyntheticDataset {
                features,
                labels,
                rows: spec.rows,
                cols: spec.cols,
                classes: 0,
            }
        }
    }
}

/// Writes a dataset as a headerless CSV in the CANDLE layout: the label in
/// the first column, features after it. Returns bytes written.
pub fn write_csv_dataset(path: &Path, ds: &SyntheticDataset) -> std::io::Result<u64> {
    let cols = ds.cols + 1;
    let mut matrix = Vec::with_capacity(ds.rows * cols);
    for r in 0..ds.rows {
        matrix.push(ds.labels[r]);
        matrix.extend_from_slice(&ds.features[r * ds.cols..(r + 1) * ds.cols]);
    }
    write_matrix_csv(path, &matrix, ds.rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_spec(rows: usize, cols: usize) -> SyntheticSpec {
        SyntheticSpec {
            rows,
            cols,
            kind: ClassSpec::Classification {
                classes: 2,
                separation: 1.0,
            },
            noise: 0.5,
            seed: 42,
        }
    }

    #[test]
    fn to_frame_packs_features_then_label() {
        let ds = generate(&class_spec(30, 5));
        let frame = ds.to_frame();
        assert_eq!(frame.nrows(), 30);
        assert_eq!(frame.ncols(), 6);
        let matrix = frame.to_f32_matrix();
        for r in 0..ds.rows {
            assert_eq!(&matrix[r * 6..r * 6 + 5], &ds.features[r * 5..(r + 1) * 5]);
            assert_eq!(matrix[r * 6 + 5], ds.labels[r]);
        }
    }

    #[test]
    fn classification_shape_and_balance() {
        let ds = generate(&class_spec(100, 8));
        assert_eq!(ds.features.len(), 800);
        assert_eq!(ds.labels.len(), 100);
        assert_eq!(ds.classes, 2);
        let ones = ds.labels.iter().filter(|&&l| l == 1.0).count();
        assert_eq!(ones, 50);
    }

    #[test]
    fn one_hot_is_consistent() {
        let ds = generate(&class_spec(10, 3));
        let oh = ds.one_hot_labels();
        assert_eq!(oh.len(), 20);
        for r in 0..10 {
            let row = &oh[r * 2..(r + 1) * 2];
            assert_eq!(row.iter().sum::<f32>(), 1.0);
            assert_eq!(row[ds.labels[r] as usize], 1.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&class_spec(20, 5));
        let b = generate(&class_spec(20, 5));
        assert_eq!(a.features, b.features);
        let mut spec = class_spec(20, 5);
        spec.seed = 43;
        let c = generate(&spec);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn classes_are_linearly_separable_enough() {
        // Nearest-centroid classification on generated data should beat 90%
        // with good separation — guaranteeing the learnability the accuracy
        // experiments depend on.
        let spec = SyntheticSpec {
            rows: 200,
            cols: 16,
            kind: ClassSpec::Classification {
                classes: 2,
                separation: 1.0,
            },
            noise: 0.5,
            seed: 7,
        };
        let ds = generate(&spec);
        // Estimate centroids from the data itself.
        let mut centroids = vec![0.0f64; 2 * 16];
        let mut counts = [0usize; 2];
        for r in 0..ds.rows {
            let class = ds.labels[r] as usize;
            counts[class] += 1;
            for c in 0..16 {
                centroids[class * 16 + c] += ds.features[r * 16 + c] as f64;
            }
        }
        for class in 0..2 {
            for c in 0..16 {
                centroids[class * 16 + c] /= counts[class] as f64;
            }
        }
        let mut correct = 0;
        for r in 0..ds.rows {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for class in 0..2 {
                let d: f64 = (0..16)
                    .map(|c| {
                        let diff = ds.features[r * 16 + c] as f64 - centroids[class * 16 + c];
                        diff * diff
                    })
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = class;
                }
            }
            if best == ds.labels[r] as usize {
                correct += 1;
            }
        }
        assert!(correct >= 180, "only {correct}/200 correct");
    }

    #[test]
    fn regression_targets_bounded() {
        let spec = SyntheticSpec {
            rows: 50,
            cols: 10,
            kind: ClassSpec::Regression { signal_features: 4 },
            noise: 0.01,
            seed: 9,
        };
        let ds = generate(&spec);
        assert_eq!(ds.classes, 0);
        for &y in &ds.labels {
            assert!(y > -0.2 && y < 1.2, "target {y} out of expected band");
        }
    }

    #[test]
    #[should_panic(expected = "classification dataset")]
    fn one_hot_rejected_for_regression() {
        let spec = SyntheticSpec {
            rows: 5,
            cols: 2,
            kind: ClassSpec::Regression { signal_features: 1 },
            noise: 0.0,
            seed: 1,
        };
        generate(&spec).one_hot_labels();
    }

    #[test]
    fn csv_export_layout() {
        let ds = generate(&class_spec(4, 3));
        let dir = std::env::temp_dir().join("candle_repro_gen_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        write_csv_dataset(&path, &ds).unwrap();
        let (frame, _) =
            crate::csv::read_csv(&path, crate::csv::ReadStrategy::ChunkedLowMemory).unwrap();
        assert_eq!(frame.nrows(), 4);
        assert_eq!(frame.ncols(), 4); // label + 3 features
                                      // First column is the class label.
        for r in 0..4 {
            assert_eq!(frame.columns()[0].f32_at(r), ds.labels[r]);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
