//! Column dtypes and inference, modelled on pandas' parser.

/// Column data types the parser distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// Unparseable as numeric — kept as text.
    Str,
}

/// Infers the dtype of one field, the way pandas' tokenizer classifies
/// values: integer if it parses as `i64`, else float if it parses as `f64`,
/// else string. Empty fields are floats (NaN).
pub fn infer_dtype(field: &str) -> Dtype {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Dtype::Float64;
    }
    if trimmed.parse::<i64>().is_ok() {
        return Dtype::Int64;
    }
    if trimmed.parse::<f64>().is_ok() {
        return Dtype::Float64;
    }
    Dtype::Str
}

/// Unifies two dtypes the way pandas promotes when concatenating chunk
/// fragments: `Int64 ∨ Float64 = Float64`, anything with `Str` is `Str`.
pub fn unify(a: Dtype, b: Dtype) -> Dtype {
    use Dtype::*;
    match (a, b) {
        (Str, _) | (_, Str) => Str,
        (Float64, _) | (_, Float64) => Float64,
        (Int64, Int64) => Int64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_fields() {
        assert_eq!(infer_dtype("42"), Dtype::Int64);
        assert_eq!(infer_dtype("-7"), Dtype::Int64);
        assert_eq!(infer_dtype(" 0 "), Dtype::Int64);
    }

    #[test]
    fn float_fields() {
        assert_eq!(infer_dtype("3.14"), Dtype::Float64);
        assert_eq!(infer_dtype("-1e-3"), Dtype::Float64);
        assert_eq!(infer_dtype(""), Dtype::Float64);
        assert_eq!(infer_dtype("NaN"), Dtype::Float64);
    }

    #[test]
    fn string_fields() {
        assert_eq!(infer_dtype("tumor"), Dtype::Str);
        assert_eq!(infer_dtype("1.2.3"), Dtype::Str);
    }

    #[test]
    fn unify_promotes() {
        use Dtype::*;
        assert_eq!(unify(Int64, Int64), Int64);
        assert_eq!(unify(Int64, Float64), Float64);
        assert_eq!(unify(Float64, Int64), Float64);
        assert_eq!(unify(Str, Float64), Str);
        assert_eq!(unify(Int64, Str), Str);
    }

    #[test]
    fn unify_is_commutative_and_idempotent() {
        use Dtype::*;
        for a in [Int64, Float64, Str] {
            assert_eq!(unify(a, a), a);
            for b in [Int64, Float64, Str] {
                assert_eq!(unify(a, b), unify(b, a));
            }
        }
    }
}
