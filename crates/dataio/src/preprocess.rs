//! Feature preprocessing — the "data loading **and preprocessing**" phase
//! of the benchmark control flow (paper Figure 2).
//!
//! The CANDLE Pilot1 benchmarks scale their inputs before training: NT3
//! max-abs-scales the FPKM-UQ expression values, P1B1 min-max-scales to
//! `[0, 1]`, and P1B2/P1B3 standardize. All three scalers follow the
//! scikit-learn fit/transform contract: statistics are computed on the
//! training matrix only and then applied to both splits, so no test-set
//! information leaks into training.

/// A fitted, column-wise feature scaler.
#[derive(Debug, Clone, PartialEq)]
pub enum Scaler {
    /// `x / max(|x|)` per column (sparse-safe; keeps zeros).
    MaxAbs {
        /// Per-column maximum absolute value (1 for all-zero columns).
        scales: Vec<f32>,
    },
    /// `(x - min) / (max - min)` per column, into `[0, 1]`.
    MinMax {
        /// Per-column minimum.
        mins: Vec<f32>,
        /// Per-column `max - min` (1 for constant columns).
        spans: Vec<f32>,
    },
    /// `(x - mean) / std` per column.
    Standard {
        /// Per-column mean.
        means: Vec<f32>,
        /// Per-column standard deviation (1 for constant columns).
        stds: Vec<f32>,
    },
}

/// Which scaling a benchmark requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerKind {
    /// Max-abs scaling (NT3).
    MaxAbs,
    /// Min-max scaling (P1B1).
    MinMax,
    /// Standardization (P1B2/P1B3).
    Standard,
}

impl Scaler {
    /// Fits a scaler of the given kind on a row-major `rows × cols` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is empty or its length is not `rows × cols`.
    pub fn fit(kind: ScalerKind, data: &[f32], rows: usize, cols: usize) -> Scaler {
        assert!(rows > 0 && cols > 0, "cannot fit a scaler on an empty matrix");
        assert_eq!(data.len(), rows * cols, "matrix dims mismatch");
        match kind {
            ScalerKind::MaxAbs => {
                let mut scales = vec![0.0f32; cols];
                for row in data.chunks_exact(cols) {
                    for (s, &x) in scales.iter_mut().zip(row) {
                        *s = s.max(x.abs());
                    }
                }
                for s in &mut scales {
                    if *s == 0.0 || !s.is_finite() {
                        *s = 1.0;
                    }
                }
                Scaler::MaxAbs { scales }
            }
            ScalerKind::MinMax => {
                let mut mins = vec![f32::INFINITY; cols];
                let mut maxs = vec![f32::NEG_INFINITY; cols];
                for row in data.chunks_exact(cols) {
                    for ((mn, mx), &x) in mins.iter_mut().zip(&mut maxs).zip(row) {
                        *mn = mn.min(x);
                        *mx = mx.max(x);
                    }
                }
                let spans = mins
                    .iter()
                    .zip(&maxs)
                    .map(|(&mn, &mx)| {
                        let span = mx - mn;
                        if span == 0.0 || !span.is_finite() {
                            1.0
                        } else {
                            span
                        }
                    })
                    .collect();
                Scaler::MinMax { mins, spans }
            }
            ScalerKind::Standard => {
                let n = rows as f64;
                let mut means = vec![0.0f64; cols];
                for row in data.chunks_exact(cols) {
                    for (m, &x) in means.iter_mut().zip(row) {
                        *m += x as f64;
                    }
                }
                for m in &mut means {
                    *m /= n;
                }
                let mut vars = vec![0.0f64; cols];
                for row in data.chunks_exact(cols) {
                    for ((v, m), &x) in vars.iter_mut().zip(&means).zip(row) {
                        let d = x as f64 - *m;
                        *v += d * d;
                    }
                }
                let stds = vars
                    .iter()
                    .map(|&v| {
                        let s = (v / n).sqrt();
                        if s == 0.0 || !s.is_finite() {
                            1.0
                        } else {
                            s as f32
                        }
                    })
                    .collect();
                Scaler::Standard {
                    means: means.into_iter().map(|m| m as f32).collect(),
                    stds,
                }
            }
        }
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn cols(&self) -> usize {
        match self {
            Scaler::MaxAbs { scales } => scales.len(),
            Scaler::MinMax { mins, .. } => mins.len(),
            Scaler::Standard { means, .. } => means.len(),
        }
    }

    /// Applies the fitted transform in place to a row-major matrix with
    /// the same column count.
    ///
    /// # Panics
    /// Panics if the data length is not a multiple of the fitted width.
    pub fn transform(&self, data: &mut [f32]) {
        let cols = self.cols();
        assert_eq!(data.len() % cols, 0, "matrix width mismatch");
        match self {
            Scaler::MaxAbs { scales } => {
                for row in data.chunks_exact_mut(cols) {
                    for (x, &s) in row.iter_mut().zip(scales) {
                        *x /= s;
                    }
                }
            }
            Scaler::MinMax { mins, spans } => {
                for row in data.chunks_exact_mut(cols) {
                    for ((x, &mn), &sp) in row.iter_mut().zip(mins).zip(spans) {
                        *x = (*x - mn) / sp;
                    }
                }
            }
            Scaler::Standard { means, stds } => {
                for row in data.chunks_exact_mut(cols) {
                    for ((x, &m), &s) in row.iter_mut().zip(means).zip(stds) {
                        *x = (*x - m) / s;
                    }
                }
            }
        }
    }

    /// Convenience: fit on `train` and transform both splits.
    pub fn fit_transform(
        kind: ScalerKind,
        train: &mut [f32],
        test: &mut [f32],
        rows: usize,
        cols: usize,
    ) -> Scaler {
        let scaler = Scaler::fit(kind, train, rows, cols);
        scaler.transform(train);
        scaler.transform(test);
        scaler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn maxabs_bounds_to_unit() {
        let mut data = vec![2.0f32, -8.0, 0.5, 4.0, 1.0, -0.25];
        let scaler = Scaler::fit(ScalerKind::MaxAbs, &data, 2, 3);
        scaler.transform(&mut data);
        assert_eq!(data, vec![0.5, -1.0, 1.0, 1.0, 0.125, -0.5]);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut train = vec![0.0f32, 10.0, 5.0, 20.0, 10.0, 30.0];
        let scaler = Scaler::fit(ScalerKind::MinMax, &train, 3, 2);
        scaler.transform(&mut train);
        for &x in &train {
            assert!((0.0..=1.0).contains(&x));
        }
        assert_eq!(train[0], 0.0); // column minimum
        assert_eq!(train[4], 1.0); // column maximum
    }

    #[test]
    fn standard_zero_mean_unit_variance() {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(5);
        let rows = 500;
        let cols = 4;
        let mut data: Vec<f32> = (0..rows * cols)
            .map(|i| rng.next_f32() * 10.0 + (i % cols) as f32 * 3.0)
            .collect();
        let scaler = Scaler::fit(ScalerKind::Standard, &data, rows, cols);
        scaler.transform(&mut data);
        for c in 0..cols {
            let col: Vec<f64> = (0..rows).map(|r| data[r * cols + c] as f64).collect();
            let mean = col.iter().sum::<f64>() / rows as f64;
            let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / rows as f64;
            assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {c} var {var}");
        }
    }

    #[test]
    fn constant_columns_do_not_divide_by_zero() {
        for kind in [ScalerKind::MaxAbs, ScalerKind::MinMax, ScalerKind::Standard] {
            let mut data = vec![5.0f32; 8];
            let scaler = Scaler::fit(kind, &data, 4, 2);
            scaler.transform(&mut data);
            assert!(data.iter().all(|x| x.is_finite()), "{kind:?}");
        }
        // All-zero column under MaxAbs keeps zeros.
        let mut data = vec![0.0f32; 6];
        Scaler::fit(ScalerKind::MaxAbs, &data, 3, 2).transform(&mut data);
        assert!(data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn statistics_come_from_train_only() {
        // The test split may exceed [0,1] under MinMax — proof the scaler
        // did not peek at it.
        let mut train = vec![0.0f32, 1.0, 2.0, 3.0];
        let mut test = vec![10.0f32, -5.0];
        Scaler::fit_transform(ScalerKind::MinMax, &mut train, &mut test, 2, 2);
        assert!(test[0] > 1.0);
        assert!(test[1] < 0.0);
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn empty_fit_panics() {
        Scaler::fit(ScalerKind::MaxAbs, &[], 0, 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn transform_width_checked() {
        let scaler = Scaler::fit(ScalerKind::MaxAbs, &[1.0, 2.0], 1, 2);
        let mut bad = vec![1.0f32; 3];
        scaler.transform(&mut bad);
    }

    proptest! {
        #[test]
        fn transforms_are_affine_and_invertible_in_spirit(
            rows in 1usize..20, cols in 1usize..6, seed in 0u64..100
        ) {
            use xrng::RandomSource;
            let mut rng = xrng::seeded(seed);
            let data: Vec<f32> = (0..rows * cols).map(|_| rng.next_f32() * 20.0 - 10.0).collect();
            for kind in [ScalerKind::MaxAbs, ScalerKind::MinMax, ScalerKind::Standard] {
                let scaler = Scaler::fit(kind, &data, rows, cols);
                let mut transformed = data.clone();
                scaler.transform(&mut transformed);
                prop_assert!(transformed.iter().all(|x| x.is_finite()));
                // Affine property: order of values within a column is
                // preserved (all three scalers are monotone per column).
                for c in 0..cols {
                    for r1 in 0..rows {
                        for r2 in 0..rows {
                            let before = data[r1 * cols + c] <= data[r2 * cols + c];
                            let after =
                                transformed[r1 * cols + c] <= transformed[r2 * cols + c] + 1e-6;
                            prop_assert!(!before || after);
                        }
                    }
                }
            }
        }
    }
}
