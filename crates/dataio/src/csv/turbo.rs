//! Turbo ingest engine: SWAR structural scan and zero-copy parallel parse.
//!
//! The three seed strategies all pay per-row costs the hardware does not
//! require: a `Vec<&str>` allocation per record (`split_fields`), a
//! `str::parse::<f64>` round trip per field, and (for the Dask path) a
//! fragment concatenation at the end. This module removes all three:
//!
//! 1. **Structural scan** — [`scan`] walks the whole-file buffer in 8-byte
//!    words, locating newlines and counting commas with branch-light SWAR
//!    bit tricks (no per-byte compare loop on the common path). The result
//!    is a [`StructuralIndex`]: the byte span of every non-blank record and
//!    the validated field count, so the exact per-partition row counts are
//!    known before any parsing happens. UTF-8 is validated once, here.
//! 2. **Fixed-format numeric parse** — [`parse_f64_fast`] handles the
//!    plain `[+-]digits[.digits][eE[+-]digits]` tokens of the CANDLE
//!    matrices with an integer-mantissa fast path that is *bit-identical*
//!    to `str::parse::<f64>` (Clinger: a `u64` mantissa ≤ 2⁵³ multiplied
//!    or divided by an exactly-representable power of ten rounds once,
//!    which is exactly what a correctly-rounded parser produces). Anything
//!    outside the fast domain falls back to `str::parse` on the original
//!    token, so semantics never change.
//! 3. **Allocation-free parallel materialize** — [`parse_into`] splits the
//!    row range over the `parx` pool; each worker writes every value
//!    directly into a disjoint slice of the final preallocated column
//!    storage. No per-row `Vec`s, no `Frame::concat`, and because each
//!    value is computed independently of the partition layout the result
//!    is bit-identical at any thread count.
//!
//! [`ReadStrategy::TurboParallel`](crate::csv::ReadStrategy) orchestrates
//! the three steps over a whole-file read and reports the per-phase wall
//! time as [`IngestPhases`] (surfaced as `LoadStats::ingest` and as the
//! `ingest_scan` / `ingest_parse` / `ingest_materialize` counters in the
//! candle phase profiler).

use crate::DataError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Rows below this count per thread are not worth a spawned worker; the
/// grained parallel-for degrades gracefully to fewer threads.
pub const ROW_GRAIN: usize = 16;

/// Wall-clock attribution of one turbo read, one entry per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestPhases {
    /// File read, one-time UTF-8 validation, and the SWAR structural scan.
    pub scan: Duration,
    /// Parallel numeric parse into the preallocated columns.
    pub parse: Duration,
    /// Column storage prealloc and final `Frame` construction.
    pub materialize: Duration,
}

// ---------------------------------------------------------------------------
// SWAR primitives
// ---------------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts one byte into every lane of a word.
#[inline(always)]
fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// Exact per-lane zero-byte mask: bit 7 of each lane is set iff that byte
/// of `v` is zero. Uses the carry-free `(v & 0x7f…) + 0x7f… | v` form — the
/// classic `(v - LO) & !v & HI` trick admits false positives after a
/// borrow, which would mis-count commas.
#[inline(always)]
fn zero_byte_mask(v: u64) -> u64 {
    let low7 = (v & !HI).wrapping_add(!HI);
    !(low7 | v) & HI
}

/// Per-lane equality mask against a splatted pattern.
#[inline(always)]
fn eq_mask(v: u64, pattern: u64) -> u64 {
    zero_byte_mask(v ^ pattern)
}

// ---------------------------------------------------------------------------
// Structural index
// ---------------------------------------------------------------------------

/// Byte spans of every non-blank record plus the validated field count.
///
/// The index is a reusable scratch structure: [`scan`] clears and refills
/// it without releasing capacity, so steady-state re-scans of same-shaped
/// buffers perform no heap allocation.
#[derive(Debug, Default)]
pub struct StructuralIndex {
    starts: Vec<u32>,
    ends: Vec<u32>,
    width: usize,
}

impl StructuralIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed (non-blank) records.
    pub fn rows(&self) -> usize {
        self.starts.len()
    }

    /// Fields per record (0 until a scan indexes at least one record).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Byte span `[start, end)` of record `row` (trailing `\r` stripped).
    #[inline]
    pub fn row_span(&self, row: usize) -> (usize, usize) {
        (self.starts[row] as usize, self.ends[row] as usize)
    }

    fn clear(&mut self) {
        self.starts.clear();
        self.ends.clear();
        self.width = 0;
    }

    /// Records one line ending at `end` (exclusive, the `\n` position or
    /// EOF) with `commas` commas, skipping blank lines and enforcing a
    /// rectangular field count.
    #[inline]
    fn push_line(&mut self, bytes: &[u8], start: usize, end: usize, commas: u32) -> Result<(), DataError> {
        let mut e = end;
        if e > start && bytes[e - 1] == b'\r' {
            e -= 1;
        }
        if e == start {
            return Ok(()); // blank line (matches `str::lines` + is_empty skip)
        }
        let fields = commas as usize + 1;
        if self.width == 0 {
            self.width = fields;
        } else if fields != self.width {
            return Err(DataError::Malformed(format!(
                "row {} has {fields} fields, expected {}",
                self.rows(),
                self.width
            )));
        }
        self.starts.push(start as u32);
        self.ends.push(e as u32);
        Ok(())
    }
}

/// Indexes `bytes` into `idx` in a single pass: validates UTF-8 once, then
/// locates newlines and counts commas eight bytes at a time.
///
/// Errors on non-UTF-8 content and on ragged rows. Buffers of 4 GiB or
/// more are rejected (`u32` offsets); [`read_csv`](crate::csv::read_csv)
/// falls back to the chunked strategy before that limit.
pub fn scan(bytes: &[u8], idx: &mut StructuralIndex) -> Result<(), DataError> {
    idx.clear();
    if bytes.len() >= u32::MAX as usize {
        return Err(DataError::Malformed(
            "file too large for the turbo structural index".into(),
        ));
    }
    // One validation for the whole buffer — the seed readers re-validate
    // every chunk. All structural bytes (\n , \r) are ASCII, so every span
    // the index produces stays on char boundaries.
    if std::str::from_utf8(bytes).is_err() {
        return Err(DataError::Malformed("non-UTF8 content".into()));
    }

    let nl = splat(b'\n');
    let comma = splat(b',');
    let mut line_start = 0usize;
    let mut commas_in_line: u32 = 0;

    let mut i = 0usize;
    let words = bytes.len() / 8;
    for w in 0..words {
        let word = u64::from_le_bytes(bytes[w * 8..w * 8 + 8].try_into().unwrap());
        let comma_mask = eq_mask(word, comma);
        let mut nl_mask = eq_mask(word, nl);
        if nl_mask == 0 {
            // Common path on wide files: whole word inside one record.
            commas_in_line += comma_mask.count_ones();
            i += 8;
            continue;
        }
        let mut consumed: u32 = 0;
        while nl_mask != 0 {
            let lane = (nl_mask.trailing_zeros() / 8) as usize;
            // Commas strictly before this newline within the word.
            let below = if lane == 0 {
                0
            } else {
                (comma_mask & ((1u64 << (lane * 8)) - 1)).count_ones()
            };
            idx.push_line(bytes, line_start, i + lane, commas_in_line + (below - consumed))?;
            commas_in_line = 0;
            consumed = below;
            line_start = i + lane + 1;
            nl_mask &= nl_mask - 1;
        }
        commas_in_line += comma_mask.count_ones() - consumed;
        i += 8;
    }
    // Scalar tail (< 8 bytes).
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                idx.push_line(bytes, line_start, i, commas_in_line)?;
                commas_in_line = 0;
                line_start = i + 1;
            }
            b',' => commas_in_line += 1,
            _ => {}
        }
        i += 1;
    }
    if line_start < bytes.len() {
        // Final record without a trailing newline.
        idx.push_line(bytes, line_start, bytes.len(), commas_in_line)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fixed-format numeric parsing
// ---------------------------------------------------------------------------

/// Exactly-representable powers of ten for the Clinger fast path.
const POW10: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// Parses a plain-format float token, returning `None` whenever the fast
/// path cannot *prove* bit-identity with `str::parse::<f64>` (too many
/// digits, exponent outside ±22, specials like `inf`/`NaN`, stray bytes).
///
/// The accepted grammar is `[+-]?digits[.digits][eE[+-]?digits]` with at
/// least one mantissa digit. Correctness: the mantissa is accumulated as a
/// `u64` and accepted only when ≤ 2⁵³ (exactly representable), and the
/// decimal exponent only when |e| ≤ 22 (10^e exactly representable), so
/// the single multiply/divide rounds once — the same value a correctly
/// rounded parser produces.
#[inline]
pub fn parse_f64_fast(token: &[u8]) -> Option<f64> {
    let n = token.len();
    if n == 0 {
        return None;
    }
    let mut i = 0usize;
    let neg = match token[0] {
        b'-' => {
            i = 1;
            true
        }
        b'+' => {
            i = 1;
            false
        }
        _ => false,
    };
    let mut mant: u64 = 0;
    let mut ndigits = 0usize;
    while i < n && token[i].is_ascii_digit() {
        mant = mant.wrapping_mul(10).wrapping_add((token[i] - b'0') as u64);
        ndigits += 1;
        i += 1;
    }
    let mut frac_digits = 0i32;
    if i < n && token[i] == b'.' {
        i += 1;
        while i < n && token[i].is_ascii_digit() {
            mant = mant.wrapping_mul(10).wrapping_add((token[i] - b'0') as u64);
            ndigits += 1;
            frac_digits += 1;
            i += 1;
        }
    }
    if ndigits == 0 {
        return None;
    }
    let mut exp: i32 = 0;
    if i < n && (token[i] == b'e' || token[i] == b'E') {
        i += 1;
        let eneg = if i < n && (token[i] == b'-' || token[i] == b'+') {
            let neg = token[i] == b'-';
            i += 1;
            neg
        } else {
            false
        };
        let mut edigits = 0usize;
        let mut e: i32 = 0;
        while i < n && token[i].is_ascii_digit() {
            e = e.saturating_mul(10).saturating_add((token[i] - b'0') as i32);
            edigits += 1;
            i += 1;
        }
        if edigits == 0 {
            return None;
        }
        exp = if eneg { -e } else { e };
    }
    if i != n {
        return None; // trailing bytes the grammar does not cover
    }
    // 19 mantissa digits can overflow u64; 2^53 is the exactness bound.
    if ndigits > 19 || mant > (1u64 << 53) {
        return None;
    }
    let e10 = exp - frac_digits;
    let magnitude = if (0..=22).contains(&e10) {
        (mant as f64) * POW10[e10 as usize]
    } else if (-22..0).contains(&e10) {
        (mant as f64) / POW10[(-e10) as usize]
    } else {
        return None;
    };
    Some(if neg { -magnitude } else { magnitude })
}

/// Parses a plain `[+-]?digits` integer token; `None` outside the
/// guaranteed-exact domain (≥ 19 digits, empty, stray bytes) so callers
/// fall back to `str::parse::<i64>`.
#[inline]
pub fn parse_i64_fast(token: &[u8]) -> Option<i64> {
    let n = token.len();
    if n == 0 {
        return None;
    }
    let mut i = 0usize;
    let neg = match token[0] {
        b'-' => {
            i = 1;
            true
        }
        b'+' => {
            i = 1;
            false
        }
        _ => false,
    };
    let mut v: i64 = 0;
    let mut ndigits = 0usize;
    while i < n && token[i].is_ascii_digit() {
        v = v.wrapping_mul(10).wrapping_add((token[i] - b'0') as i64);
        ndigits += 1;
        i += 1;
    }
    // 18 digits can never overflow i64; longer tokens take the slow path.
    if i != n || ndigits == 0 || ndigits > 18 {
        return None;
    }
    Some(if neg { -v } else { v })
}

/// Trims the ASCII subset of `str::trim`'s whitespace. Tokens that still
/// carry exotic (non-ASCII) whitespace fail the fast parser and reach the
/// checked `str::trim().parse()` fallback unmodified.
#[inline]
fn trim_ascii(mut t: &[u8]) -> &[u8] {
    const WS: &[u8] = b" \t\r\n\x0b\x0c";
    while let Some(&b) = t.first() {
        if WS.contains(&b) {
            t = &t[1..];
        } else {
            break;
        }
    }
    while let Some(&b) = t.last() {
        if WS.contains(&b) {
            t = &t[..t.len() - 1];
        } else {
            break;
        }
    }
    t
}

/// One field: fast path on the ASCII-trimmed token, checked `str::parse`
/// fallback on the original token (identical to the seed readers'
/// `field.trim().parse::<f64>()`).
#[inline]
fn parse_field_f64(bytes: &[u8], start: usize, end: usize) -> Option<f64> {
    let token = trim_ascii(&bytes[start..end]);
    if let Some(v) = parse_f64_fast(token) {
        return Some(v);
    }
    let s = std::str::from_utf8(&bytes[start..end]).ok()?;
    s.trim().parse::<f64>().ok()
}

// ---------------------------------------------------------------------------
// Parallel parse into column storage
// ---------------------------------------------------------------------------

/// Raw base pointer to the column `Vec`s, shared across the scoped
/// workers. Each worker writes only rows inside its own disjoint chunk, so
/// no two threads ever touch the same element (same pattern as
/// `parx::parallel_map`).
struct ColumnsPtr(usize);
unsafe impl Sync for ColumnsPtr {}

/// Parses every indexed record of `bytes` into `columns`, in parallel
/// across up to `threads` workers.
///
/// `columns` is resized to `idx.width()` columns × `idx.rows()` values,
/// reusing existing capacity — steady-state re-parses of same-shaped
/// buffers perform **zero** heap allocations (see
/// `dataio/tests/alloc_ingest.rs`). Returns `false` when any field is not
/// parseable as `f64`: the file is mixed-dtype and the caller must fall
/// back to the typed parser (the columns' contents are then unspecified).
///
/// Every value is computed independently of the partition layout, so the
/// materialized columns are bit-identical for any `threads`.
pub fn parse_into(
    bytes: &[u8],
    idx: &StructuralIndex,
    columns: &mut Vec<Vec<f64>>,
    threads: usize,
) -> bool {
    let width = idx.width();
    let nrows = idx.rows();
    columns.resize_with(width, Vec::new);
    columns.truncate(width);
    for col in columns.iter_mut() {
        col.resize(nrows, 0.0);
        col.truncate(nrows);
    }
    let nonnumeric = AtomicBool::new(false);
    let cols = ColumnsPtr(columns.as_mut_ptr() as usize);
    parx::parallel_for_grained(nrows, threads.max(1), ROW_GRAIN, |chunk| {
        let base = cols.0 as *mut Vec<f64>;
        for row in chunk.start..chunk.end {
            if nonnumeric.load(Ordering::Relaxed) {
                return;
            }
            let (start, end) = idx.row_span(row);
            let mut field_start = start;
            let mut c = 0usize;
            let mut pos = start;
            loop {
                if pos == end || bytes[pos] == b',' {
                    match parse_field_f64(bytes, field_start, pos) {
                        Some(v) => {
                            // SAFETY: `c < width` by the scan's field-count
                            // validation and `row` is owned by exactly this
                            // chunk; the column Vecs were resized to
                            // `nrows` above and outlive the scope.
                            unsafe {
                                *(*base.add(c)).as_mut_ptr().add(row) = v;
                            }
                        }
                        None => {
                            nonnumeric.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                    c += 1;
                    if pos == end {
                        break;
                    }
                    field_start = pos + 1;
                }
                pos += 1;
            }
            debug_assert_eq!(c, width, "scan validated the field count");
        }
    });
    !nonnumeric.load(Ordering::Relaxed)
}

/// Number of disjoint row partitions [`parse_into`] uses for a given row
/// count and thread budget (mirrors `parallel_for_grained`'s reduction).
pub fn effective_partitions(rows: usize, threads: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    threads.max(1).min((rows / ROW_GRAIN).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx_of(text: &str) -> StructuralIndex {
        let mut idx = StructuralIndex::new();
        scan(text.as_bytes(), &mut idx).unwrap();
        idx
    }

    #[test]
    fn swar_masks_are_exact() {
        // Adversarial words for the borrow-propagation false positive:
        // a zero lane followed by a 0x01 lane.
        for word in [
            0x0000_0000_0000_0100u64,
            0x0101_0101_0101_0101,
            0xFF00_01FF_0001_FF00,
            u64::MAX,
            0,
        ] {
            let mask = zero_byte_mask(word);
            for lane in 0..8 {
                let byte = (word >> (lane * 8)) & 0xFF;
                let bit = (mask >> (lane * 8 + 7)) & 1;
                assert_eq!(bit == 1, byte == 0, "word {word:#x} lane {lane}");
            }
        }
    }

    #[test]
    fn scan_indexes_simple_file() {
        let idx = idx_of("1,2,3\n4,5,6\n");
        assert_eq!(idx.rows(), 2);
        assert_eq!(idx.width(), 3);
        assert_eq!(idx.row_span(0), (0, 5));
        assert_eq!(idx.row_span(1), (6, 11));
    }

    #[test]
    fn scan_handles_crlf_blank_lines_and_missing_trailing_newline() {
        let idx = idx_of("1,2\r\n\r\n\n3,4\r\n5,6");
        assert_eq!(idx.rows(), 3);
        assert_eq!(idx.width(), 2);
        // CRLF rows exclude the \r; the last row runs to EOF.
        assert_eq!(idx.row_span(0), (0, 3));
        assert_eq!(idx.row_span(1), (8, 11));
        assert_eq!(idx.row_span(2), (13, 16));
    }

    #[test]
    fn scan_counts_commas_across_word_boundaries() {
        // Rows engineered so newlines land mid-word and multiple newlines
        // share one 8-byte word.
        let text = "a,b\nc,d\ne,f\ng,h\n";
        let idx = idx_of(text);
        assert_eq!(idx.rows(), 4);
        assert_eq!(idx.width(), 2);
        let wide = format!("{},tail\n", "x".repeat(23));
        let idx = idx_of(&wide);
        assert_eq!(idx.rows(), 1);
        assert_eq!(idx.width(), 2);
    }

    #[test]
    fn scan_rejects_ragged_rows() {
        let mut idx = StructuralIndex::new();
        let err = scan(b"1,2\n3\n", &mut idx).unwrap_err();
        assert!(matches!(err, DataError::Malformed(_)));
    }

    #[test]
    fn scan_rejects_non_utf8() {
        let mut idx = StructuralIndex::new();
        let err = scan(&[0xFF, 0xFE, b'\n'], &mut idx).unwrap_err();
        assert!(err.to_string().contains("non-UTF8"));
    }

    #[test]
    fn fast_f64_matches_std_on_plain_tokens() {
        for t in [
            "0", "-0", "1", "42", "-7", "+3", "3.25", "-0.5", "0.000123", "1e3", "2.5e-4",
            "-1E+10", "9007199254740992", "123456.789", "1e22", "1e-22", "0.0", "-0.0",
        ] {
            let fast = parse_f64_fast(t.as_bytes()).unwrap_or_else(|| panic!("{t} fast-parsable"));
            let std = t.parse::<f64>().unwrap();
            assert_eq!(fast.to_bits(), std.to_bits(), "token {t}");
        }
    }

    #[test]
    fn fast_f64_declines_outside_the_exact_domain() {
        for t in [
            "",
            ".",
            "e5",
            "inf",
            "NaN",
            "1.2.3",
            "1e",
            "1e+",
            "12345678901234567890", // 20 digits
            "1e23",                 // exponent beyond the exact table
            "1e-23",
            "9007199254740993", // > 2^53
            " 1",               // untrimmed
            "1,",
        ] {
            assert!(parse_f64_fast(t.as_bytes()).is_none(), "token {t:?}");
        }
    }

    #[test]
    fn fast_f64_random_tokens_bit_identical_to_std() {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(0x7072B0);
        for _ in 0..4000 {
            let mant = rng.next_u64() % 1_000_000_000_000;
            let frac = rng.next_index(7);
            let exp = rng.next_index(45) as i32 - 22;
            let token = if frac == 0 {
                format!("{mant}e{exp}")
            } else {
                format!("{}.{:0>width$}e{exp}", mant / 10u64.pow(frac as u32), mant % 10u64.pow(frac as u32), width = frac)
            };
            if let Some(fast) = parse_f64_fast(token.as_bytes()) {
                let std = token.parse::<f64>().unwrap();
                assert_eq!(fast.to_bits(), std.to_bits(), "token {token}");
            }
        }
    }

    #[test]
    fn fast_i64_matches_std_or_declines() {
        for t in ["0", "-1", "+17", "123456789012345678"] {
            assert_eq!(parse_i64_fast(t.as_bytes()), t.parse::<i64>().ok(), "{t}");
        }
        for t in ["", "-", "1234567890123456789", "12a", " 1"] {
            assert!(parse_i64_fast(t.as_bytes()).is_none(), "{t:?}");
        }
    }

    #[test]
    fn parse_into_materializes_and_reports_numeric() {
        let text = "1,2.5,3\n-4,5e-1,6\n";
        let idx = idx_of(text);
        let mut cols = Vec::new();
        assert!(parse_into(text.as_bytes(), &idx, &mut cols, 2));
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0], vec![1.0, -4.0]);
        assert_eq!(cols[1], vec![2.5, 0.5]);
        assert_eq!(cols[2], vec![3.0, 6.0]);
    }

    #[test]
    fn parse_into_flags_mixed_dtype() {
        let text = "1,tumor\n2,normal\n";
        let idx = idx_of(text);
        let mut cols = Vec::new();
        assert!(!parse_into(text.as_bytes(), &idx, &mut cols, 2));
    }

    #[test]
    fn parse_into_bit_identical_across_thread_counts() {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(99);
        let mut text = String::new();
        for _ in 0..200 {
            for c in 0..7 {
                if c > 0 {
                    text.push(',');
                }
                text.push_str(&format!("{:.5}", rng.next_f32() * 2000.0 - 1000.0));
            }
            text.push('\n');
        }
        let idx = idx_of(&text);
        let mut base = Vec::new();
        assert!(parse_into(text.as_bytes(), &idx, &mut base, 1));
        for threads in [2, 4, 8] {
            let mut cols = Vec::new();
            assert!(parse_into(text.as_bytes(), &idx, &mut cols, threads));
            for (a, b) in base.iter().zip(&cols) {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(a), bits(b), "threads={threads}");
            }
        }
    }

    #[test]
    fn effective_partitions_respects_grain() {
        assert_eq!(effective_partitions(0, 4), 0);
        assert_eq!(effective_partitions(10, 4), 1);
        assert_eq!(effective_partitions(64, 4), 4);
        assert_eq!(effective_partitions(1000, 4), 4);
    }
}
