//! CSV writing for synthetic dataset files.

use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes a row-major `f32` matrix as headerless CSV, the format of the
/// CANDLE training matrices (`nt_train2.csv` etc.). Values are written with
/// enough precision to round-trip through `f32`.
///
/// Returns the number of bytes written.
pub fn write_matrix_csv(
    path: &Path,
    data: &[f32],
    rows: usize,
    cols: usize,
) -> std::io::Result<u64> {
    assert_eq!(
        data.len(),
        rows * cols,
        "matrix dims do not match data length"
    );
    let file = std::fs::File::create(path)?;
    let mut w = CountingWriter {
        inner: BufWriter::with_capacity(1 << 20, file),
        bytes: 0,
    };
    let mut buf = Vec::with_capacity(cols * 12);
    for r in 0..rows {
        buf.clear();
        for c in 0..cols {
            if c > 0 {
                buf.push(b',');
            }
            let v = data[r * cols + c];
            // Integers print exactly; everything else gets shortest-roundtrip.
            if v.fract() == 0.0 && v.abs() < 1e7 {
                write!(&mut buf, "{}", v as i64)?;
            } else {
                write!(&mut buf, "{v}")?;
            }
        }
        buf.push(b'\n');
        w.write_all(&buf)?;
    }
    w.inner.flush()?;
    Ok(w.bytes)
}

struct CountingWriter<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("candle_repro_csv_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_expected_text() {
        let path = tmpfile("small.csv");
        let bytes = write_matrix_csv(&path, &[1.0, 2.5, 3.0, 4.0], 2, 2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "1,2.5\n3,4\n");
        assert_eq!(bytes, text.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrips_through_reader() {
        let path = tmpfile("roundtrip.csv");
        let data: Vec<f32> = (0..30).map(|i| i as f32 * 0.25).collect();
        write_matrix_csv(&path, &data, 5, 6).unwrap();
        let (frame, _) =
            crate::csv::read_csv(&path, crate::csv::ReadStrategy::ChunkedLowMemory).unwrap();
        assert_eq!(frame.nrows(), 5);
        assert_eq!(frame.ncols(), 6);
        let back = frame.to_f32_matrix();
        assert_eq!(back, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "dims do not match")]
    fn dims_validated() {
        let path = tmpfile("bad.csv");
        let _ = write_matrix_csv(&path, &[1.0], 2, 2);
    }
}
