//! Field splitting and typed chunk parsing.
//!
//! The CANDLE csv files are plain numeric tables (no quoting, no headers in
//! the training matrices), so the splitter is a simple comma scanner. The
//! typed chunk parser reproduces the column-materialization work pandas'
//! `low_memory=True` path performs per internal chunk: token gathering into
//! per-column vectors, a dtype-inference scan, then typed conversion.

use crate::frame::{Column, Frame};
use crate::schema::{infer_dtype, unify, Dtype};
use crate::DataError;

/// Splits one CSV record into trimmed fields.
pub fn split_fields(line: &str) -> Vec<&str> {
    line.trim_end_matches(['\r', '\n']).split(',').collect()
}

/// Parses a block of complete CSV lines into a typed [`Frame`] the way a
/// pandas low-memory chunk is materialized:
///
/// 1. gather tokens column-wise (one `Vec<&str>` per column),
/// 2. infer each column's dtype by scanning its tokens,
/// 3. convert tokens into typed storage.
///
/// `expect_cols` enforces rectangularity against the first chunk's width;
/// pass `None` for the first chunk.
pub fn parse_chunk_typed(text: &str, expect_cols: Option<usize>) -> Result<Frame, DataError> {
    let mut columns_tokens: Vec<Vec<&str>> = Vec::new();
    let mut nrows = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let fields = split_fields(line);
        if columns_tokens.is_empty() {
            let width = expect_cols.unwrap_or(fields.len());
            if fields.len() != width {
                return Err(DataError::Malformed(format!(
                    "row 0 has {} fields, expected {width}",
                    fields.len()
                )));
            }
            columns_tokens = vec![Vec::new(); width];
        }
        if fields.len() != columns_tokens.len() {
            return Err(DataError::Malformed(format!(
                "row {nrows} has {} fields, expected {}",
                fields.len(),
                columns_tokens.len()
            )));
        }
        for (col, field) in columns_tokens.iter_mut().zip(fields) {
            col.push(field);
        }
        nrows += 1;
    }
    let columns = columns_tokens
        .into_iter()
        .map(|tokens| {
            // Dtype inference scan (the extra pass pandas pays per chunk).
            let mut dtype = Dtype::Int64;
            for t in &tokens {
                dtype = unify(dtype, infer_dtype(t));
                if dtype == Dtype::Str {
                    break;
                }
            }
            match dtype {
                // An Int64 verdict means every token round-tripped through
                // `parse::<i64>` during inference, so conversion cannot
                // fail — but if the two passes ever disagree, silently
                // substituting 0 would corrupt data. Error instead.
                Dtype::Int64 => {
                    let mut vals = Vec::with_capacity(tokens.len());
                    for t in &tokens {
                        vals.push(t.trim().parse::<i64>().map_err(|_| {
                            DataError::Malformed(format!("unparsable integer token {t:?}"))
                        })?);
                    }
                    Ok(Column::Int64(vals))
                }
                // Floats keep pandas' convention: unparsable → NaN (covers
                // the empty-field case inference classifies as Float64).
                Dtype::Float64 => Ok(Column::Float64(
                    tokens
                        .iter()
                        .map(|t| t.trim().parse::<f64>().unwrap_or(f64::NAN))
                        .collect(),
                )),
                Dtype::Str => Ok(Column::Str(tokens.iter().map(|t| t.to_string()).collect())),
            }
        })
        .collect::<Result<Vec<_>, DataError>>()?;
    Frame::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_crlf() {
        assert_eq!(split_fields("a,b,c\r\n"), vec!["a", "b", "c"]);
        assert_eq!(split_fields("1,2"), vec!["1", "2"]);
        assert_eq!(split_fields(""), vec![""]);
    }

    #[test]
    fn parses_mixed_dtypes() {
        let f = parse_chunk_typed("1,2.5,x\n2,3.5,y\n", None).unwrap();
        assert_eq!(f.nrows(), 2);
        assert_eq!(f.columns()[0].dtype(), Dtype::Int64);
        assert_eq!(f.columns()[1].dtype(), Dtype::Float64);
        assert_eq!(f.columns()[2].dtype(), Dtype::Str);
    }

    #[test]
    fn int_column_promoted_by_single_float() {
        let f = parse_chunk_typed("1\n2.5\n3\n", None).unwrap();
        assert_eq!(f.columns()[0].dtype(), Dtype::Float64);
        assert_eq!(f.columns()[0].f32_at(1), 2.5);
    }

    #[test]
    fn ragged_row_is_error() {
        assert!(parse_chunk_typed("1,2\n3\n", None).is_err());
    }

    #[test]
    fn width_enforced_against_expectation() {
        assert!(parse_chunk_typed("1,2\n", Some(3)).is_err());
        assert!(parse_chunk_typed("1,2,3\n", Some(3)).is_ok());
    }

    #[test]
    fn empty_text_gives_empty_frame() {
        let f = parse_chunk_typed("", None).unwrap();
        assert_eq!(f.nrows(), 0);
        assert_eq!(f.ncols(), 0);
    }

    #[test]
    fn blank_lines_skipped() {
        let f = parse_chunk_typed("1,2\n\n3,4\n", None).unwrap();
        assert_eq!(f.nrows(), 2);
    }

    /// Regression for the silent-corruption bug: an int-looking token that
    /// does not fit `i64` must never be materialized as `0`. Overflowing
    /// tokens parse as `f64` so the column promotes to Float64 with the
    /// magnitude preserved, and garbage tokens keep the column as Str with
    /// the text intact — in no case does a `0` appear.
    #[test]
    fn unparsable_int_tokens_are_never_zeroed() {
        // i64::MAX + 1: fails `parse::<i64>`, infers Float64.
        let f = parse_chunk_typed("1\n9223372036854775808\n", None).unwrap();
        assert_eq!(f.columns()[0].dtype(), Dtype::Float64);
        assert_eq!(f.columns()[0].f32_at(1), 9.223372e18);
        // Garbage token: column stays Str, text preserved verbatim.
        let f = parse_chunk_typed("1\n12x\n", None).unwrap();
        assert_eq!(f.columns()[0].dtype(), Dtype::Str);
        match &f.columns()[0] {
            Column::Str(vals) => assert_eq!(vals[1], "12x"),
            other => panic!("expected Str column, got {:?}", other.dtype()),
        }
        // Plain int columns still parse exactly.
        let f = parse_chunk_typed("-3\n0\n9223372036854775807\n", None).unwrap();
        match &f.columns()[0] {
            Column::Int64(vals) => assert_eq!(vals, &[-3, 0, i64::MAX]),
            other => panic!("expected Int64 column, got {:?}", other.dtype()),
        }
    }
}
