//! CSV engine: writer, parser, and the three reader strategies under
//! comparison in the paper's Tables 3 and 4.

mod parser;
mod readers;
mod writer;

pub use parser::{parse_chunk_typed, split_fields};
pub use readers::{read_csv, LoadStats, ReadStrategy};
pub use writer::write_matrix_csv;
