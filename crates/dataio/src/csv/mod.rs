//! CSV engine: writer, parser, the three reader strategies under
//! comparison in the paper's Tables 3 and 4, and the [`turbo`] engine
//! that outruns all of them.

mod parser;
mod readers;
pub mod turbo;
mod writer;

pub use parser::{parse_chunk_typed, split_fields};
pub use readers::{read_csv, read_turbo_with_threads, LoadStats, ReadStrategy};
pub use turbo::IngestPhases;
pub use writer::write_matrix_csv;
