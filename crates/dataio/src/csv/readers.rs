//! The three reader strategies of the paper's data-loading study.

use crate::csv::parser::{parse_chunk_typed, split_fields};
use crate::frame::{Column, Frame};
use crate::schema::{infer_dtype, Dtype};
use crate::DataError;
use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

/// pandas' internal low-memory buffer: it tokenizes in chunks of roughly
/// this many bytes, re-inferring dtypes per chunk.
const LOW_MEMORY_CHUNK_BYTES: usize = 256 * 1024;

/// The paper's optimized chunk size: 16 MB, the largest I/O block Spectrum
/// Scale issues on Summit (and close to the `csize=2_000_000` rows ×
/// row-width the paper's code uses).
const OPTIMIZED_CHUNK_BYTES: usize = 16 * 1024 * 1024;

/// How a CSV file is ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStrategy {
    /// `pandas.read_csv()` default (`low_memory=True`): small internal
    /// chunks, per-chunk dtype inference and column fragments, final
    /// unify-and-concat.
    PandasDefault,
    /// The paper's fix: chunked reading with `low_memory=False` — large
    /// chunks, one dtype decision, direct column appends.
    ChunkedLowMemory,
    /// Dask DataFrame: byte-range partitions parsed in parallel, then
    /// concatenated.
    DaskParallel,
}

impl ReadStrategy {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ReadStrategy::PandasDefault => "pandas.read_csv (original)",
            ReadStrategy::ChunkedLowMemory => "chunked low_memory=False",
            ReadStrategy::DaskParallel => "dask parallel",
        }
    }
}

/// Measured statistics of one load.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Strategy used.
    pub strategy: ReadStrategy,
    /// File size in bytes.
    pub bytes: u64,
    /// Rows parsed.
    pub rows: usize,
    /// Columns parsed.
    pub cols: usize,
    /// Wall-clock parse+materialize time.
    pub elapsed: Duration,
    /// Number of chunk boundaries crossed (fragments produced).
    pub chunks: usize,
}

impl LoadStats {
    /// Parse throughput in MiB/s (0.0 for an instantaneous or empty read).
    pub fn throughput_mib_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / (1024.0 * 1024.0) / secs
    }
}

/// Reads a CSV file with the requested strategy.
pub fn read_csv(path: &Path, strategy: ReadStrategy) -> Result<(Frame, LoadStats), DataError> {
    let start = Instant::now();
    let bytes = std::fs::metadata(path)?.len();
    let (frame, chunks) = match strategy {
        ReadStrategy::PandasDefault => read_pandas_default(path)?,
        ReadStrategy::ChunkedLowMemory => read_chunked(path)?,
        ReadStrategy::DaskParallel => read_dask(path)?,
    };
    let stats = LoadStats {
        strategy,
        bytes,
        rows: frame.nrows(),
        cols: frame.ncols(),
        elapsed: start.elapsed(),
        chunks,
    };
    Ok((frame, stats))
}

/// Streams the file in `chunk_bytes` blocks, invoking `f` with each block
/// of *complete lines* (partial trailing lines carry over).
fn stream_line_chunks(
    path: &Path,
    chunk_bytes: usize,
    mut f: impl FnMut(&str) -> Result<(), DataError>,
) -> Result<usize, DataError> {
    let mut file = std::fs::File::open(path)?;
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; chunk_bytes];
    let mut chunks = 0usize;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        carry.extend_from_slice(&buf[..n]);
        // Split at the last newline; keep the remainder for the next round.
        if let Some(pos) = carry.iter().rposition(|&b| b == b'\n') {
            let complete: Vec<u8> = carry.drain(..=pos).collect();
            let text = std::str::from_utf8(&complete)
                .map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
            f(text)?;
            chunks += 1;
        }
    }
    if !carry.is_empty() {
        let text = std::str::from_utf8(&carry)
            .map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
        f(text)?;
        chunks += 1;
    }
    Ok(chunks)
}

/// `low_memory=True` reproduction: small chunks, typed fragment per chunk,
/// unify-and-concat at the end. On wide files the per-chunk per-column
/// overhead (token vectors, dtype scans, fragment columns) dominates —
/// the bottleneck the paper measured.
fn read_pandas_default(path: &Path) -> Result<(Frame, usize), DataError> {
    let mut fragments: Vec<Frame> = Vec::new();
    let mut width: Option<usize> = None;
    let chunks = stream_line_chunks(path, LOW_MEMORY_CHUNK_BYTES, |text| {
        let frame = parse_chunk_typed(text, width)?;
        if frame.nrows() > 0 {
            width = Some(frame.ncols());
            fragments.push(frame);
        }
        Ok(())
    })?;
    if fragments.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    Ok((Frame::concat(fragments)?, chunks))
}

/// The paper's optimized loader: 16 MB chunks, dtype inference once on the
/// first record, then direct appends into preallocated `f64` columns.
/// Falls back to the typed path if any column is non-numeric.
fn read_chunked(path: &Path) -> Result<(Frame, usize), DataError> {
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut nonnumeric = false;
    let mut rows = 0usize;
    let chunks = stream_line_chunks(path, OPTIMIZED_CHUNK_BYTES, |text| {
        if nonnumeric {
            return Ok(());
        }
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let fields = split_fields(line);
            if columns.is_empty() {
                // Single inference pass on the first record.
                if fields.iter().any(|f| infer_dtype(f) == Dtype::Str) {
                    nonnumeric = true;
                    return Ok(());
                }
                columns = vec![Vec::new(); fields.len()];
            }
            if fields.len() != columns.len() {
                return Err(DataError::Malformed(format!(
                    "row {rows} has {} fields, expected {}",
                    fields.len(),
                    columns.len()
                )));
            }
            for (col, field) in columns.iter_mut().zip(&fields) {
                match field.trim().parse::<f64>() {
                    Ok(v) => col.push(v),
                    Err(_) => {
                        nonnumeric = true;
                        return Ok(());
                    }
                }
            }
            rows += 1;
        }
        Ok(())
    })?;
    if nonnumeric {
        // Mixed-dtype file: re-read with the typed parser (still large
        // chunks, so the cost profile stays close to the optimized path).
        let mut fragments: Vec<Frame> = Vec::new();
        let mut width: Option<usize> = None;
        let chunks = stream_line_chunks(path, OPTIMIZED_CHUNK_BYTES, |text| {
            let frame = parse_chunk_typed(text, width)?;
            if frame.nrows() > 0 {
                width = Some(frame.ncols());
                fragments.push(frame);
            }
            Ok(())
        })?;
        if fragments.is_empty() {
            return Err(DataError::Malformed("empty csv file".into()));
        }
        return Ok((Frame::concat(fragments)?, chunks));
    }
    if columns.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let frame = Frame::new(columns.into_iter().map(Column::Float64).collect())?;
    Ok((frame, chunks))
}

/// Dask-style parallel read: split the file into byte partitions aligned to
/// line boundaries, parse partitions concurrently, concat in order.
fn read_dask(path: &Path) -> Result<(Frame, usize), DataError> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let text =
        std::str::from_utf8(&bytes).map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
    let nparts = parx::default_threads().clamp(1, 8);
    // Partition boundaries: advance each target offset to the next newline.
    let mut bounds = vec![0usize];
    for i in 1..nparts {
        let target = bytes.len() * i / nparts;
        let mut pos = target.min(bytes.len());
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        pos = (pos + 1).min(bytes.len());
        if pos > *bounds.last().expect("nonempty") {
            bounds.push(pos);
        }
    }
    bounds.push(bytes.len());
    let spans: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
    let results: Vec<Result<Frame, DataError>> =
        parx::parallel_map(spans.len(), spans.len(), |i| {
            let (s, e) = spans[i];
            parse_chunk_typed(&text[s..e], None)
        });
    let mut fragments = Vec::with_capacity(results.len());
    for r in results {
        let frame = r?;
        if frame.nrows() > 0 {
            fragments.push(frame);
        }
    }
    if fragments.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let chunks = fragments.len();
    Ok((Frame::concat(fragments)?, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_matrix_csv;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("candle_repro_reader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_matrix(name: &str, rows: usize, cols: usize) -> (std::path::PathBuf, Vec<f32>) {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(rows as u64 * 31 + cols as u64);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| (rng.next_f32() * 100.0).round() / 4.0)
            .collect();
        let path = tmpfile(name);
        write_matrix_csv(&path, &data, rows, cols).unwrap();
        (path, data)
    }

    #[test]
    fn all_strategies_agree() {
        let (path, data) = write_matrix("agree.csv", 200, 17);
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
        ] {
            let (frame, stats) = read_csv(&path, strategy).unwrap();
            assert_eq!(frame.nrows(), 200, "{strategy:?}");
            assert_eq!(frame.ncols(), 17, "{strategy:?}");
            assert_eq!(frame.to_f32_matrix(), data, "{strategy:?}");
            assert_eq!(stats.rows, 200);
            assert!(stats.bytes > 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// xrng-driven property test: for randomly drawn file geometries, all
    /// three strategies must materialize the *identical* frame — they are
    /// different read schedules over the same parse semantics.
    #[test]
    fn random_geometries_parse_identically_across_strategies() {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(0xC5F_D47A);
        for case in 0..12 {
            let rows = 1 + rng.next_index(300);
            let cols = 1 + rng.next_index(40);
            let (path, _) = write_matrix(&format!("prop_{case}.csv"), rows, cols);
            let (base, base_stats) = read_csv(&path, ReadStrategy::PandasDefault).unwrap();
            for strategy in [ReadStrategy::ChunkedLowMemory, ReadStrategy::DaskParallel] {
                let (frame, stats) = read_csv(&path, strategy).unwrap();
                assert_eq!(frame, base, "case {case}: {rows}x{cols} {strategy:?}");
                assert_eq!(stats.bytes, base_stats.bytes);
                assert_eq!((stats.rows, stats.cols), (rows, cols));
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn throughput_reflects_bytes_over_elapsed() {
        let mut stats = LoadStats {
            strategy: ReadStrategy::PandasDefault,
            bytes: 3 * 1024 * 1024,
            rows: 10,
            cols: 3,
            elapsed: Duration::from_secs(2),
            chunks: 1,
        };
        assert!((stats.throughput_mib_s() - 1.5).abs() < 1e-12);
        stats.elapsed = Duration::ZERO;
        assert_eq!(stats.throughput_mib_s(), 0.0);
    }

    #[test]
    fn pandas_default_uses_more_chunks_on_wide_files() {
        // Wide file: 40 rows x 2000 cols ≈ 500 KB > one 256 KB low-memory
        // chunk but < one 16 MB optimized chunk.
        let (path, _) = write_matrix("wide.csv", 40, 2000);
        let (_, slow) = read_csv(&path, ReadStrategy::PandasDefault).unwrap();
        let (_, fast) = read_csv(&path, ReadStrategy::ChunkedLowMemory).unwrap();
        assert!(
            slow.chunks > 1,
            "pandas path should fragment: {}",
            slow.chunks
        );
        assert_eq!(fast.chunks, 1, "optimized path should not fragment");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mixed_dtype_file_falls_back_correctly() {
        let path = tmpfile("mixed.csv");
        std::fs::write(&path, "1,tumor,2.5\n2,normal,3.5\n").unwrap();
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
        ] {
            let (frame, _) = read_csv(&path, strategy).unwrap();
            assert_eq!(frame.nrows(), 2);
            assert_eq!(frame.columns()[1].dtype(), Dtype::Str, "{strategy:?}");
            assert_eq!(frame.columns()[0].dtype(), Dtype::Int64, "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_error() {
        let path = tmpfile("empty.csv");
        std::fs::write(&path, "").unwrap();
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
        ] {
            assert!(read_csv(&path, strategy).is_err(), "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ragged_file_is_error() {
        let path = tmpfile("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        for strategy in [ReadStrategy::PandasDefault, ReadStrategy::ChunkedLowMemory] {
            assert!(read_csv(&path, strategy).is_err(), "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = read_csv(
            Path::new("/nonexistent/file.csv"),
            ReadStrategy::ChunkedLowMemory,
        );
        assert!(matches!(r, Err(DataError::Io(_))));
    }

    #[test]
    fn labels_match_paper_terms() {
        assert!(ReadStrategy::PandasDefault.label().contains("pandas"));
        assert!(ReadStrategy::ChunkedLowMemory
            .label()
            .contains("low_memory=False"));
    }
}
