//! The reader strategies of the paper's data-loading study, plus the
//! turbo engine that goes past them.

use crate::csv::parser::{parse_chunk_typed, split_fields};
use crate::csv::turbo::{self, IngestPhases, StructuralIndex};
use crate::frame::{Column, Frame};
use crate::schema::{infer_dtype, Dtype};
use crate::DataError;
use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

/// pandas' internal low-memory buffer: it tokenizes in chunks of roughly
/// this many bytes, re-inferring dtypes per chunk.
const LOW_MEMORY_CHUNK_BYTES: usize = 256 * 1024;

/// The paper's optimized chunk size: 16 MB, the largest I/O block Spectrum
/// Scale issues on Summit (and close to the `csize=2_000_000` rows ×
/// row-width the paper's code uses).
const OPTIMIZED_CHUNK_BYTES: usize = 16 * 1024 * 1024;

/// How a CSV file is ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStrategy {
    /// `pandas.read_csv()` default (`low_memory=True`): small internal
    /// chunks, per-chunk dtype inference and column fragments, final
    /// unify-and-concat.
    PandasDefault,
    /// The paper's fix: chunked reading with `low_memory=False` — large
    /// chunks, one dtype decision, direct column appends.
    ChunkedLowMemory,
    /// Dask DataFrame: byte-range partitions parsed in parallel, then
    /// concatenated.
    DaskParallel,
    /// Turbo engine: SWAR structural scan of the whole-file buffer, then
    /// allocation-free parallel parse straight into disjoint slices of the
    /// final column storage (see [`crate::csv::turbo`]). Bit-identical to
    /// [`ReadStrategy::ChunkedLowMemory`] at any thread count; mixed-dtype
    /// files fall back to the same typed parser.
    TurboParallel,
}

impl ReadStrategy {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ReadStrategy::PandasDefault => "pandas.read_csv (original)",
            ReadStrategy::ChunkedLowMemory => "chunked low_memory=False",
            ReadStrategy::DaskParallel => "dask parallel",
            ReadStrategy::TurboParallel => "turbo parallel (SWAR scan)",
        }
    }
}

/// Measured statistics of one load.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Strategy used.
    pub strategy: ReadStrategy,
    /// File size in bytes.
    pub bytes: u64,
    /// Rows parsed.
    pub rows: usize,
    /// Columns parsed.
    pub cols: usize,
    /// Wall-clock parse+materialize time.
    pub elapsed: Duration,
    /// Number of chunk boundaries crossed (fragments produced, or row
    /// partitions for the turbo path).
    pub chunks: usize,
    /// Per-phase attribution (turbo strategy only).
    pub ingest: Option<IngestPhases>,
}

impl LoadStats {
    /// Parse throughput in MiB/s (0.0 for an instantaneous or empty read).
    pub fn throughput_mib_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / (1024.0 * 1024.0) / secs
    }
}

/// Reads a CSV file with the requested strategy.
pub fn read_csv(path: &Path, strategy: ReadStrategy) -> Result<(Frame, LoadStats), DataError> {
    match strategy {
        ReadStrategy::TurboParallel => {
            read_turbo_with_threads(path, parx::default_threads().clamp(1, 8))
        }
        _ => {
            let start = Instant::now();
            let bytes = std::fs::metadata(path)?.len();
            let (frame, chunks) = match strategy {
                ReadStrategy::PandasDefault => read_typed_chunks(path, LOW_MEMORY_CHUNK_BYTES)?,
                ReadStrategy::ChunkedLowMemory => read_chunked(path)?,
                ReadStrategy::DaskParallel => read_dask(path)?,
                ReadStrategy::TurboParallel => unreachable!("handled above"),
            };
            let stats = LoadStats {
                strategy,
                bytes,
                rows: frame.nrows(),
                cols: frame.ncols(),
                elapsed: start.elapsed(),
                chunks,
                ingest: None,
            };
            Ok((frame, stats))
        }
    }
}

/// The turbo read at an explicit thread budget. Exposed so the equivalence
/// and allocation tests can pin thread counts; [`read_csv`] uses the
/// `parx` default.
pub fn read_turbo_with_threads(
    path: &Path,
    threads: usize,
) -> Result<(Frame, LoadStats), DataError> {
    let start = Instant::now();
    let bytes = std::fs::metadata(path)?.len();
    let (frame, chunks, phases) = read_turbo(path, threads)?;
    let stats = LoadStats {
        strategy: ReadStrategy::TurboParallel,
        bytes,
        rows: frame.nrows(),
        cols: frame.ncols(),
        elapsed: start.elapsed(),
        chunks,
        ingest: Some(phases),
    };
    Ok((frame, stats))
}

/// Streams the file in `chunk_bytes` blocks, invoking `f` with each block
/// of *complete lines* (partial trailing lines carry over). One buffer is
/// reused across the whole stream — the carry is compacted in place rather
/// than re-collected per chunk — and each block is UTF-8-validated exactly
/// once, at a newline boundary (`\n` is ASCII, so a multi-byte character
/// can never straddle the validated block and the carry).
fn stream_line_chunks(
    path: &Path,
    chunk_bytes: usize,
    mut f: impl FnMut(&str) -> Result<(), DataError>,
) -> Result<usize, DataError> {
    let mut file = std::fs::File::open(path)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunks = 0usize;
    loop {
        let carry_len = buf.len();
        buf.resize(carry_len + chunk_bytes, 0);
        let n = file.read(&mut buf[carry_len..])?;
        buf.truncate(carry_len + n);
        if n == 0 {
            break;
        }
        // Split at the last newline; keep the remainder for the next round.
        if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
            let text = std::str::from_utf8(&buf[..=pos])
                .map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
            f(text)?;
            chunks += 1;
            buf.copy_within(pos + 1.., 0);
            buf.truncate(buf.len() - (pos + 1));
        }
    }
    if !buf.is_empty() {
        let text = std::str::from_utf8(&buf)
            .map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
        f(text)?;
        chunks += 1;
    }
    Ok(chunks)
}

/// Chunked typed read shared by the pandas-default strategy
/// (`LOW_MEMORY_CHUNK_BYTES`) and the mixed-dtype fallbacks of the chunked
/// and turbo strategies (`OPTIMIZED_CHUNK_BYTES`): typed fragment per
/// chunk, unify-and-concat at the end. On wide files at the small chunk
/// size the per-chunk per-column overhead (token vectors, dtype scans,
/// fragment columns) dominates — the bottleneck the paper measured.
fn read_typed_chunks(path: &Path, chunk_bytes: usize) -> Result<(Frame, usize), DataError> {
    let mut fragments: Vec<Frame> = Vec::new();
    let mut width: Option<usize> = None;
    let chunks = stream_line_chunks(path, chunk_bytes, |text| {
        let frame = parse_chunk_typed(text, width)?;
        if frame.nrows() > 0 {
            width = Some(frame.ncols());
            fragments.push(frame);
        }
        Ok(())
    })?;
    if fragments.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    Ok((Frame::concat(fragments)?, chunks))
}

/// The paper's optimized loader: 16 MB chunks, dtype inference once on the
/// first record, then direct appends into preallocated `f64` columns.
/// Falls back to the typed path if any column is non-numeric.
fn read_chunked(path: &Path) -> Result<(Frame, usize), DataError> {
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut nonnumeric = false;
    let mut rows = 0usize;
    let chunks = stream_line_chunks(path, OPTIMIZED_CHUNK_BYTES, |text| {
        if nonnumeric {
            return Ok(());
        }
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let fields = split_fields(line);
            if columns.is_empty() {
                // Single inference pass on the first record.
                if fields.iter().any(|f| infer_dtype(f) == Dtype::Str) {
                    nonnumeric = true;
                    return Ok(());
                }
                columns = vec![Vec::new(); fields.len()];
            }
            if fields.len() != columns.len() {
                return Err(DataError::Malformed(format!(
                    "row {rows} has {} fields, expected {}",
                    fields.len(),
                    columns.len()
                )));
            }
            for (col, field) in columns.iter_mut().zip(&fields) {
                match field.trim().parse::<f64>() {
                    Ok(v) => col.push(v),
                    Err(_) => {
                        nonnumeric = true;
                        return Ok(());
                    }
                }
            }
            rows += 1;
        }
        Ok(())
    })?;
    if nonnumeric {
        // Mixed-dtype file: re-read with the typed parser (still large
        // chunks, so the cost profile stays close to the optimized path).
        return read_typed_chunks(path, OPTIMIZED_CHUNK_BYTES);
    }
    if columns.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let frame = Frame::new(columns.into_iter().map(Column::Float64).collect())?;
    Ok((frame, chunks))
}

/// Dask-style parallel read: split the file into byte partitions aligned to
/// line boundaries, parse partitions concurrently, concat in order.
///
/// Dtype note: each partition is typed independently, so a column that is
/// all-int in one partition and float in another produces disagreeing
/// fragments — `Frame::concat` resolves them with the same
/// [`crate::schema::unify`] rule the parser's own inference uses (Float64
/// absorbs Int64, Str absorbs everything), which is also the rule the
/// turbo fallback inherits by going through the same typed parser.
fn read_dask(path: &Path) -> Result<(Frame, usize), DataError> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let text =
        std::str::from_utf8(&bytes).map_err(|_| DataError::Malformed("non-UTF8 content".into()))?;
    let nparts = parx::default_threads().clamp(1, 8);
    // Partition boundaries: advance each target offset to the next newline.
    let mut bounds = vec![0usize];
    for i in 1..nparts {
        let target = bytes.len() * i / nparts;
        let mut pos = target.min(bytes.len());
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        pos = (pos + 1).min(bytes.len());
        if pos > *bounds.last().expect("nonempty") {
            bounds.push(pos);
        }
    }
    bounds.push(bytes.len());
    let spans: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
    let results: Vec<Result<Frame, DataError>> =
        parx::parallel_map(spans.len(), spans.len(), |i| {
            let (s, e) = spans[i];
            parse_chunk_typed(&text[s..e], None)
        });
    let mut fragments = Vec::with_capacity(results.len());
    for r in results {
        let frame = r?;
        if frame.nrows() > 0 {
            fragments.push(frame);
        }
    }
    if fragments.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    let chunks = fragments.len();
    Ok((Frame::concat(fragments)?, chunks))
}

/// The turbo read: whole-file buffer → SWAR structural scan → parallel
/// parse into preallocated columns. Numeric files never touch the typed
/// parser; mixed-dtype files take the identical fallback as
/// [`ReadStrategy::ChunkedLowMemory`], so results always agree.
fn read_turbo(path: &Path, threads: usize) -> Result<(Frame, usize, IngestPhases), DataError> {
    let t0 = Instant::now();
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(DataError::Malformed("empty csv file".into()));
    }
    if bytes.len() >= u32::MAX as usize {
        // Beyond the structural index's u32 offsets: the streaming chunked
        // strategy handles any size.
        let (frame, chunks) = read_chunked(path)?;
        return Ok((frame, chunks, IngestPhases::default()));
    }
    let mut idx = StructuralIndex::new();
    turbo::scan(&bytes, &mut idx)?;
    let scan = t0.elapsed();
    if idx.rows() == 0 {
        return Err(DataError::Malformed("empty csv file".into()));
    }

    let t1 = Instant::now();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let numeric = turbo::parse_into(&bytes, &idx, &mut columns, threads);
    let parse = t1.elapsed();
    if !numeric {
        // Mixed-dtype file: same typed fallback as the chunked strategy.
        drop(bytes);
        let (frame, chunks) = read_typed_chunks(path, OPTIMIZED_CHUNK_BYTES)?;
        return Ok((
            frame,
            chunks,
            IngestPhases {
                scan,
                parse,
                materialize: Duration::ZERO,
            },
        ));
    }

    let t2 = Instant::now();
    let chunks = turbo::effective_partitions(idx.rows(), threads);
    let frame = Frame::new(columns.into_iter().map(Column::Float64).collect())?;
    let materialize = t2.elapsed();
    Ok((
        frame,
        chunks,
        IngestPhases {
            scan,
            parse,
            materialize,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_matrix_csv;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("candle_repro_reader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_matrix(name: &str, rows: usize, cols: usize) -> (std::path::PathBuf, Vec<f32>) {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(rows as u64 * 31 + cols as u64);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| (rng.next_f32() * 100.0).round() / 4.0)
            .collect();
        let path = tmpfile(name);
        write_matrix_csv(&path, &data, rows, cols).unwrap();
        (path, data)
    }

    #[test]
    fn all_strategies_agree() {
        let (path, data) = write_matrix("agree.csv", 200, 17);
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
            ReadStrategy::TurboParallel,
        ] {
            let (frame, stats) = read_csv(&path, strategy).unwrap();
            assert_eq!(frame.nrows(), 200, "{strategy:?}");
            assert_eq!(frame.ncols(), 17, "{strategy:?}");
            assert_eq!(frame.to_f32_matrix(), data, "{strategy:?}");
            assert_eq!(stats.rows, 200);
            assert!(stats.bytes > 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// xrng-driven property test: for randomly drawn file geometries, all
    /// strategies must materialize the *identical* frame — they are
    /// different read schedules over the same parse semantics.
    #[test]
    fn random_geometries_parse_identically_across_strategies() {
        use xrng::RandomSource;
        let mut rng = xrng::seeded(0xC5F_D47A);
        for case in 0..12 {
            let rows = 1 + rng.next_index(300);
            let cols = 1 + rng.next_index(40);
            let (path, _) = write_matrix(&format!("prop_{case}.csv"), rows, cols);
            let (base, base_stats) = read_csv(&path, ReadStrategy::PandasDefault).unwrap();
            for strategy in [
                ReadStrategy::ChunkedLowMemory,
                ReadStrategy::DaskParallel,
                ReadStrategy::TurboParallel,
            ] {
                let (frame, stats) = read_csv(&path, strategy).unwrap();
                assert_eq!(frame, base, "case {case}: {rows}x{cols} {strategy:?}");
                assert_eq!(stats.bytes, base_stats.bytes);
                assert_eq!((stats.rows, stats.cols), (rows, cols));
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn throughput_reflects_bytes_over_elapsed() {
        let mut stats = LoadStats {
            strategy: ReadStrategy::PandasDefault,
            bytes: 3 * 1024 * 1024,
            rows: 10,
            cols: 3,
            elapsed: Duration::from_secs(2),
            chunks: 1,
            ingest: None,
        };
        assert!((stats.throughput_mib_s() - 1.5).abs() < 1e-12);
        stats.elapsed = Duration::ZERO;
        assert_eq!(stats.throughput_mib_s(), 0.0);
    }

    #[test]
    fn pandas_default_uses_more_chunks_on_wide_files() {
        // Wide file: 40 rows x 2000 cols ≈ 500 KB > one 256 KB low-memory
        // chunk but < one 16 MB optimized chunk.
        let (path, _) = write_matrix("wide.csv", 40, 2000);
        let (_, slow) = read_csv(&path, ReadStrategy::PandasDefault).unwrap();
        let (_, fast) = read_csv(&path, ReadStrategy::ChunkedLowMemory).unwrap();
        assert!(
            slow.chunks > 1,
            "pandas path should fragment: {}",
            slow.chunks
        );
        assert_eq!(fast.chunks, 1, "optimized path should not fragment");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn turbo_reports_ingest_phases_and_partitions() {
        let (path, data) = write_matrix("turbo_phases.csv", 300, 9);
        let (frame, stats) = read_turbo_with_threads(&path, 4).unwrap();
        assert_eq!(frame.to_f32_matrix(), data);
        assert_eq!(stats.strategy, ReadStrategy::TurboParallel);
        let phases = stats.ingest.expect("turbo reports phases");
        assert!(phases.scan > Duration::ZERO);
        assert!(phases.parse > Duration::ZERO);
        // 300 rows / grain 16 supports all 4 partitions.
        assert_eq!(stats.chunks, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mixed_dtype_file_falls_back_correctly() {
        let path = tmpfile("mixed.csv");
        std::fs::write(&path, "1,tumor,2.5\n2,normal,3.5\n").unwrap();
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
            ReadStrategy::TurboParallel,
        ] {
            let (frame, _) = read_csv(&path, strategy).unwrap();
            assert_eq!(frame.nrows(), 2);
            assert_eq!(frame.columns()[1].dtype(), Dtype::Str, "{strategy:?}");
            assert_eq!(frame.columns()[0].dtype(), Dtype::Int64, "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Pins the cross-partition dtype rule: a column that is all-int in the
    /// early byte partitions but float in a later one must unify to Float64
    /// after the dask concat (per-fragment Int64 columns are cast), and the
    /// turbo read of the same file agrees on dtype and values.
    #[test]
    fn dask_partitions_unify_dtypes_across_fragments() {
        let path = tmpfile("dask_unify.csv");
        let mut text = String::new();
        for i in 0..4000 {
            text.push_str(&format!("{i},7\n"));
        }
        text.push_str("0.5,7\n");
        std::fs::write(&path, &text).unwrap();
        let (dask, _) = read_csv(&path, ReadStrategy::DaskParallel).unwrap();
        assert_eq!(dask.nrows(), 4001);
        assert_eq!(dask.columns()[0].dtype(), Dtype::Float64);
        let (turbo, _) = read_csv(&path, ReadStrategy::TurboParallel).unwrap();
        assert_eq!(turbo.nrows(), 4001);
        assert_eq!(turbo.columns()[0].dtype(), Dtype::Float64);
        // Same values under f32 projection regardless of engine.
        assert_eq!(dask.to_f32_matrix(), turbo.to_f32_matrix());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_error() {
        let path = tmpfile("empty.csv");
        std::fs::write(&path, "").unwrap();
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
            ReadStrategy::TurboParallel,
        ] {
            assert!(read_csv(&path, strategy).is_err(), "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blank_only_file_is_error_for_turbo() {
        let path = tmpfile("blanks.csv");
        std::fs::write(&path, "\n\n\r\n").unwrap();
        assert!(read_csv(&path, ReadStrategy::TurboParallel).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ragged_file_is_error() {
        let path = tmpfile("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::TurboParallel,
        ] {
            assert!(read_csv(&path, strategy).is_err(), "{strategy:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = read_csv(
            Path::new("/nonexistent/file.csv"),
            ReadStrategy::ChunkedLowMemory,
        );
        assert!(matches!(r, Err(DataError::Io(_))));
        let r = read_csv(Path::new("/nonexistent/file.csv"), ReadStrategy::TurboParallel);
        assert!(matches!(r, Err(DataError::Io(_))));
    }

    #[test]
    fn labels_match_paper_terms() {
        assert!(ReadStrategy::PandasDefault.label().contains("pandas"));
        assert!(ReadStrategy::ChunkedLowMemory
            .label()
            .contains("low_memory=False"));
        assert!(ReadStrategy::TurboParallel.label().contains("turbo"));
    }
}
