//! `dataio` — CSV ingestion engine and synthetic dataset generation.
//!
//! The paper's headline optimization replaces `pandas.read_csv()` (default
//! `low_memory=True`) with chunked reads under `low_memory=False`, speeding
//! data loading 3–7× on the wide CANDLE files and transforming total
//! runtime at scale. This crate rebuilds that storyline in Rust with three
//! real reader strategies over a common parser:
//!
//! * [`ReadStrategy::PandasDefault`] — small row-chunks sized by a byte
//!   budget, per-chunk dtype re-inference, per-chunk column fragments and a
//!   final unify-and-concatenate pass. This mirrors what pandas'
//!   `low_memory=True` path does internally and reproduces its failure
//!   mode: on *wide* files (60k columns, ~1k rows) the per-chunk,
//!   per-column overhead dominates.
//! * [`ReadStrategy::ChunkedLowMemory`] — the paper's fix: large chunks
//!   (16 MB, the Spectrum Scale maximum I/O block the paper cites), one
//!   dtype inference, direct append into preallocated typed columns.
//! * [`ReadStrategy::DaskParallel`] — byte-range partitioning parsed in
//!   parallel (`parx`), then concatenated; faster than pandas-default,
//!   slower than the chunked fix on wide files, as the paper reports for
//!   Dask DataFrame.
//! * [`ReadStrategy::TurboParallel`] — goes past the paper: a SWAR
//!   structural scan indexes every record up front, then workers parse in
//!   parallel straight into disjoint slices of the final column storage
//!   (no per-row allocations, no concat), bit-identical to the chunked
//!   strategy at any thread count. See [`csv::turbo`].
//!
//! [`generate`] produces learnable synthetic datasets with the exact
//! row/column geometry of the four P1 benchmarks (scaled by a documented
//! factor), replacing the NCI data we cannot access.

mod frame;
mod gen;
pub mod preprocess;
mod schema;

pub mod csv;

pub use frame::{Column, Frame};
pub use gen::{generate, write_csv_dataset, ClassSpec, SyntheticDataset, SyntheticSpec};
pub use preprocess::{Scaler, ScalerKind};
pub use schema::{infer_dtype, unify, Dtype};

pub use csv::{read_csv, read_turbo_with_threads, IngestPhases, LoadStats, ReadStrategy};

/// Errors from CSV reading and dataset generation.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the CSV (ragged rows, empty file, ...).
    Malformed(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Malformed(msg) => write!(f, "malformed csv: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}
