//! A minimal column-oriented data frame.
//!
//! Just enough of a DataFrame for the CANDLE ingestion path: typed columns,
//! fragment concatenation with dtype unification (the expensive step the
//! pandas-default reader repeats per chunk), and conversion to a dense
//! `f32` matrix for training.

use crate::schema::{unify, Dtype};
use crate::DataError;

/// One typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer storage.
    Int64(Vec<i64>),
    /// Float storage.
    Float64(Vec<f64>),
    /// Text storage.
    Str(Vec<String>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's dtype.
    pub fn dtype(&self) -> Dtype {
        match self {
            Column::Int64(_) => Dtype::Int64,
            Column::Float64(_) => Dtype::Float64,
            Column::Str(_) => Dtype::Str,
        }
    }

    /// Converts the column to the target dtype (pandas' `astype` during
    /// fragment unification). String data converts to floats via parsing,
    /// with unparseable entries becoming NaN.
    pub fn cast(self, target: Dtype) -> Column {
        if self.dtype() == target {
            return self;
        }
        match (self, target) {
            (Column::Int64(v), Dtype::Float64) => {
                Column::Float64(v.into_iter().map(|x| x as f64).collect())
            }
            (Column::Int64(v), Dtype::Str) => {
                Column::Str(v.into_iter().map(|x| x.to_string()).collect())
            }
            (Column::Float64(v), Dtype::Str) => {
                Column::Str(v.into_iter().map(|x| x.to_string()).collect())
            }
            (Column::Float64(v), Dtype::Int64) => {
                Column::Int64(v.into_iter().map(|x| x as i64).collect())
            }
            (Column::Str(v), Dtype::Float64) => Column::Float64(
                v.into_iter()
                    .map(|s| s.trim().parse::<f64>().unwrap_or(f64::NAN))
                    .collect(),
            ),
            (Column::Str(v), Dtype::Int64) => Column::Int64(
                v.into_iter()
                    .map(|s| s.trim().parse::<i64>().unwrap_or(0))
                    .collect(),
            ),
            (col, _) => col,
        }
    }

    /// Appends another column's values, promoting dtypes as needed.
    pub fn extend(self, other: Column) -> Column {
        let target = unify(self.dtype(), other.dtype());
        let mut a = self.cast(target);
        let b = other.cast(target);
        match (&mut a, b) {
            (Column::Int64(x), Column::Int64(y)) => x.extend(y),
            (Column::Float64(x), Column::Float64(y)) => x.extend(y),
            (Column::Str(x), Column::Str(y)) => x.extend(y),
            _ => unreachable!("both sides cast to the unified dtype"),
        }
        a
    }

    /// Value as f32 at `row` (NaN-preserving; strings parse or NaN).
    pub fn f32_at(&self, row: usize) -> f32 {
        match self {
            Column::Int64(v) => v[row] as f32,
            Column::Float64(v) => v[row] as f32,
            Column::Str(v) => v[row].trim().parse::<f32>().unwrap_or(f32::NAN),
        }
    }
}

/// A column-oriented table.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    columns: Vec<Column>,
    nrows: usize,
}

impl Frame {
    /// Builds a frame from equal-length columns.
    pub fn new(columns: Vec<Column>) -> Result<Self, DataError> {
        let nrows = columns.first().map(Column::len).unwrap_or(0);
        if columns.iter().any(|c| c.len() != nrows) {
            return Err(DataError::Malformed("columns have unequal lengths".into()));
        }
        Ok(Self { columns, nrows })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Concatenates frames row-wise (pandas `pd.concat(axis=0)`), unifying
    /// dtypes column-by-column. This is the step the paper's optimized
    /// loader performs once over large chunks, and the pandas-default path
    /// effectively performs per small chunk.
    pub fn concat(frames: Vec<Frame>) -> Result<Frame, DataError> {
        let mut iter = frames.into_iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return Frame::new(Vec::new()),
        };
        let mut columns = first.columns;
        let mut nrows = first.nrows;
        for frame in iter {
            if frame.ncols() != columns.len() {
                return Err(DataError::Malformed(format!(
                    "cannot concat frames with {} vs {} columns",
                    columns.len(),
                    frame.ncols()
                )));
            }
            nrows += frame.nrows;
            let taken = std::mem::take(&mut columns);
            columns = taken
                .into_iter()
                .zip(frame.columns)
                .map(|(a, b)| a.extend(b))
                .collect();
        }
        Ok(Frame { columns, nrows })
    }

    /// Flattens to a dense row-major `f32` matrix `(nrows × ncols)` —
    /// the hand-off to model training.
    pub fn to_f32_matrix(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.nrows * self.ncols());
        for r in 0..self.nrows {
            for c in &self.columns {
                out.push(c.f32_at(r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_cast_int_to_float() {
        let c = Column::Int64(vec![1, 2]).cast(Dtype::Float64);
        assert_eq!(c, Column::Float64(vec![1.0, 2.0]));
    }

    #[test]
    fn column_cast_str_to_float_with_nan() {
        let c = Column::Str(vec!["1.5".into(), "oops".into()]).cast(Dtype::Float64);
        match c {
            Column::Float64(v) => {
                assert_eq!(v[0], 1.5);
                assert!(v[1].is_nan());
            }
            _ => panic!("wrong dtype"),
        }
    }

    #[test]
    fn extend_promotes_dtypes() {
        let a = Column::Int64(vec![1, 2]);
        let b = Column::Float64(vec![0.5]);
        let c = a.extend(b);
        assert_eq!(c.dtype(), Dtype::Float64);
        assert_eq!(c.len(), 3);
        assert_eq!(c.f32_at(2), 0.5);
    }

    #[test]
    fn frame_rejects_ragged_columns() {
        let r = Frame::new(vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])]);
        assert!(r.is_err());
    }

    #[test]
    fn concat_unifies_and_counts() {
        let a = Frame::new(vec![Column::Int64(vec![1, 2])]).unwrap();
        let b = Frame::new(vec![Column::Float64(vec![3.5])]).unwrap();
        let c = Frame::concat(vec![a, b]).unwrap();
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.columns()[0].dtype(), Dtype::Float64);
    }

    #[test]
    fn concat_rejects_mismatched_width() {
        let a = Frame::new(vec![Column::Int64(vec![1])]).unwrap();
        let b = Frame::new(vec![Column::Int64(vec![1]), Column::Int64(vec![2])]).unwrap();
        assert!(Frame::concat(vec![a, b]).is_err());
    }

    #[test]
    fn concat_empty_list_is_empty_frame() {
        let f = Frame::concat(vec![]).unwrap();
        assert_eq!(f.nrows(), 0);
        assert_eq!(f.ncols(), 0);
    }

    #[test]
    fn to_f32_matrix_is_row_major() {
        let f = Frame::new(vec![
            Column::Int64(vec![1, 2]),
            Column::Float64(vec![10.0, 20.0]),
        ])
        .unwrap();
        assert_eq!(f.to_f32_matrix(), vec![1.0, 10.0, 2.0, 20.0]);
    }
}
