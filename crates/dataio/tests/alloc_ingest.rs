//! Proves the turbo parse hot path is allocation-free in steady state:
//! once the structural index and the column storage are warm (capacity
//! established by the first pass), re-scanning and re-parsing a buffer of
//! the same shape performs **zero** heap allocations — no per-row `Vec`s,
//! no token vectors, no fragment frames.
//!
//! Mirrors `dlframe/tests/alloc_hot_path.rs`: a counting global allocator
//! wraps `System`, a warm-up phase establishes capacity, then the counter
//! must not move across repeated steady-state passes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation-path call (alloc / alloc_zeroed / realloc) and
/// delegates to the system allocator. Deallocations are free and uncounted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use dataio::csv::turbo::{parse_into, scan, StructuralIndex};

/// A numeric CSV buffer shaped like a (shrunken) NT3 slice: `rows` records
/// of 24 mixed int/decimal/scientific fields.
fn csv_buffer(rows: usize) -> Vec<u8> {
    let mut text = String::new();
    for r in 0..rows {
        for c in 0..24 {
            if c > 0 {
                text.push(',');
            }
            match (r + c) % 3 {
                0 => text.push_str(&format!("{}", r * 31 + c)),
                1 => text.push_str(&format!("{}.{:03}", c, (r * 7 + c) % 1000)),
                _ => text.push_str(&format!("{}e-{}", r % 97 + 1, c % 9 + 1)),
            }
        }
        text.push('\n');
    }
    text.into_bytes()
}

#[test]
fn steady_state_turbo_parse_allocates_nothing() {
    let bytes = csv_buffer(600);
    let mut idx = StructuralIndex::new();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    // Warm-up: establishes the index and column capacities.
    scan(&bytes, &mut idx).unwrap();
    assert!(parse_into(&bytes, &idx, &mut columns, 1));
    assert_eq!(idx.rows(), 600);
    assert_eq!(columns.len(), 24);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5 {
        scan(&bytes, &mut idx).unwrap();
        assert!(parse_into(&bytes, &idx, &mut columns, 1));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state scan+parse performed {} heap allocations",
        after - before
    );
    // The accounting also proves the passes actually parsed.
    assert_eq!(columns[0].len(), 600);
    assert_eq!(columns[0][0], 0.0);
    assert_eq!(columns[3][0], 3.0);
    assert_eq!(columns[1][0], 1.001);
}

/// Multi-threaded parses pay a constant per-call cost (scoped thread
/// spawns), never a per-row cost: octupling the row count must not grow
/// the allocation count of a warm parse.
#[test]
fn parallel_parse_allocations_are_row_count_independent() {
    let count_warm_passes = |rows: usize, passes: usize| -> u64 {
        let bytes = csv_buffer(rows);
        let mut idx = StructuralIndex::new();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        scan(&bytes, &mut idx).unwrap();
        assert!(parse_into(&bytes, &idx, &mut columns, 4));
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..passes {
            scan(&bytes, &mut idx).unwrap();
            assert!(parse_into(&bytes, &idx, &mut columns, 4));
        }
        ALLOCS.load(Ordering::Relaxed) - before
    };
    let small = count_warm_passes(500, 4);
    let big = count_warm_passes(4000, 4);
    // 8x the rows: identical thread-spawn bookkeeping, zero per-row cost.
    // The margin absorbs allocator-internal variance in spawn bookkeeping.
    assert!(
        big <= small + 64,
        "allocations grew with row count: {small} at 500 rows vs {big} at 4000 rows"
    );
}
