//! Property test: `TurboParallel` materializes a frame **bit-identical** to
//! `ChunkedLowMemory` and `PandasDefault` across random file geometries and
//! thread counts {1, 2, 4}, including CRLF line endings, files without a
//! trailing newline, and interleaved blank lines.
//!
//! The generator guarantees at least one fractional value per column so the
//! pandas-default path infers Float64 everywhere (all-integer columns would
//! legitimately type as Int64 there while the numeric fast paths produce
//! Float64 — a dtype difference, not a value difference). Comparison is by
//! `f64::to_bits`, the strictest possible equality.

use dataio::csv::{read_csv, read_turbo_with_threads, ReadStrategy};
use dataio::{Column, Frame};
use xrng::RandomSource;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("candle_repro_turbo_equiv");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One random token: plain ints, fixed-point decimals, scientific notation,
/// and negatives — the formats CANDLE matrices actually contain.
fn random_token(rng: &mut impl RandomSource, force_fractional: bool) -> String {
    let shape = if force_fractional {
        1 + rng.next_index(2)
    } else {
        rng.next_index(4)
    };
    let sign = if rng.next_index(4) == 0 { "-" } else { "" };
    match shape {
        0 => format!("{sign}{}", rng.next_index(100_000)),
        1 => format!("{sign}{}.{:02}25", rng.next_index(1000), rng.next_index(100)),
        2 => format!("{sign}{}.{}e-{}", rng.next_index(10), 1 + rng.next_index(9), 1 + rng.next_index(12)),
        _ => format!("{sign}{}e{}", 1 + rng.next_index(999), rng.next_index(15)),
    }
}

/// Renders a random rectangular CSV and reports its (rows, cols). Geometry
/// quirks are drawn per file: CRLF vs LF endings, blank lines sprinkled
/// between records, and possibly no terminator on the final record.
fn random_csv(rng: &mut impl RandomSource) -> (String, usize, usize) {
    let rows = 1 + rng.next_index(120);
    let cols = 1 + rng.next_index(12);
    let crlf = rng.next_index(2) == 0;
    let blank_lines = rng.next_index(3) == 0;
    let trailing_newline = rng.next_index(3) != 0;
    let ending = if crlf { "\r\n" } else { "\n" };
    // One guaranteed-fractional slot per column keeps every dtype Float64.
    let frac_rows: Vec<usize> = (0..cols).map(|_| rng.next_index(rows)).collect();
    let mut text = String::new();
    for r in 0..rows {
        if blank_lines && rng.next_index(5) == 0 {
            text.push_str(ending);
        }
        for (c, frac_row) in frac_rows.iter().enumerate() {
            if c > 0 {
                text.push(',');
            }
            text.push_str(&random_token(rng, *frac_row == r));
        }
        if r + 1 < rows || trailing_newline {
            text.push_str(ending);
        }
    }
    (text, rows, cols)
}

fn assert_bit_identical(a: &Frame, b: &Frame, ctx: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{ctx}: row count");
    assert_eq!(a.ncols(), b.ncols(), "{ctx}: col count");
    for (c, (ca, cb)) in a.columns().iter().zip(b.columns()).enumerate() {
        match (ca, cb) {
            (Column::Float64(va), Column::Float64(vb)) => {
                for (r, (x, y)) in va.iter().zip(vb).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{ctx}: col {c} row {r}: {x:?} vs {y:?}"
                    );
                }
            }
            _ => panic!("{ctx}: col {c} dtypes {:?} vs {:?}", ca.dtype(), cb.dtype()),
        }
    }
}

#[test]
fn turbo_bit_identical_to_seed_strategies_across_geometries_and_threads() {
    let mut rng = xrng::seeded(0x7EB0_1D3A);
    for case in 0..24 {
        let (text, rows, cols) = random_csv(&mut rng);
        let path = tmpfile(&format!("equiv_{case}.csv"));
        std::fs::write(&path, &text).unwrap();

        let (chunked, _) = read_csv(&path, ReadStrategy::ChunkedLowMemory).unwrap();
        let (pandas, _) = read_csv(&path, ReadStrategy::PandasDefault).unwrap();
        assert_eq!((chunked.nrows(), chunked.ncols()), (rows, cols), "case {case}");
        assert_bit_identical(&chunked, &pandas, &format!("case {case}: pandas vs chunked"));

        for threads in [1, 2, 4] {
            let (turbo, stats) = read_turbo_with_threads(&path, threads).unwrap();
            let ctx = format!("case {case} ({rows}x{cols}) threads {threads}");
            assert_bit_identical(&turbo, &chunked, &ctx);
            assert_eq!(stats.rows, rows, "{ctx}");
            assert_eq!(stats.cols, cols, "{ctx}");
            assert!(stats.ingest.is_some(), "{ctx}: phases reported");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// The hard-coded corner geometries, pinned individually so a failure names
/// the quirk: CRLF, no trailing newline, blank lines, single cell, and a
/// single row wide enough to cross many SWAR words.
#[test]
fn turbo_corner_geometries_match_chunked() {
    let cases: &[(&str, &str)] = &[
        ("crlf", "1.5,2\r\n3,4.25\r\n"),
        ("no_trailing_newline", "1.5,2\n3,4.25"),
        ("crlf_no_trailing_newline", "1.5,2\r\n3,4.25"),
        ("blank_lines", "\n1.5,2\n\n\n3,4.25\n\n"),
        ("blank_crlf_lines", "\r\n1.5,2\r\n\r\n3,4.25\r\n"),
        ("single_cell", "7.5"),
        ("single_wide_row", "1.5,2.5,3.5,4.5,5.5,6.5,7.5,8.5,9.5,10.5,11.5,12.5\n"),
    ];
    for (name, text) in cases {
        let path = tmpfile(&format!("corner_{name}.csv"));
        std::fs::write(&path, text).unwrap();
        let (chunked, _) = read_csv(&path, ReadStrategy::ChunkedLowMemory).unwrap();
        for threads in [1, 2, 4] {
            let (turbo, _) = read_turbo_with_threads(&path, threads).unwrap();
            assert_bit_identical(&turbo, &chunked, &format!("{name} threads {threads}"));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Mixed-dtype files take the fallback: the result must equal the chunked
/// strategy's fallback exactly (same typed parser, same chunking).
#[test]
fn turbo_mixed_dtype_fallback_equals_chunked() {
    let path = tmpfile("fallback.csv");
    std::fs::write(&path, "id,label,score\n1,tumor,2.5\n2,normal,3.5\n").unwrap();
    let (chunked, _) = read_csv(&path, ReadStrategy::ChunkedLowMemory).unwrap();
    for threads in [1, 2, 4] {
        let (turbo, _) = read_turbo_with_threads(&path, threads).unwrap();
        assert_eq!(turbo, chunked, "threads {threads}");
    }
    std::fs::remove_file(&path).unwrap();
}
