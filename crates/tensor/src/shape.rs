//! Tensor shapes and row-major index math.

/// A tensor shape: an ordered list of dimension extents.
///
/// Rank 0 (scalar) through rank 3 are used in the workspace; the type
/// supports any rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: the flat-index step for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Interprets the shape as `(rows, cols)`.
    ///
    /// # Panics
    /// Panics unless the rank is exactly 2.
    pub fn as_2d(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.dims[0], self.dims[1])
    }

    /// Interprets the shape as `(batch, steps, channels)`.
    ///
    /// # Panics
    /// Panics unless the rank is exactly 3.
    pub fn as_3d(&self) -> (usize, usize, usize) {
        assert_eq!(self.rank(), 3, "expected rank-3 shape, got {self}");
        (self.dims[0], self.dims[1], self.dims[2])
    }

    /// Flat row-major index of a multi-index.
    ///
    /// # Panics
    /// Panics if the multi-index rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        for ((&i, &d), s) in idx.iter().zip(&self.dims).zip(self.strides()) {
            assert!(i < d, "coordinate {i} out of extent {d}");
            flat += i * s;
        }
        flat
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<usize> for Shape {
    fn from(dim: usize) -> Self {
        Shape::new(vec![dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 24);
        assert_eq!(Shape::new(vec![]).volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_matches_manual() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn flat_index_bounds_checked() {
        Shape::from([2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn as_2d_and_3d() {
        assert_eq!(Shape::from([3, 5]).as_2d(), (3, 5));
        assert_eq!(Shape::from([2, 3, 4]).as_3d(), (2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "expected rank-2")]
    fn as_2d_wrong_rank_panics() {
        Shape::from([2, 3, 4]).as_2d();
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2×3)");
    }

    proptest! {
        #[test]
        fn flat_index_is_bijective(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let s = Shape::new(dims.clone());
            let strides = s.strides();
            // Decompose every flat index into a multi-index and check that
            // flat_index inverts the decomposition.
            for flat in 0..s.volume() {
                let mut rem = flat;
                let idx: Vec<usize> = strides.iter().map(|&st| {
                    let coord = rem / st;
                    rem %= st;
                    coord
                }).collect();
                prop_assert_eq!(s.flat_index(&idx), flat);
            }
        }
    }
}
