//! Tensor shapes and row-major index math.

/// Maximum rank a [`Shape`] can hold.
///
/// The workspace uses rank 0 (scalar) through rank 3; 4 leaves headroom.
pub const MAX_RANK: usize = 4;

/// A tensor shape: an ordered list of dimension extents.
///
/// Extents are stored inline (no heap allocation), so cloning a shape —
/// which the training hot path does for every cached activation — is a
/// plain memcpy. Dimensions beyond `rank` are kept at zero so the derived
/// `Eq`/`Hash` stay consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from dimensions.
    ///
    /// # Panics
    /// Panics if more than [`MAX_RANK`] dimensions are given.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "Shape supports rank <= {MAX_RANK}, got {}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn volume(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides: the flat-index step for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Interprets the shape as `(rows, cols)`.
    ///
    /// # Panics
    /// Panics unless the rank is exactly 2.
    pub fn as_2d(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.dims[0], self.dims[1])
    }

    /// Interprets the shape as `(batch, steps, channels)`.
    ///
    /// # Panics
    /// Panics unless the rank is exactly 3.
    pub fn as_3d(&self) -> (usize, usize, usize) {
        assert_eq!(self.rank(), 3, "expected rank-3 shape, got {self}");
        (self.dims[0], self.dims[1], self.dims[2])
    }

    /// Flat row-major index of a multi-index.
    ///
    /// # Panics
    /// Panics if the multi-index rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        for ((&i, &d), s) in idx.iter().zip(&self.dims).zip(self.strides()) {
            assert!(i < d, "coordinate {i} out of extent {d}");
            flat += i * s;
        }
        flat
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl From<usize> for Shape {
    fn from(dim: usize) -> Self {
        Shape::new(&[dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 24);
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_matches_manual() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn flat_index_bounds_checked() {
        Shape::from([2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn as_2d_and_3d() {
        assert_eq!(Shape::from([3, 5]).as_2d(), (3, 5));
        assert_eq!(Shape::from([2, 3, 4]).as_3d(), (2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "expected rank-2")]
    fn as_2d_wrong_rank_panics() {
        Shape::from([2, 3, 4]).as_2d();
    }

    #[test]
    #[should_panic(expected = "rank <= 4")]
    fn over_max_rank_panics() {
        Shape::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn padded_dims_do_not_affect_equality() {
        assert_eq!(Shape::from([2, 3]), Shape::from(vec![2, 3]));
        assert_ne!(Shape::from([2, 3]), Shape::from([2, 3, 0]));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2×3)");
    }

    proptest! {
        #[test]
        fn flat_index_is_bijective(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let s = Shape::new(&dims);
            let strides = s.strides();
            // Decompose every flat index into a multi-index and check that
            // flat_index inverts the decomposition.
            for flat in 0..s.volume() {
                let mut rem = flat;
                let idx: Vec<usize> = strides.iter().map(|&st| {
                    let coord = rem / st;
                    rem %= st;
                    coord
                }).collect();
                prop_assert_eq!(s.flat_index(&idx), flat);
            }
        }
    }
}
