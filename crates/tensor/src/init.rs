//! Weight initializers.
//!
//! The CANDLE benchmarks use Keras defaults: Glorot (Xavier) uniform for
//! dense and convolutional kernels, zeros for biases. He-normal is provided
//! for the ReLU-heavy NT3 variant experiments.

use crate::Tensor;
use xrng::{Rng, Uniform};

/// A weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initializer {
    /// All zeros (biases).
    Zeros,
    /// Glorot/Xavier uniform: `U(-limit, limit)`, `limit = sqrt(6/(fan_in+fan_out))`.
    GlorotUniform,
    /// He normal: `N(0, sqrt(2/fan_in))`.
    HeNormal,
}

impl Initializer {
    /// Creates a tensor of the given shape where `fan_in`/`fan_out` describe
    /// the connectivity of the layer the weights belong to.
    pub fn init(
        self,
        shape: impl Into<crate::Shape>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut Rng,
    ) -> Tensor {
        match self {
            Initializer::Zeros => Tensor::zeros(shape),
            Initializer::GlorotUniform => glorot_uniform(shape, fan_in, fan_out, rng),
            Initializer::HeNormal => he_normal(shape, fan_in, rng),
        }
    }
}

/// Glorot (Xavier) uniform initialization.
pub fn glorot_uniform(
    shape: impl Into<crate::Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut Rng,
) -> Tensor {
    let denom = (fan_in + fan_out).max(1) as f64;
    let limit = (6.0 / denom).sqrt();
    let dist = Uniform::new(-limit, limit);
    Tensor::from_fn(shape, |_| dist.sample_f32(rng))
}

/// He normal initialization (suited to ReLU activations).
pub fn he_normal(shape: impl Into<crate::Shape>, fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let mut dist = xrng::Normal::new(0.0, std);
    Tensor::from_fn(shape, |_| dist.sample_f32(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = xrng::seeded(1);
        let t = glorot_uniform([100, 50], 100, 50, &mut rng);
        let limit = (6.0f64 / 150.0).sqrt() as f32;
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
        // Mean near zero.
        assert!(t.mean().abs() < limit as f64 * 0.05);
    }

    #[test]
    fn he_normal_std_matches() {
        let mut rng = xrng::seeded(2);
        let t = he_normal([200, 100], 200, &mut rng);
        let var = t.sum_squares() / t.len() as f64;
        let expect = 2.0 / 200.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn zeros_initializer() {
        let mut rng = xrng::seeded(3);
        let t = Initializer::Zeros.init([10], 10, 10, &mut rng);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn initializers_are_seed_deterministic() {
        let a = glorot_uniform([4, 4], 4, 4, &mut xrng::seeded(7));
        let b = glorot_uniform([4, 4], 4, 4, &mut xrng::seeded(7));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn zero_fans_do_not_divide_by_zero() {
        let mut rng = xrng::seeded(8);
        let t = glorot_uniform([2, 2], 0, 0, &mut rng);
        assert!(t.data().iter().all(|x| x.is_finite()));
        let h = he_normal([2, 2], 0, &mut rng);
        assert!(h.data().iter().all(|x| x.is_finite()));
    }
}
