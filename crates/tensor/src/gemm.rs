//! Blocked GEMM engine: the single kernel behind every matrix product.
//!
//! The three ad-hoc kernels that used to live in `matmul.rs` (`A·B`,
//! `Aᵀ·B`, `A·Bᵀ`) are expressed here as *packing modes* of one engine:
//!
//! * macro-loops tile the output into `KC`-deep, `NC`-wide blocks whose
//!   packed B slab stays L2-resident;
//! * each block is driven row-panel by row-panel through a register-blocked
//!   `MR×NR` micro-kernel over a stack-packed A panel;
//! * transposition is handled entirely in the pack routines, so the
//!   micro-kernel — the only hot loop — is branch-free and identical for
//!   all three modes (the old `aval == 0.0` skip that poisoned
//!   autovectorization is gone).
//!
//! # Determinism
//!
//! Every output element keeps exactly one accumulator. `KC` blocks advance
//! sequentially and the micro-kernel walks the reduction index upward, so
//! each `C[i][j]` is the strictly left-to-right sum over `l` — the same
//! order for every thread count and every batch composition. Threads only
//! split whole row panels (disjoint output rows), so results are
//! bit-identical across thread counts, which `tests/serving.rs` and
//! `tests/resilience.rs` rely on.
//!
//! # Epilogue
//!
//! `C = act(A·B + bias)` is fused: after the final `KC` block each tile
//! gets bias and activation applied in place, saving two full passes over
//! the output in `Dense::compute`.

use crate::{Shape, Tensor, TensorError};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Micro-kernel rows (register-blocked output rows per panel).
pub const MR: usize = 8;
/// Micro-kernel columns (one AVX2 vector of f32).
pub const NR: usize = 8;
/// Reduction-dimension block: the packed A panel is `MR×KC` (8 KiB, L1).
const KC: usize = 256;
/// Column block: the packed B slab is at most `KC×NC` (512 KiB, L2).
const NC: usize = 512;
/// Don't spawn a thread for less than ~2 MFLOP of work.
const MIN_FLOPS_PER_THREAD: usize = 2_000_000;
/// Recycled-buffer pool cap; beyond this, retired buffers are dropped.
const MAX_POOL: usize = 32;

/// Number of worker threads used by the kernels, resolved once.
pub(crate) fn kernel_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(parx::default_threads)
}

/// How the raw operand slices are laid out relative to the product
/// `C(m×n) = op(A)(m×k) · op(B)(k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// `A` stored `(m×k)`, `B` stored `(k×n)` — forward activations.
    Ab,
    /// `A` stored `(k×m)` (transposed access), `B` stored `(k×n)` —
    /// weight gradients `xᵀ·δ`.
    AtB,
    /// `A` stored `(m×k)`, `B` stored `(n×k)` (transposed access) —
    /// input gradients `δ·Wᵀ`.
    ABt,
}

impl GemmMode {
    #[inline]
    fn trans_a(self) -> bool {
        matches!(self, GemmMode::AtB)
    }

    #[inline]
    fn trans_b(self) -> bool {
        matches!(self, GemmMode::ABt)
    }

    /// Derives `(m, k, n)` from rank-2 operand shapes, or `None` on a
    /// reduction-dimension mismatch.
    pub fn dims(self, a: &Shape, b: &Shape) -> Option<(usize, usize, usize)> {
        let (a0, a1) = a.as_2d();
        let (b0, b1) = b.as_2d();
        let (m, ka) = if self.trans_a() { (a1, a0) } else { (a0, a1) };
        let (kb, n) = if self.trans_b() { (b1, b0) } else { (b0, b1) };
        (ka == kb).then_some((m, ka, n))
    }
}

/// Activation functions the epilogue can fuse into the output pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusedAct {
    /// Identity.
    #[default]
    Linear,
    /// `max(x, 0)`.
    Relu,
    /// Numerically stable logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl FusedAct {
    /// Applies the activation to one value. `dlframe` delegates here so
    /// fused and unfused paths are bit-identical.
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            FusedAct::Linear => x,
            FusedAct::Relu => x.max(0.0),
            FusedAct::Sigmoid => sigmoid(x),
            FusedAct::Tanh => x.tanh(),
        }
    }
}

/// Stable logistic sigmoid: never exponentiates a large positive value.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Fused output transform `C = act(C + bias)`, applied tile by tile after
/// the final reduction block.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-column bias added before the activation.
    pub bias: Option<&'a [f32]>,
    /// Activation applied last.
    pub act: FusedAct,
}

impl Epilogue<'_> {
    /// No bias, no activation: a plain matrix product.
    pub const NONE: Epilogue<'static> = Epilogue {
        bias: None,
        act: FusedAct::Linear,
    };

    #[inline]
    fn is_noop(&self) -> bool {
        self.bias.is_none() && self.act == FusedAct::Linear
    }
}

/// Reusable scratch memory for the kernels and the training hot path.
///
/// Holds the GEMM packing slab, the im2col/col-grad scratch for Conv1D,
/// the per-block partial accumulators of the deterministic weight-grad
/// reduction, and a pool of retired `Tensor` buffers that
/// [`Workspace::alloc`] hands back out — so a warmed-up training step
/// performs no heap allocation.
#[derive(Debug, Default)]
pub struct Workspace {
    pack_b: Vec<f32>,
    pub(crate) im2col: Vec<f32>,
    pub(crate) colgrad: Vec<f32>,
    pub(crate) partials: Vec<f32>,
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a zero-filled tensor of `shape`, reusing a pooled buffer
    /// when one with enough capacity exists.
    pub fn alloc(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let len = shape.volume();
        let mut buf = self.grab(len);
        buf.clear();
        buf.resize(len, 0.0);
        Tensor::from_vec(shape, buf).expect("buffer length matches shape volume")
    }

    /// Returns a copy of `src` backed by a pooled buffer.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.grab(src.len());
        buf.clear();
        buf.extend_from_slice(src.data());
        Tensor::from_vec(src.shape().clone(), buf).expect("buffer length matches shape volume")
    }

    /// Retires a tensor's buffer into the pool for later `alloc` calls.
    pub fn recycle(&mut self, t: Tensor) {
        let v = t.into_vec();
        if v.capacity() > 0 && self.pool.len() < MAX_POOL {
            self.pool.push(v);
        }
    }

    fn grab(&mut self, len: usize) -> Vec<f32> {
        // Best fit: the smallest pooled buffer that holds `len`, breaking
        // ties toward the most recently recycled (cache-warm) one. Training
        // replays the same multiset of sizes every batch, so after one warm
        // batch each request finds an exact-size buffer and nothing is ever
        // grown again — last-fit would let a large buffer serve a small
        // request and force a reallocation later in the same batch.
        let mut best: Option<usize> = None;
        let mut best_cap = usize::MAX;
        for (i, v) in self.pool.iter().enumerate() {
            let cap = v.capacity();
            if cap >= len && cap <= best_cap {
                best = Some(i);
                best_cap = cap;
            }
        }
        match best {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's scratch [`Workspace`].
///
/// Used by the drop-in kernel wrappers (`matmul`, `conv1d_forward`, …) so
/// callers without a threaded workspace still get buffer reuse. Re-entrant
/// calls fall back to a fresh workspace instead of panicking.
pub fn with_scratch<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

/// `C = epilogue(op(A)·op(B))` over raw row-major slices.
///
/// `threads == 0` means "use the default kernel thread count". The result
/// is bit-identical for every `threads` value (see module docs).
///
/// # Panics
/// Panics if a slice length disagrees with `(m, k, n)` or a bias is not
/// `n` long.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slice(
    mode: GemmMode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    epilogue: &Epilogue,
    threads: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), m * k, "gemm: A length != m*k");
    assert_eq!(b.len(), k * n, "gemm: B length != k*n");
    assert_eq!(c.len(), m * n, "gemm: C length != m*n");
    if let Some(bias) = epilogue.bias {
        assert_eq!(bias.len(), n, "gemm: bias length != n");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: C is the epilogue of zero.
        for row in c.chunks_exact_mut(n) {
            for (j, v) in row.iter_mut().enumerate() {
                let z = epilogue.bias.map_or(0.0, |bias| bias[j]);
                *v = epilogue.act.apply(z);
            }
        }
        return;
    }

    let threads = if threads == 0 {
        kernel_threads()
    } else {
        threads
    };
    let flops = 2usize
        .saturating_mul(m)
        .saturating_mul(k)
        .saturating_mul(n);
    let t = threads.min((flops / MIN_FLOPS_PER_THREAD).max(1));
    let npanels = m.div_ceil(MR);
    let mut bpack = std::mem::take(&mut ws.pack_b);

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nstrips = nc.div_ceil(NR);
        if bpack.len() < nstrips * KC * NR {
            bpack.resize(nstrips * KC * NR, 0.0);
        }
        for (pci, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            pack_b(mode, b, k, n, pc, kc, jc, nc, &mut bpack);
            let first = pci == 0;
            let last = pc + kc == k;
            let cbase = RawBase(c.as_mut_ptr() as usize);
            let run = |chunk: parx::Chunk| {
                for panel in chunk.start..chunk.end {
                    let i0 = panel * MR;
                    let job = PanelJob {
                        mode,
                        a,
                        m,
                        k,
                        n,
                        i0,
                        mr: MR.min(m - i0),
                        pc,
                        kc,
                        jc,
                        nc,
                        bpack: &bpack,
                        cbase: cbase.0,
                        first,
                        last,
                    };
                    run_row_panel(job, epilogue);
                }
            };
            if t == 1 {
                // Allocation-free sequential fast path.
                run(parx::Chunk {
                    index: 0,
                    start: 0,
                    end: npanels,
                });
            } else {
                parx::parallel_for_grained(npanels, t, 1, run);
            }
        }
    }
    ws.pack_b = bpack;
}

/// `C = epilogue(op(A)·op(B))` for rank-2 tensors, writing into `c`.
///
/// `c` must already hold `m*n` elements; its shape is left untouched so
/// callers can keep e.g. a rank-3 conv weight-gradient tensor.
pub fn gemm_into(
    mode: GemmMode,
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
    epilogue: &Epilogue,
    ws: &mut Workspace,
) -> Result<(), TensorError> {
    gemm_into_with_threads(mode, a, b, c, epilogue, 0, ws)
}

/// [`gemm_into`] with an explicit thread count (0 = default). Exists so
/// tests can pin thread counts and prove bit-identical results.
pub fn gemm_into_with_threads(
    mode: GemmMode,
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
    epilogue: &Epilogue,
    threads: usize,
    ws: &mut Workspace,
) -> Result<(), TensorError> {
    let (m, k, n) = mode
        .dims(a.shape(), b.shape())
        .ok_or_else(|| TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        })?;
    if c.len() != m * n {
        return Err(TensorError::LengthMismatch {
            expected: m * n,
            actual: c.len(),
        });
    }
    gemm_slice(
        mode,
        a.data(),
        b.data(),
        m,
        k,
        n,
        c.data_mut(),
        epilogue,
        threads,
        ws,
    );
    Ok(())
}

/// One row panel's worth of work on one packed block: everything a worker
/// thread needs, bundled so the hot call stays register-friendly.
#[derive(Clone, Copy)]
struct PanelJob<'a> {
    mode: GemmMode,
    a: &'a [f32],
    m: usize,
    k: usize,
    n: usize,
    i0: usize,
    mr: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bpack: &'a [f32],
    cbase: usize,
    first: bool,
    last: bool,
}

/// Shares a mutable base pointer across scoped threads for disjoint-row
/// writes.
struct RawBase(usize);
unsafe impl Sync for RawBase {}

fn run_row_panel(job: PanelJob, epilogue: &Epilogue) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime detection. The AVX2 instantiation
            // executes the same scalar operations in the same order (no
            // FMA contraction, one accumulator per element), so its
            // results are bit-identical to the generic path.
            unsafe { row_panel_avx2(job, epilogue) };
            return;
        }
    }
    row_panel(job, epilogue, false);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_panel_avx2(job: PanelJob, epilogue: &Epilogue) {
    row_panel(job, epilogue, true);
}

/// Packs the panel's A rows, then drives the micro-kernel across every
/// `NR` strip of the current block, applying the epilogue on the last
/// reduction block.
///
/// `avx2` selects the intrinsics micro-kernel; the caller must have
/// verified CPU support. Both kernels perform the identical multiply and
/// add per element in the identical order, so the choice never changes a
/// single output bit.
#[inline(always)]
fn row_panel(job: PanelJob, epilogue: &Epilogue, avx2: bool) {
    let mut apack = [0.0f32; MR * KC];
    pack_a(
        job.mode, job.a, job.m, job.k, job.i0, job.mr, job.pc, job.kc, &mut apack,
    );
    let nstrips = job.nc.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = job.jc + s * NR;
        let nr = NR.min(job.nc - s * NR);
        let cptr = (job.cbase as *mut f32).wrapping_add(job.i0 * job.n + j0);
        // SAFETY: the (panel, strip) tile `[i0..i0+mr) × [j0..j0+nr)` is
        // written by exactly one thread (threads split whole panels), and
        // `cbase` points at an `m*n` allocation that outlives the scope.
        unsafe {
            #[cfg(target_arch = "x86_64")]
            let full = avx2 && nr == NR;
            #[cfg(target_arch = "x86_64")]
            if full {
                micro_tile_avx2(
                    job.kc,
                    &apack,
                    &job.bpack[s * KC * NR..],
                    cptr,
                    job.n,
                    job.mr,
                    job.first,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            let full = {
                let _ = avx2;
                false
            };
            if !full {
                micro_tile(
                    job.kc,
                    &apack,
                    &job.bpack[s * KC * NR..],
                    cptr,
                    job.n,
                    job.mr,
                    nr,
                    job.first,
                );
            }
            if job.last && !epilogue.is_noop() {
                apply_epilogue(cptr, job.n, job.mr, nr, j0, epilogue);
            }
        }
    }
}

/// The AVX2 micro-kernel for full-width (`nr == NR`) strips: one `ymm`
/// accumulator per live output row, one broadcast multiply and one add
/// per reduction step. Separate `vmulps`/`vaddps` (never FMA) keep every
/// lane's arithmetic — and therefore every output bit — identical to
/// [`micro_tile`]. Dispatches on `mr` so edge row-panels (e.g. NT3's
/// batch of 20 → panels of 8, 8, 4) stay vectorized too.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_tile_avx2(
    kc: usize,
    apack: &[f32; MR * KC],
    bstrip: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    first: bool,
) {
    match mr {
        8 => micro_tile_avx2_rows::<8>(kc, apack, bstrip, c, ldc, first),
        7 => micro_tile_avx2_rows::<7>(kc, apack, bstrip, c, ldc, first),
        6 => micro_tile_avx2_rows::<6>(kc, apack, bstrip, c, ldc, first),
        5 => micro_tile_avx2_rows::<5>(kc, apack, bstrip, c, ldc, first),
        4 => micro_tile_avx2_rows::<4>(kc, apack, bstrip, c, ldc, first),
        3 => micro_tile_avx2_rows::<3>(kc, apack, bstrip, c, ldc, first),
        2 => micro_tile_avx2_rows::<2>(kc, apack, bstrip, c, ldc, first),
        _ => micro_tile_avx2_rows::<1>(kc, apack, bstrip, c, ldc, first),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_tile_avx2_rows<const M: usize>(
    kc: usize,
    apack: &[f32; MR * KC],
    bstrip: &[f32],
    c: *mut f32,
    ldc: usize,
    first: bool,
) {
    use std::arch::x86_64::*;
    debug_assert!(bstrip.len() >= kc * NR);
    let mut acc = [_mm256_setzero_ps(); M];
    if !first {
        for (r, v) in acc.iter_mut().enumerate() {
            *v = _mm256_loadu_ps(c.add(r * ldc));
        }
    }
    let ap = apack.as_ptr();
    let bp = bstrip.as_ptr();
    for l in 0..kc {
        let bv = _mm256_loadu_ps(bp.add(l * NR));
        let arow = ap.add(l * MR);
        for (r, v) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*arow.add(r));
            *v = _mm256_add_ps(*v, _mm256_mul_ps(av, bv));
        }
    }
    for (r, v) in acc.iter().enumerate() {
        _mm256_storeu_ps(c.add(r * ldc), *v);
    }
}

/// The register-blocked micro-kernel: an `MR×NR` accumulator tile over a
/// packed A panel and one packed B strip.
///
/// On the first reduction block the accumulators start from zero (so `C`
/// may hold garbage from a recycled buffer); on later blocks the partial
/// `C` tile is loaded, extended in ascending `l`, and stored back —
/// preserving one strictly ordered sum per element. Padded panel rows and
/// strip columns are computed on zeros and never stored.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn micro_tile(
    kc: usize,
    apack: &[f32; MR * KC],
    bstrip: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            for (j, v) in row.iter_mut().enumerate().take(nr) {
                *v = *c.add(r * ldc + j);
            }
        }
    }
    for l in 0..kc {
        let arow = &apack[l * MR..l * MR + MR];
        let brow = &bstrip[l * NR..l * NR + NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (v, &bv) in row.iter_mut().zip(brow) {
                *v += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        for (j, &v) in row.iter().enumerate().take(nr) {
            *c.add(r * ldc + j) = v;
        }
    }
}

/// Applies `C = act(C + bias)` to one stored tile.
#[inline(always)]
unsafe fn apply_epilogue(
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
    j0: usize,
    epilogue: &Epilogue,
) {
    for r in 0..mr {
        // SAFETY: same tile ownership as the caller.
        let row = std::slice::from_raw_parts_mut(c.add(r * ldc), nr);
        if let Some(bias) = epilogue.bias {
            for (v, &bv) in row.iter_mut().zip(&bias[j0..j0 + nr]) {
                *v += bv;
            }
        }
        match epilogue.act {
            FusedAct::Linear => {}
            FusedAct::Relu => {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            FusedAct::Sigmoid => {
                for v in row.iter_mut() {
                    *v = sigmoid(*v);
                }
            }
            FusedAct::Tanh => {
                for v in row.iter_mut() {
                    *v = v.tanh();
                }
            }
        }
    }
}

/// Packs rows `i0..i0+mr` of `op(A)`, reduction slice `pc..pc+kc`, into
/// the `l`-major panel `apack[l*MR + r]`, zero-padding rows past `mr`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn pack_a(
    mode: GemmMode,
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    mr: usize,
    pc: usize,
    kc: usize,
    apack: &mut [f32; MR * KC],
) {
    if mode.trans_a() {
        // A stored (k×m): panel rows are contiguous per reduction index.
        for l in 0..kc {
            let src = &a[(pc + l) * m + i0..][..mr];
            let dst = &mut apack[l * MR..l * MR + MR];
            dst[..mr].copy_from_slice(src);
            dst[mr..].fill(0.0);
        }
    } else {
        // A stored (m×k): transpose row-by-row into the panel.
        for r in 0..MR {
            if r < mr {
                let src = &a[(i0 + r) * k + pc..][..kc];
                for (l, &v) in src.iter().enumerate() {
                    apack[l * MR + r] = v;
                }
            } else {
                for l in 0..kc {
                    apack[l * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs the `op(B)` block `[pc..pc+kc) × [jc..jc+nc)` into `NR`-wide,
/// `l`-major strips at a fixed `KC*NR` stride, zero-padding edge columns.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn pack_b(
    mode: GemmMode,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bpack: &mut [f32],
) {
    let nstrips = nc.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = jc + s * NR;
        let w = NR.min(nc - s * NR);
        let strip = &mut bpack[s * KC * NR..];
        if mode.trans_b() {
            // B stored (n×k): each output column is a contiguous B row.
            for jj in 0..NR {
                if jj < w {
                    let src = &b[(j0 + jj) * k + pc..][..kc];
                    for (l, &v) in src.iter().enumerate() {
                        strip[l * NR + jj] = v;
                    }
                } else {
                    for l in 0..kc {
                        strip[l * NR + jj] = 0.0;
                    }
                }
            }
        } else {
            // B stored (k×n): copy row slices per reduction index.
            for l in 0..kc {
                let src = &b[(pc + l) * n + j0..][..w];
                let dst = &mut strip[l * NR..l * NR + NR];
                dst[..w].copy_from_slice(src);
                dst[w..].fill(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xrng::RandomSource;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = xrng::seeded(seed);
        (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
    }

    /// Plain triple-loop reference for `op(A)·op(B)` plus epilogue.
    fn naive(
        mode: GemmMode,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ep: &Epilogue,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    let av = if mode.trans_a() {
                        a[l * m + i]
                    } else {
                        a[i * k + l]
                    };
                    let bv = if mode.trans_b() {
                        b[j * k + l]
                    } else {
                        b[l * n + j]
                    };
                    acc += av * bv;
                }
                if let Some(bias) = ep.bias {
                    acc += bias[j];
                }
                c[i * n + j] = ep.act.apply(acc);
            }
        }
        c
    }

    fn run(
        mode: GemmMode,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ep: &Epilogue,
        threads: usize,
    ) -> Vec<f32> {
        // Seed C with garbage to prove the first-block path ignores it.
        let mut c = vec![f32::NAN; m * n];
        let mut ws = Workspace::new();
        gemm_slice(mode, a, b, m, k, n, &mut c, ep, threads, &mut ws);
        c
    }

    const MODES: [GemmMode; 3] = [GemmMode::Ab, GemmMode::AtB, GemmMode::ABt];
    const ACTS: [FusedAct; 4] = [
        FusedAct::Linear,
        FusedAct::Relu,
        FusedAct::Sigmoid,
        FusedAct::Tanh,
    ];

    #[test]
    fn matches_naive_across_modes_and_edges() {
        // Cross panel/strip/block boundaries: MR/NR are 8, KC is 256.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (9, 300, 17),
            (16, 257, 9),
            (33, 64, 40),
        ] {
            for mode in MODES {
                let a = rand_vec(m * k, 11 + m as u64);
                let b = rand_vec(k * n, 23 + n as u64);
                let got = run(mode, &a, &b, m, k, n, &Epilogue::NONE, 1);
                let want = naive(mode, &a, &b, m, k, n, &Epilogue::NONE);
                for (x, y) in got.iter().zip(&want) {
                    assert!((x - y).abs() < 1e-4, "{mode:?} {m}x{k}x{n}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn fused_epilogue_matches_naive() {
        let (m, k, n) = (13, 70, 21);
        let a = rand_vec(m * k, 5);
        let b = rand_vec(k * n, 6);
        let bias = rand_vec(n, 7);
        for act in ACTS {
            let ep = Epilogue {
                bias: Some(&bias),
                act,
            };
            let got = run(GemmMode::Ab, &a, &b, m, k, n, &ep, 1);
            let want = naive(GemmMode::Ab, &a, &b, m, k, n, &ep);
            for (x, y) in got.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{act:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn single_row_result_is_independent_of_batch_composition() {
        // Serving depends on this: a row computed in a batch of 40 must be
        // bit-identical to the same row computed alone.
        let (m, k, n) = (40, 96, 24);
        let a = rand_vec(m * k, 41);
        let b = rand_vec(k * n, 42);
        let bias = rand_vec(n, 43);
        let ep = Epilogue {
            bias: Some(&bias),
            act: FusedAct::Relu,
        };
        let full = run(GemmMode::Ab, &a, &b, m, k, n, &ep, 0);
        for i in [0usize, 7, 39] {
            let row = run(GemmMode::Ab, &a[i * k..(i + 1) * k], &b, 1, k, n, &ep, 0);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full[i * n..(i + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "row {i} drifted"
            );
        }
    }

    #[test]
    fn k_zero_applies_epilogue_of_zero() {
        let bias = vec![1.0f32, -2.0];
        let ep = Epilogue {
            bias: Some(&bias),
            act: FusedAct::Relu,
        };
        let got = run(GemmMode::Ab, &[], &[], 2, 0, 2, &ep, 1);
        assert_eq!(got, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gemm_into_validates_shapes() {
        let a = Tensor::from_fn([3, 4], |i| i as f32);
        let b = Tensor::from_fn([5, 2], |i| i as f32);
        let mut c = Tensor::zeros([3, 2]);
        let mut ws = Workspace::new();
        assert!(matches!(
            gemm_into(GemmMode::Ab, &a, &b, &mut c, &Epilogue::NONE, &mut ws),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let b = Tensor::from_fn([4, 2], |i| i as f32);
        let mut short = Tensor::zeros([3, 1]);
        assert!(matches!(
            gemm_into(GemmMode::Ab, &a, &b, &mut short, &Epilogue::NONE, &mut ws),
            Err(TensorError::LengthMismatch { .. })
        ));
        assert!(gemm_into(GemmMode::Ab, &a, &b, &mut c, &Epilogue::NONE, &mut ws).is_ok());
    }

    #[test]
    fn workspace_reuses_buffers() {
        let mut ws = Workspace::new();
        let t = ws.alloc([4, 4]);
        let ptr = t.data().as_ptr();
        ws.recycle(t);
        let t2 = ws.alloc([2, 8]);
        assert_eq!(t2.data().as_ptr(), ptr, "pooled buffer not reused");
        assert!(t2.data().iter().all(|&v| v == 0.0));
        let copy_src = Tensor::from_fn([3, 3], |i| i as f32);
        ws.recycle(t2);
        let copied = ws.alloc_copy(&copy_src);
        assert_eq!(copied.data(), copy_src.data());
        assert_eq!(copied.shape(), copy_src.shape());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite: bit-identical across thread counts {1, 2, 4} and
        /// within 1e-4 of the naive reference, for every pack mode and
        /// the fused bias+activation epilogue.
        #[test]
        fn bit_identical_across_thread_counts(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            // mode (3) × act (4) × bias on/off (2) folded into one index
            // to stay within proptest's strategy-tuple arity.
            cfg in 0usize..24,
            seed in 0u64..500,
        ) {
            let mode = MODES[cfg % 3];
            let act = ACTS[(cfg / 3) % 4];
            let with_bias = cfg / 12;
            let a = rand_vec(m * k, seed);
            let b = rand_vec(k * n, seed ^ 0xABCD);
            let bias = rand_vec(n, seed ^ 0x77);
            let ep = Epilogue { bias: (with_bias == 1).then_some(bias.as_slice()), act };
            let one = run(mode, &a, &b, m, k, n, &ep, 1);
            let two = run(mode, &a, &b, m, k, n, &ep, 2);
            let four = run(mode, &a, &b, m, k, n, &ep, 4);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&one), bits(&two));
            prop_assert_eq!(bits(&one), bits(&four));
            let want = naive(mode, &a, &b, m, k, n, &ep);
            for (x, y) in one.iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
            }
        }
    }
}
