//! Elementwise operations and reductions.
//!
//! These are methods on [`Tensor`] rather than free functions so call sites
//! in the training loop read like the Keras pseudocode they reproduce.

use crate::{Tensor, TensorError};

impl Tensor {
    /// Elementwise `self + other`.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise `self * other` (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign(other, |a, b| *a += b)
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign(other, |a, b| *a -= b)
    }

    /// In-place `self += scale * other` (axpy).
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign(other, |a, b| *a += scale * b)
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, factor: f32) {
        for x in self.data_mut() {
            *x *= factor;
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for x in out.data_mut() {
            *x = f(*x);
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data().iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements. Returns 0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Largest element. Returns negative infinity for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f64 {
        self.data().iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Adds a length-`cols` bias row vector to every row of a rank-2 tensor.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) -> Result<(), TensorError> {
        let (_, cols) = self.shape().as_2d();
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().clone(),
                right: bias.shape().clone(),
            });
        }
        let b = bias.data().to_vec();
        for row in self.data_mut().chunks_exact_mut(cols) {
            for (x, bv) in row.iter_mut().zip(&b) {
                *x += bv;
            }
        }
        Ok(())
    }

    /// Sums a rank-2 tensor over rows, producing a length-`cols` vector.
    /// This is the bias-gradient reduction.
    pub fn sum_rows(&self) -> Tensor {
        let (_, cols) = self.shape().as_2d();
        let mut out = Tensor::zeros([cols]);
        self.sum_rows_into(&mut out);
        out
    }

    /// Row-sum reduction into an existing length-`cols` tensor
    /// (allocation-free variant of [`Tensor::sum_rows`]).
    ///
    /// # Panics
    /// Panics if `out` does not have exactly `cols` elements.
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        let (_, cols) = self.shape().as_2d();
        assert_eq!(out.len(), cols, "sum_rows_into: output length mismatch");
        out.data_mut().fill(0.0);
        for row in self.data().chunks_exact(cols) {
            for (o, &x) in out.data_mut().iter_mut().zip(row) {
                *o += x;
            }
        }
    }

    /// Index of the largest element in each row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (_, cols) = self.shape().as_2d();
        self.data()
            .chunks_exact(cols)
            .map(|row| {
                let mut best = 0usize;
                for (i, &x) in row.iter().enumerate().skip(1) {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// In-place row-wise softmax (same math and evaluation order as
    /// [`Tensor::softmax_rows`], without the clone).
    pub fn softmax_rows_inplace(&mut self) {
        let (_, cols) = self.shape().as_2d();
        for row in self.data_mut().chunks_exact_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                denom += *x;
            }
            let inv = 1.0 / denom;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().clone(),
                right: other.shape().clone(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(self.shape().clone().dims().to_vec(), data)
    }

    fn zip_assign(&mut self, other: &Tensor, f: impl Fn(&mut f32, f32)) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().clone(),
                right: other.shape().clone(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            f(a, b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec([n], v).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0, 90.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![1.0, 2.0, 3.0]);
        assert!(a.add(&b).is_err());
        let mut c = a.clone();
        assert!(c.add_assign(&b).is_err());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(vec![1.0, 1.0]);
        a.axpy(0.5, &t(vec![2.0, 4.0])).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale(10.0);
        assert_eq!(a.data(), &[20.0, 30.0]);
    }

    #[test]
    fn reductions() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.sum_squares(), 30.0);
        assert_eq!(Tensor::zeros([0]).mean(), 0.0);
    }

    #[test]
    fn row_broadcast_and_sum_rows() {
        let mut m = Tensor::from_fn([2, 3], |i| i as f32);
        m.add_row_broadcast(&t(vec![10.0, 20.0, 30.0])).unwrap();
        assert_eq!(m.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
        let s = m.sum_rows();
        assert_eq!(s.data(), &[23.0, 45.0, 67.0]);
    }

    #[test]
    fn row_broadcast_validates_width() {
        let mut m = Tensor::zeros([2, 3]);
        assert!(m.add_row_broadcast(&t(vec![1.0, 2.0])).is_err());
    }

    #[test]
    fn argmax_rows_picks_first_max_on_ties() {
        let m = Tensor::from_vec([2, 3], vec![1.0, 5.0, 5.0, 0.0, -1.0, -2.0]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let m = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]).unwrap();
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow to NaN.
        assert!(s.data().iter().all(|x| x.is_finite()));
        // Monotonic: larger logits get larger probabilities.
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn map_roundtrip() {
        let a = t(vec![1.0, -2.0, 3.0]);
        let b = a.map(|x| x.abs());
        assert_eq!(b.data(), &[1.0, 2.0, 3.0]);
        let mut c = a.clone();
        c.map_inplace(|x| x * -1.0);
        assert_eq!(c.data(), &[-1.0, 2.0, -3.0]);
    }

    proptest! {
        #[test]
        fn add_commutes(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let a = t(v.clone());
            let b = t(v.iter().map(|x| x * 0.5 + 1.0).collect());
            let ab = a.add(&b).unwrap();
            let ba = b.add(&a).unwrap();
            prop_assert_eq!(ab.data(), ba.data());
        }

        #[test]
        fn softmax_rows_sum_to_one(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            use xrng::RandomSource;
            let mut rng = xrng::seeded(seed);
            let m = Tensor::from_fn([rows, cols], |_| rng.next_f32() * 20.0 - 10.0);
            let s = m.softmax_rows();
            for r in 0..rows {
                let sum: f32 = s.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }
}
