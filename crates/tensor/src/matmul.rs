//! Matrix products.
//!
//! Three drop-in entry points cover every need of dense-layer forward and
//! backward passes:
//!
//! * `matmul`      — `C = A·B`    (forward activations)
//! * `matmul_at_b` — `C = Aᵀ·B`   (weight gradients: xᵀ·δ)
//! * `matmul_a_bt` — `C = A·Bᵀ`   (input gradients: δ·Wᵀ)
//!
//! All three are thin wrappers over the blocked GEMM engine in
//! [`crate::gemm`]: one packed, register-blocked micro-kernel with the
//! transpositions expressed as packing modes. Each call runs on this
//! thread's scratch [`crate::Workspace`]; callers on the training hot path
//! should prefer [`crate::gemm_into`] with an owned workspace to reuse the
//! output buffer too.

use crate::gemm::{gemm_slice, with_scratch, Epilogue, GemmMode};
use crate::{Tensor, TensorError};

fn product(
    mode: GemmMode,
    a: &Tensor,
    b: &Tensor,
    m: usize,
    k: usize,
    n: usize,
) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros([m, n]);
    with_scratch(|ws| {
        gemm_slice(
            mode,
            a.data(),
            b.data(),
            m,
            k,
            n,
            c.data_mut(),
            &Epilogue::NONE,
            0,
            ws,
        );
    });
    Ok(c)
}

/// `C = A·B` for `A: (m×k)`, `B: (k×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_2d();
    let (kb, n) = b.shape().as_2d();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    product(GemmMode::Ab, a, b, m, ka, n)
}

/// `C = Aᵀ·B` for `A: (m×k)`, `B: (m×n)`, producing `(k×n)`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ma, k) = a.shape().as_2d();
    let (mb, n) = b.shape().as_2d();
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    product(GemmMode::AtB, a, b, k, ma, n)
}

/// `C = A·Bᵀ` for `A: (m×k)`, `B: (n×k)`, producing `(m×n)`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_2d();
    let (n, kb) = b.shape().as_2d();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    product(GemmMode::ABt, a, b, m, ka, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use proptest::prelude::*;
    use xrng::RandomSource;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_2d();
        let (_, n) = b.shape().as_2d();
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a.at2(i, l) * b.at2(l, j);
                }
                *c.at2_mut(i, j) = acc;
            }
        }
        c
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = t.shape().as_2d();
        Tensor::from_fn([c, r], |i| t.at2(i % r, i / r))
    }

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = xrng::seeded(seed);
        Tensor::from_fn([rows, cols], |_| rng.next_f32() * 2.0 - 1.0)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = random_tensor(5, 5, 1);
        let eye = Tensor::from_fn([5, 5], |i| if i / 5 == i % 5 { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &eye).unwrap(), &a, 1e-6);
        assert_close(&matmul(&eye, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random_tensor(7, 11, 2);
        let b = random_tensor(11, 5, 3);
        assert_close(&matmul(&a, &b).unwrap(), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = random_tensor(3, 4, 4);
        let b = random_tensor(5, 6, 5);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = random_tensor(9, 4, 6);
        let b = random_tensor(9, 7, 7);
        let expect = naive_matmul(&transpose(&a), &b);
        assert_close(&matmul_at_b(&a, &b).unwrap(), &expect, 1e-4);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = random_tensor(6, 8, 8);
        let b = random_tensor(5, 8, 9);
        let expect = naive_matmul(&a, &transpose(&b));
        assert_close(&matmul_a_bt(&a, &b).unwrap(), &expect, 1e-4);
    }

    #[test]
    fn large_matmul_uses_parallel_path() {
        // 512 rows exceeds the sequential threshold with default threads.
        let a = random_tensor(512, 64, 10);
        let b = random_tensor(64, 32, 11);
        let got = matmul(&a, &b).unwrap();
        let expect = naive_matmul(&a, &b);
        assert_close(&got, &expect, 1e-3);
    }

    #[test]
    fn one_by_one() {
        let a = Tensor::from_vec([1, 1], vec![3.0]).unwrap();
        let b = Tensor::from_vec([1, 1], vec![4.0]).unwrap();
        assert_eq!(matmul(&a, &b).unwrap().data(), &[12.0]);
    }

    #[test]
    fn matches_seed_kernels() {
        // The retained seed kernels are an independent oracle for all
        // three wrappers (summation order matches modulo the old
        // zero-skip, hence the small tolerance).
        let a = random_tensor(17, 33, 100);
        let b = random_tensor(33, 9, 101);
        assert_close(
            &matmul(&a, &b).unwrap(),
            &reference::matmul_seed(&a, &b).unwrap(),
            1e-5,
        );
        let x = random_tensor(21, 13, 102);
        let d = random_tensor(21, 6, 103);
        assert_close(
            &matmul_at_b(&x, &d).unwrap(),
            &reference::matmul_at_b_seed(&x, &d).unwrap(),
            1e-5,
        );
        let g = random_tensor(12, 19, 104);
        let w = random_tensor(8, 19, 105);
        assert_close(
            &matmul_a_bt(&g, &w).unwrap(),
            &reference::matmul_a_bt_seed(&g, &w).unwrap(),
            1e-5,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn all_kernels_consistent(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
            let a = random_tensor(m, k, seed);
            let b = random_tensor(k, n, seed ^ 0xFFFF);
            let c = matmul(&a, &b).unwrap();
            // (A·B) == ((Aᵀ)ᵀ·B) via matmul_at_b with transposed A.
            let c2 = matmul_at_b(&transpose(&a), &b).unwrap();
            // (A·B) == A·(Bᵀ)ᵀ via matmul_a_bt with transposed B.
            let c3 = matmul_a_bt(&a, &transpose(&b)).unwrap();
            for ((x, y), z) in c.data().iter().zip(c2.data()).zip(c3.data()) {
                prop_assert!((x - y).abs() < 1e-4);
                prop_assert!((x - z).abs() < 1e-4);
            }
        }
    }
}
