//! 1-D convolution and max-pooling kernels for the NT3 network.
//!
//! Layout follows Keras: activations are `(batch, steps, channels)` and
//! convolution kernels are `(kernel_size, in_channels, out_channels)`.
//! Padding is always `valid` (as in the NT3 benchmark definition) and
//! pooling windows are non-overlapping (`stride == pool_size`, the Keras
//! default).
//!
//! Convolution is lowered to the blocked GEMM engine: the input is
//! expanded with im2col into a reusable [`Workspace`] scratch buffer
//! (rows = output positions, columns = `kernel*in_ch` receptive fields),
//! so the forward pass is one `A·B` with a fused bias+activation
//! epilogue, the input gradient is one `A·Bᵀ` plus a col2im scatter, and
//! the weight gradient is an `Aᵀ·B` evaluated as fixed-size row blocks
//! with a deterministic, thread-count-independent combine order —
//! replacing the seed's serial whole-batch loop.

use crate::gemm::{gemm_slice, kernel_threads, with_scratch, Epilogue, FusedAct, GemmMode,
    Workspace};
use crate::{Tensor, TensorError};

/// Rows of the im2col matrix per weight-gradient reduction block. The
/// block partition is a pure function of the row count — never of the
/// thread count — so the blockwise sum is reproducible on any machine.
const WGRAD_BLOCK_ROWS: usize = 1024;

/// Work (in output elements) below which helper loops stay sequential.
const MIN_ELEMS_PER_THREAD: usize = 65_536;

/// Output length of a valid-padding 1-D convolution.
///
/// Returns `None` if the input is shorter than the kernel.
pub fn conv1d_output_len(steps: usize, kernel: usize, stride: usize) -> Option<usize> {
    if kernel == 0 || stride == 0 || steps < kernel {
        return None;
    }
    Some((steps - kernel) / stride + 1)
}

/// Output length of a non-overlapping 1-D max pool.
pub fn pool1d_output_len(steps: usize, pool: usize) -> Option<usize> {
    if pool == 0 || steps < pool {
        return None;
    }
    Some(steps / pool)
}

/// Runs `body` over `0..n` with at most `threads` workers, using the
/// allocation-free sequential path when one thread suffices. `body` must
/// produce partition-independent results (disjoint writes only).
fn run_chunks(n: usize, threads: usize, body: impl Fn(parx::Chunk) + Sync) {
    if n == 0 {
        return;
    }
    if threads <= 1 {
        body(parx::Chunk {
            index: 0,
            start: 0,
            end: n,
        });
    } else {
        parx::parallel_for_grained(n, threads, 1, body);
    }
}

/// Thread budget for `total_elems` of light (copy/scatter) work.
fn copy_threads(n_items: usize, total_elems: usize) -> usize {
    kernel_threads()
        .min((total_elems / MIN_ELEMS_PER_THREAD).max(1))
        .min(n_items.max(1))
}

/// Shares a mutable base pointer across scoped threads for disjoint
/// writes.
struct RawBase(usize);
unsafe impl Sync for RawBase {}

/// Expands `input (batch, steps, in_ch)` into the im2col matrix
/// `(batch*out_steps, kernel*in_ch)` stored in `col`. Row `b*out_steps+t`
/// holds the receptive field of output position `(b, t)` with the
/// reduction index ordered `k`-major then channel — the same accumulation
/// order the seed kernel used.
#[allow(clippy::too_many_arguments)]
fn im2col(
    input: &[f32],
    batch: usize,
    steps: usize,
    in_ch: usize,
    kernel: usize,
    stride: usize,
    out_steps: usize,
    col: &mut [f32],
) {
    let kcols = kernel * in_ch;
    debug_assert_eq!(col.len(), batch * out_steps * kcols);
    let base = RawBase(col.as_mut_ptr() as usize);
    let t = copy_threads(batch, batch * out_steps * kcols);
    run_chunks(batch, t, |chunk| {
        for b in chunk.start..chunk.end {
            // SAFETY: batches are disjoint across chunks.
            let rows = unsafe {
                std::slice::from_raw_parts_mut(
                    (base.0 as *mut f32).add(b * out_steps * kcols),
                    out_steps * kcols,
                )
            };
            let ibatch = &input[b * steps * in_ch..(b + 1) * steps * in_ch];
            for (t, row) in rows.chunks_exact_mut(kcols).enumerate() {
                for k in 0..kernel {
                    let src = &ibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                    row[k * in_ch..(k + 1) * in_ch].copy_from_slice(src);
                }
            }
        }
    });
}

fn conv_shape_error(left: &Tensor, right: &Tensor) -> TensorError {
    TensorError::ShapeMismatch {
        left: left.shape().clone(),
        right: right.shape().clone(),
    }
}

/// Forward 1-D convolution with an optional fused epilogue, producing the
/// output from `ws`'s buffer pool.
///
/// * `input`:  `(batch, steps, in_ch)`
/// * `weights`: `(kernel, in_ch, out_ch)`
/// * `bias`: optional per-output-channel bias fused into the GEMM epilogue
/// * `act`: activation fused into the GEMM epilogue
///
/// Returns `act(conv(input, weights) + bias)` as `(batch, out_steps, out_ch)`.
pub fn conv1d_forward_ws(
    input: &Tensor,
    weights: &Tensor,
    stride: usize,
    bias: Option<&[f32]>,
    act: FusedAct,
    ws: &mut Workspace,
) -> Result<Tensor, TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, w_in, out_ch) = weights.shape().as_3d();
    let out_steps = conv1d_output_len(steps, kernel, stride)
        .ok_or_else(|| conv_shape_error(input, weights))?;
    if w_in != in_ch {
        return Err(conv_shape_error(input, weights));
    }
    let m = batch * out_steps;
    let k = kernel * in_ch;
    let mut out = ws.alloc([batch, out_steps, out_ch]);
    // The im2col scratch leaves the workspace while the GEMM borrows it.
    let mut col = std::mem::take(&mut ws.im2col);
    col.resize(m * k, 0.0);
    im2col(
        input.data(),
        batch,
        steps,
        in_ch,
        kernel,
        stride,
        out_steps,
        &mut col,
    );
    let epilogue = Epilogue { bias, act };
    gemm_slice(
        GemmMode::Ab,
        &col,
        weights.data(),
        m,
        k,
        out_ch,
        out.data_mut(),
        &epilogue,
        0,
        ws,
    );
    ws.im2col = col;
    Ok(out)
}

/// Forward 1-D convolution (drop-in seed-compatible entry point).
///
/// * `input`:  `(batch, steps, in_ch)`
/// * `weights`: `(kernel, in_ch, out_ch)`
///
/// Returns `(batch, out_steps, out_ch)`.
pub fn conv1d_forward(
    input: &Tensor,
    weights: &Tensor,
    stride: usize,
) -> Result<Tensor, TensorError> {
    with_scratch(|ws| conv1d_forward_ws(input, weights, stride, None, FusedAct::Linear, ws))
}

/// Backward 1-D convolution on a workspace: writes the weight gradient
/// into `grad_weights` (shape `(kernel, in_ch, out_ch)`, fully
/// overwritten) and returns the input gradient from `ws`'s pool.
///
/// The weight gradient is an `Aᵀ·B` over the im2col matrix, evaluated in
/// [`WGRAD_BLOCK_ROWS`]-row blocks. Blocks may be computed on different
/// threads, but each block's partial is a sequential in-order sum and the
/// partials are combined in ascending block order, so the result is
/// bit-identical for every thread count.
pub fn conv1d_backward_ws(
    input: &Tensor,
    weights: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    grad_weights: &mut Tensor,
    ws: &mut Workspace,
) -> Result<Tensor, TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, _, out_ch) = weights.shape().as_3d();
    let (gb, out_steps, g_out_ch) = grad_out.shape().as_3d();
    if gb != batch
        || g_out_ch != out_ch
        || conv1d_output_len(steps, kernel, stride) != Some(out_steps)
    {
        return Err(conv_shape_error(input, grad_out));
    }
    let m = batch * out_steps;
    let k = kernel * in_ch;
    if grad_weights.len() != k * out_ch {
        return Err(TensorError::LengthMismatch {
            expected: k * out_ch,
            actual: grad_weights.len(),
        });
    }
    let gd = grad_out.data();

    // Input gradient: grad_col = grad_out · Wᵀ, then col2im scatter.
    let mut colgrad = std::mem::take(&mut ws.colgrad);
    colgrad.resize(m * k, 0.0);
    gemm_slice(
        GemmMode::ABt,
        gd,
        weights.data(),
        m,
        out_ch,
        k,
        &mut colgrad,
        &Epilogue::NONE,
        0,
        ws,
    );
    let mut grad_input = ws.alloc([batch, steps, in_ch]);
    {
        let base = RawBase(grad_input.data_mut().as_mut_ptr() as usize);
        let t = copy_threads(batch, m * k);
        run_chunks(batch, t, |chunk| {
            for b in chunk.start..chunk.end {
                // SAFETY: batches are disjoint across chunks.
                let gibatch = unsafe {
                    std::slice::from_raw_parts_mut(
                        (base.0 as *mut f32).add(b * steps * in_ch),
                        steps * in_ch,
                    )
                };
                for t in 0..out_steps {
                    let row = &colgrad[(b * out_steps + t) * k..(b * out_steps + t + 1) * k];
                    for kk in 0..kernel {
                        let dst = &mut gibatch
                            [(t * stride + kk) * in_ch..(t * stride + kk + 1) * in_ch];
                        let src = &row[kk * in_ch..(kk + 1) * in_ch];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
            }
        });
    }
    ws.colgrad = colgrad;

    // Weight gradient: im2colᵀ · grad_out in fixed-size row blocks.
    let mut col = std::mem::take(&mut ws.im2col);
    col.resize(m * k, 0.0);
    im2col(
        input.data(),
        batch,
        steps,
        in_ch,
        kernel,
        stride,
        out_steps,
        &mut col,
    );
    let nblocks = m.div_ceil(WGRAD_BLOCK_ROWS);
    let mut partials = std::mem::take(&mut ws.partials);
    partials.resize(nblocks * k * out_ch, 0.0);
    {
        let base = RawBase(partials.as_mut_ptr() as usize);
        let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(out_ch);
        let t = kernel_threads()
            .min((flops / (2 * MIN_ELEMS_PER_THREAD)).max(1))
            .min(nblocks);
        run_chunks(nblocks, t, |chunk| {
            for blk in chunk.start..chunk.end {
                let r0 = blk * WGRAD_BLOCK_ROWS;
                let r1 = (r0 + WGRAD_BLOCK_ROWS).min(m);
                // SAFETY: each block's partial slab is written by exactly
                // one chunk.
                let part = unsafe {
                    std::slice::from_raw_parts_mut(
                        (base.0 as *mut f32).add(blk * k * out_ch),
                        k * out_ch,
                    )
                };
                part.fill(0.0);
                for r in r0..r1 {
                    let crow = &col[r * k..(r + 1) * k];
                    let grow = &gd[r * out_ch..(r + 1) * out_ch];
                    for (kk, &cv) in crow.iter().enumerate() {
                        let dst = &mut part[kk * out_ch..(kk + 1) * out_ch];
                        for (d, &g) in dst.iter_mut().zip(grow) {
                            *d += cv * g;
                        }
                    }
                }
            }
        });
    }
    ws.im2col = col;
    // Combine partials in ascending block order — fixed regardless of how
    // blocks were assigned to threads.
    let gw = grad_weights.data_mut();
    gw.fill(0.0);
    for blk in 0..nblocks {
        let part = &partials[blk * k * out_ch..(blk + 1) * k * out_ch];
        for (d, &p) in gw.iter_mut().zip(part) {
            *d += p;
        }
    }
    ws.partials = partials;
    Ok(grad_input)
}

/// Backward 1-D convolution: gradients w.r.t. the input and the weights.
///
/// * `input`:   the forward input `(batch, steps, in_ch)`
/// * `weights`: `(kernel, in_ch, out_ch)`
/// * `grad_out`: `(batch, out_steps, out_ch)` upstream gradient
///
/// Returns `(grad_input, grad_weights)`.
pub fn conv1d_backward(
    input: &Tensor,
    weights: &Tensor,
    grad_out: &Tensor,
    stride: usize,
) -> Result<(Tensor, Tensor), TensorError> {
    let (kernel, in_ch, out_ch) = weights.shape().as_3d();
    let mut grad_weights = Tensor::zeros([kernel, in_ch, out_ch]);
    let grad_input = with_scratch(|ws| {
        conv1d_backward_ws(input, weights, grad_out, stride, &mut grad_weights, ws)
    })?;
    Ok((grad_input, grad_weights))
}

/// Forward non-overlapping 1-D max pool on a workspace.
///
/// Writes the flat input index of each selected maximum into `argmax`
/// (cleared and resized) and returns the pooled tensor from `ws`'s pool.
pub fn maxpool1d_forward_ws(
    input: &Tensor,
    pool: usize,
    argmax: &mut Vec<usize>,
    ws: &mut Workspace,
) -> Result<Tensor, TensorError> {
    let (batch, steps, ch) = input.shape().as_3d();
    let out_steps = pool1d_output_len(steps, pool).ok_or_else(|| TensorError::ShapeMismatch {
        left: input.shape().clone(),
        right: crate::Shape::from([pool]),
    })?;
    let mut out = ws.alloc([batch, out_steps, ch]);
    argmax.clear();
    argmax.resize(batch * out_steps * ch, 0);
    let id = input.data();
    let od = out.data_mut();
    for b in 0..batch {
        for t in 0..out_steps {
            for c in 0..ch {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for p in 0..pool {
                    let idx = b * steps * ch + (t * pool + p) * ch + c;
                    if id[idx] > best {
                        best = id[idx];
                        best_idx = idx;
                    }
                }
                let oidx = b * out_steps * ch + t * ch + c;
                od[oidx] = best;
                argmax[oidx] = best_idx;
            }
        }
    }
    Ok(out)
}

/// Forward non-overlapping 1-D max pool.
///
/// Returns the pooled tensor `(batch, out_steps, ch)` and the flat input
/// index of each selected maximum (for the backward pass).
pub fn maxpool1d_forward(input: &Tensor, pool: usize) -> Result<(Tensor, Vec<usize>), TensorError> {
    let mut argmax = Vec::new();
    let out = with_scratch(|ws| maxpool1d_forward_ws(input, pool, &mut argmax, ws))?;
    Ok((out, argmax))
}

/// Backward max pool on a workspace: routes each upstream gradient to the
/// input position that produced the maximum.
pub fn maxpool1d_backward_ws(
    input_shape: &crate::Shape,
    grad_out: &Tensor,
    argmax: &[usize],
    ws: &mut Workspace,
) -> Result<Tensor, TensorError> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: grad_out.len(),
            actual: argmax.len(),
        });
    }
    let mut grad_input = ws.alloc(input_shape.clone());
    let gi = grad_input.data_mut();
    for (&g, &idx) in grad_out.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

/// Backward max pool: routes each upstream gradient to the input position
/// that produced the maximum.
pub fn maxpool1d_backward(
    input_shape: &crate::Shape,
    grad_out: &Tensor,
    argmax: &[usize],
) -> Result<Tensor, TensorError> {
    with_scratch(|ws| maxpool1d_backward_ws(input_shape, grad_out, argmax, ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use proptest::prelude::*;
    use xrng::RandomSource;

    fn rand3(b: usize, s: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = xrng::seeded(seed);
        Tensor::from_fn([b, s, c], |_| rng.next_f32() * 2.0 - 1.0)
    }

    /// Direct per-element reference convolution.
    fn naive_conv(input: &Tensor, weights: &Tensor, stride: usize) -> Tensor {
        let (batch, steps, in_ch) = input.shape().as_3d();
        let (kernel, _, out_ch) = weights.shape().as_3d();
        let out_steps = conv1d_output_len(steps, kernel, stride).unwrap();
        Tensor::from_fn([batch, out_steps, out_ch], |flat| {
            let o = flat % out_ch;
            let t = (flat / out_ch) % out_steps;
            let b = flat / (out_ch * out_steps);
            let mut acc = 0.0;
            for k in 0..kernel {
                for c in 0..in_ch {
                    let iv = input.data()[b * steps * in_ch + (t * stride + k) * in_ch + c];
                    let wv = weights.data()[k * in_ch * out_ch + c * out_ch + o];
                    acc += iv * wv;
                }
            }
            acc
        })
    }

    #[test]
    fn output_len_math() {
        assert_eq!(conv1d_output_len(10, 3, 1), Some(8));
        assert_eq!(conv1d_output_len(10, 3, 2), Some(4));
        assert_eq!(conv1d_output_len(2, 3, 1), None);
        assert_eq!(conv1d_output_len(10, 0, 1), None);
        assert_eq!(pool1d_output_len(10, 2), Some(5));
        assert_eq!(pool1d_output_len(11, 2), Some(5));
        assert_eq!(pool1d_output_len(1, 2), None);
    }

    #[test]
    fn forward_matches_naive() {
        let input = rand3(2, 12, 3, 1);
        let weights = rand3(4, 3, 5, 2); // (kernel, in, out)
        for stride in [1, 2, 3] {
            let fast = conv1d_forward(&input, &weights, stride).unwrap();
            let slow = naive_conv(&input, &weights, stride);
            for (a, b) in fast.data().iter().zip(slow.data()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn forward_matches_seed_kernel() {
        let input = rand3(3, 40, 4, 30);
        let weights = rand3(5, 4, 7, 31);
        for stride in [1, 2] {
            let fast = conv1d_forward(&input, &weights, stride).unwrap();
            let seed = reference::conv1d_forward_seed(&input, &weights, stride).unwrap();
            assert_eq!(fast.shape(), seed.shape());
            for (a, b) in fast.data().iter().zip(seed.data()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_bias_and_relu_match_unfused() {
        let input = rand3(2, 20, 3, 40);
        let weights = rand3(3, 3, 6, 41);
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.1 - 0.2).collect();
        let mut ws = Workspace::new();
        let fused = conv1d_forward_ws(
            &input,
            &weights,
            1,
            Some(&bias),
            FusedAct::Relu,
            &mut ws,
        )
        .unwrap();
        let plain = conv1d_forward(&input, &weights, 1).unwrap();
        let (_, _, out_ch) = fused.shape().as_3d();
        for (i, (&f, &p)) in fused.data().iter().zip(plain.data()).enumerate() {
            let expect = (p + bias[i % out_ch]).max(0.0);
            assert_eq!(f.to_bits(), expect.to_bits(), "element {i}");
        }
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let input = rand3(2, 7, 2, 10);
        let weights = rand3(3, 2, 3, 11);
        let stride = 2;
        let out = conv1d_forward(&input, &weights, stride).unwrap();
        // Loss = sum(out); upstream gradient is all ones.
        let grad_out = Tensor::full(out.shape().clone().dims().to_vec(), 1.0);
        let (gi, gw) = conv1d_backward(&input, &weights, &grad_out, stride).unwrap();
        let eps = 1e-3f32;
        let loss =
            |inp: &Tensor, w: &Tensor| -> f64 { conv1d_forward(inp, w, stride).unwrap().sum() };
        // Check a sample of input coordinates.
        for idx in [0usize, 5, 13, 20, 27] {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let num = (loss(&plus, &weights) - loss(&minus, &weights)) / (2.0 * eps as f64);
            assert!(
                (num - gi.data()[idx] as f64).abs() < 1e-2,
                "input grad at {idx}: numeric {num} vs analytic {}",
                gi.data()[idx]
            );
        }
        // Check a sample of weight coordinates.
        for idx in [0usize, 3, 7, 11, 17] {
            let mut plus = weights.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = weights.clone();
            minus.data_mut()[idx] -= eps;
            let num = (loss(&input, &plus) - loss(&input, &minus)) / (2.0 * eps as f64);
            assert!(
                (num - gw.data()[idx] as f64).abs() < 1e-2,
                "weight grad at {idx}: numeric {num} vs analytic {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn backward_matches_seed_kernel() {
        let input = rand3(3, 30, 3, 50);
        let weights = rand3(4, 3, 5, 51);
        let grad_out_shape = conv1d_forward(&input, &weights, 2).unwrap();
        let grad_out = rand3(
            grad_out_shape.shape().as_3d().0,
            grad_out_shape.shape().as_3d().1,
            grad_out_shape.shape().as_3d().2,
            52,
        );
        let (gi, gw) = conv1d_backward(&input, &weights, &grad_out, 2).unwrap();
        let (gi_seed, gw_seed) =
            reference::conv1d_backward_seed(&input, &weights, &grad_out, 2).unwrap();
        for (a, b) in gi.data().iter().zip(gi_seed.data()) {
            assert!((a - b).abs() < 1e-5, "input grad {a} vs {b}");
        }
        for (a, b) in gw.data().iter().zip(gw_seed.data()) {
            assert!((a - b).abs() < 1e-4, "weight grad {a} vs {b}");
        }
    }

    #[test]
    fn weight_grad_blocks_are_thread_count_invariant() {
        // More rows than one WGRAD block so the blockwise combine runs;
        // results must not depend on how blocks map to threads (exercised
        // indirectly: two identical calls reuse different pool state).
        let input = rand3(8, 200, 2, 60);
        let weights = rand3(3, 2, 4, 61);
        let out = conv1d_forward(&input, &weights, 1).unwrap();
        let grad_out = rand3(
            out.shape().as_3d().0,
            out.shape().as_3d().1,
            out.shape().as_3d().2,
            62,
        );
        let mut ws = Workspace::new();
        let mut gw1 = Tensor::zeros([3, 2, 4]);
        let mut gw2 = Tensor::zeros([3, 2, 4]);
        let gi1 =
            conv1d_backward_ws(&input, &weights, &grad_out, 1, &mut gw1, &mut ws).unwrap();
        let gi2 =
            conv1d_backward_ws(&input, &weights, &grad_out, 1, &mut gw2, &mut ws).unwrap();
        assert_eq!(gw1.data(), gw2.data());
        assert_eq!(gi1.data(), gi2.data());
    }

    #[test]
    fn forward_rejects_channel_mismatch() {
        let input = rand3(1, 8, 3, 3);
        let weights = rand3(2, 4, 5, 4);
        assert!(conv1d_forward(&input, &weights, 1).is_err());
    }

    #[test]
    fn forward_rejects_short_input() {
        let input = rand3(1, 2, 3, 5);
        let weights = rand3(5, 3, 2, 6);
        assert!(conv1d_forward(&input, &weights, 1).is_err());
    }

    #[test]
    fn backward_rejects_bad_grad_shape() {
        let input = rand3(1, 8, 2, 20);
        let weights = rand3(3, 2, 4, 21);
        let bad_grad = rand3(1, 99, 4, 22);
        assert!(conv1d_backward(&input, &weights, &bad_grad, 1).is_err());
    }

    #[test]
    fn maxpool_forward_selects_maxima() {
        let input =
            Tensor::from_vec([1, 4, 2], vec![1.0, -1.0, 3.0, 0.5, 2.0, 9.0, -4.0, 8.0]).unwrap();
        let (out, argmax) = maxpool1d_forward(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.data(), &[3.0, 0.5, 2.0, 9.0]);
        assert_eq!(argmax, vec![2, 3, 4, 5]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let input = Tensor::from_vec([1, 4, 1], vec![1.0, 5.0, 2.0, 0.0]).unwrap();
        let (out, argmax) = maxpool1d_forward(&input, 2).unwrap();
        let grad_out =
            Tensor::from_vec(out.shape().clone().dims().to_vec(), vec![10.0, 20.0]).unwrap();
        let gi = maxpool1d_backward(input.shape(), &grad_out, &argmax).unwrap();
        assert_eq!(gi.data(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn maxpool_truncates_trailing_remainder() {
        let input = Tensor::from_fn([1, 5, 1], |i| i as f32);
        let (out, _) = maxpool1d_forward(&input, 2).unwrap();
        // Element 4 is dropped, matching Keras valid pooling.
        assert_eq!(out.data(), &[1.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn pool_then_unpool_conserves_gradient_mass(
            b in 1usize..3, s in 2usize..12, c in 1usize..4, pool in 1usize..4, seed in 0u64..100
        ) {
            prop_assume!(s >= pool && pool >= 1);
            let input = rand3(b, s, c, seed);
            let (out, argmax) = maxpool1d_forward(&input, pool).unwrap();
            let grad = Tensor::full(out.shape().clone().dims().to_vec(), 1.0);
            let gi = maxpool1d_backward(input.shape(), &grad, &argmax).unwrap();
            // Gradient mass is conserved through the routing.
            prop_assert!((gi.sum() - grad.sum()).abs() < 1e-4);
        }
    }
}
