//! 1-D convolution and max-pooling kernels for the NT3 network.
//!
//! Layout follows Keras: activations are `(batch, steps, channels)` and
//! convolution kernels are `(kernel_size, in_channels, out_channels)`.
//! Padding is always `valid` (as in the NT3 benchmark definition) and
//! pooling windows are non-overlapping (`stride == pool_size`, the Keras
//! default).

use crate::{Tensor, TensorError};

/// Output length of a valid-padding 1-D convolution.
///
/// Returns `None` if the input is shorter than the kernel.
pub fn conv1d_output_len(steps: usize, kernel: usize, stride: usize) -> Option<usize> {
    if kernel == 0 || stride == 0 || steps < kernel {
        return None;
    }
    Some((steps - kernel) / stride + 1)
}

/// Output length of a non-overlapping 1-D max pool.
pub fn pool1d_output_len(steps: usize, pool: usize) -> Option<usize> {
    if pool == 0 || steps < pool {
        return None;
    }
    Some(steps / pool)
}

/// Forward 1-D convolution.
///
/// * `input`:  `(batch, steps, in_ch)`
/// * `weights`: `(kernel, in_ch, out_ch)`
///
/// Returns `(batch, out_steps, out_ch)`.
pub fn conv1d_forward(
    input: &Tensor,
    weights: &Tensor,
    stride: usize,
) -> Result<Tensor, TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, w_in, out_ch) = weights.shape().as_3d();
    let out_steps =
        conv1d_output_len(steps, kernel, stride).ok_or_else(|| TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weights.shape().clone(),
        })?;
    if w_in != in_ch {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weights.shape().clone(),
        });
    }
    let mut out = Tensor::zeros([batch, out_steps, out_ch]);
    let (id, wd) = (input.data(), weights.data());
    let od = RawBase(out.data_mut().as_mut_ptr() as usize);
    parx::parallel_for(batch, parx::default_threads(), |chunk| {
        for b in chunk.start..chunk.end {
            // SAFETY: batches are disjoint across chunks.
            let obatch = unsafe {
                std::slice::from_raw_parts_mut(
                    (od.0 as *mut f32).add(b * out_steps * out_ch),
                    out_steps * out_ch,
                )
            };
            let ibatch = &id[b * steps * in_ch..(b + 1) * steps * in_ch];
            for t in 0..out_steps {
                let orow = &mut obatch[t * out_ch..(t + 1) * out_ch];
                for k in 0..kernel {
                    let irow = &ibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                    let wslab = &wd[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                    for (c, &iv) in irow.iter().enumerate() {
                        if iv == 0.0 {
                            continue;
                        }
                        let wrow = &wslab[c * out_ch..(c + 1) * out_ch];
                        for (ov, &wv) in orow.iter_mut().zip(wrow) {
                            *ov += iv * wv;
                        }
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Backward 1-D convolution: gradients w.r.t. the input and the weights.
///
/// * `input`:   the forward input `(batch, steps, in_ch)`
/// * `weights`: `(kernel, in_ch, out_ch)`
/// * `grad_out`: `(batch, out_steps, out_ch)` upstream gradient
///
/// Returns `(grad_input, grad_weights)`.
pub fn conv1d_backward(
    input: &Tensor,
    weights: &Tensor,
    grad_out: &Tensor,
    stride: usize,
) -> Result<(Tensor, Tensor), TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, _, out_ch) = weights.shape().as_3d();
    let (gb, out_steps, g_out_ch) = grad_out.shape().as_3d();
    if gb != batch
        || g_out_ch != out_ch
        || conv1d_output_len(steps, kernel, stride) != Some(out_steps)
    {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: grad_out.shape().clone(),
        });
    }
    let mut grad_input = Tensor::zeros([batch, steps, in_ch]);
    let mut grad_weights = Tensor::zeros([kernel, in_ch, out_ch]);
    let (id, wd, gd) = (input.data(), weights.data(), grad_out.data());

    // Input gradient parallelizes cleanly over batch.
    let gi = RawBase(grad_input.data_mut().as_mut_ptr() as usize);
    parx::parallel_for(batch, parx::default_threads(), |chunk| {
        for b in chunk.start..chunk.end {
            // SAFETY: batches disjoint across chunks.
            let gibatch = unsafe {
                std::slice::from_raw_parts_mut(
                    (gi.0 as *mut f32).add(b * steps * in_ch),
                    steps * in_ch,
                )
            };
            let gbatch = &gd[b * out_steps * out_ch..(b + 1) * out_steps * out_ch];
            for t in 0..out_steps {
                let grow = &gbatch[t * out_ch..(t + 1) * out_ch];
                for k in 0..kernel {
                    let girow =
                        &mut gibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                    let wslab = &wd[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                    for (c, gv) in girow.iter_mut().enumerate() {
                        let wrow = &wslab[c * out_ch..(c + 1) * out_ch];
                        let mut acc = 0.0f32;
                        for (&g, &w) in grow.iter().zip(wrow) {
                            acc += g * w;
                        }
                        *gv += acc;
                    }
                }
            }
        }
    });

    // Weight gradient accumulates over batch; done sequentially per (k,c)
    // slab to stay deterministic regardless of thread count.
    for b in 0..batch {
        let ibatch = &id[b * steps * in_ch..(b + 1) * steps * in_ch];
        let gbatch = &gd[b * out_steps * out_ch..(b + 1) * out_steps * out_ch];
        for t in 0..out_steps {
            let grow = &gbatch[t * out_ch..(t + 1) * out_ch];
            for k in 0..kernel {
                let irow = &ibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                let gwslab =
                    &mut grad_weights.data_mut()[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                for (c, &iv) in irow.iter().enumerate() {
                    if iv == 0.0 {
                        continue;
                    }
                    let gwrow = &mut gwslab[c * out_ch..(c + 1) * out_ch];
                    for (gw, &g) in gwrow.iter_mut().zip(grow) {
                        *gw += iv * g;
                    }
                }
            }
        }
    }
    Ok((grad_input, grad_weights))
}

/// Forward non-overlapping 1-D max pool.
///
/// Returns the pooled tensor `(batch, out_steps, ch)` and the flat input
/// index of each selected maximum (for the backward pass).
pub fn maxpool1d_forward(input: &Tensor, pool: usize) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (batch, steps, ch) = input.shape().as_3d();
    let out_steps = pool1d_output_len(steps, pool).ok_or_else(|| TensorError::ShapeMismatch {
        left: input.shape().clone(),
        right: crate::Shape::from([pool]),
    })?;
    let mut out = Tensor::zeros([batch, out_steps, ch]);
    let mut argmax = vec![0usize; batch * out_steps * ch];
    let id = input.data();
    for b in 0..batch {
        for t in 0..out_steps {
            for c in 0..ch {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for p in 0..pool {
                    let idx = b * steps * ch + (t * pool + p) * ch + c;
                    if id[idx] > best {
                        best = id[idx];
                        best_idx = idx;
                    }
                }
                let oidx = b * out_steps * ch + t * ch + c;
                out.data_mut()[oidx] = best;
                argmax[oidx] = best_idx;
            }
        }
    }
    Ok((out, argmax))
}

/// Backward max pool: routes each upstream gradient to the input position
/// that produced the maximum.
pub fn maxpool1d_backward(
    input_shape: &crate::Shape,
    grad_out: &Tensor,
    argmax: &[usize],
) -> Result<Tensor, TensorError> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: grad_out.len(),
            actual: argmax.len(),
        });
    }
    let mut grad_input = Tensor::zeros(input_shape.dims().to_vec());
    for (&g, &idx) in grad_out.data().iter().zip(argmax) {
        grad_input.data_mut()[idx] += g;
    }
    Ok(grad_input)
}

/// Shares a mutable base pointer across scoped threads for disjoint writes.
struct RawBase(usize);
unsafe impl Sync for RawBase {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xrng::RandomSource;

    fn rand3(b: usize, s: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = xrng::seeded(seed);
        Tensor::from_fn([b, s, c], |_| rng.next_f32() * 2.0 - 1.0)
    }

    /// Direct per-element reference convolution.
    fn naive_conv(input: &Tensor, weights: &Tensor, stride: usize) -> Tensor {
        let (batch, steps, in_ch) = input.shape().as_3d();
        let (kernel, _, out_ch) = weights.shape().as_3d();
        let out_steps = conv1d_output_len(steps, kernel, stride).unwrap();
        Tensor::from_fn([batch, out_steps, out_ch], |flat| {
            let o = flat % out_ch;
            let t = (flat / out_ch) % out_steps;
            let b = flat / (out_ch * out_steps);
            let mut acc = 0.0;
            for k in 0..kernel {
                for c in 0..in_ch {
                    let iv = input.data()[b * steps * in_ch + (t * stride + k) * in_ch + c];
                    let wv = weights.data()[k * in_ch * out_ch + c * out_ch + o];
                    acc += iv * wv;
                }
            }
            acc
        })
    }

    #[test]
    fn output_len_math() {
        assert_eq!(conv1d_output_len(10, 3, 1), Some(8));
        assert_eq!(conv1d_output_len(10, 3, 2), Some(4));
        assert_eq!(conv1d_output_len(2, 3, 1), None);
        assert_eq!(conv1d_output_len(10, 0, 1), None);
        assert_eq!(pool1d_output_len(10, 2), Some(5));
        assert_eq!(pool1d_output_len(11, 2), Some(5));
        assert_eq!(pool1d_output_len(1, 2), None);
    }

    #[test]
    fn forward_matches_naive() {
        let input = rand3(2, 12, 3, 1);
        let weights = rand3(4, 3, 5, 2); // (kernel, in, out)
        for stride in [1, 2, 3] {
            let fast = conv1d_forward(&input, &weights, stride).unwrap();
            let slow = naive_conv(&input, &weights, stride);
            for (a, b) in fast.data().iter().zip(slow.data()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn forward_rejects_channel_mismatch() {
        let input = rand3(1, 8, 3, 3);
        let weights = rand3(2, 4, 5, 4);
        assert!(conv1d_forward(&input, &weights, 1).is_err());
    }

    #[test]
    fn forward_rejects_short_input() {
        let input = rand3(1, 2, 3, 5);
        let weights = rand3(5, 3, 2, 6);
        assert!(conv1d_forward(&input, &weights, 1).is_err());
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let input = rand3(2, 7, 2, 10);
        let weights = rand3(3, 2, 3, 11);
        let stride = 2;
        let out = conv1d_forward(&input, &weights, stride).unwrap();
        // Loss = sum(out); upstream gradient is all ones.
        let grad_out = Tensor::full(out.shape().clone().dims().to_vec(), 1.0);
        let (gi, gw) = conv1d_backward(&input, &weights, &grad_out, stride).unwrap();
        let eps = 1e-3f32;
        let loss =
            |inp: &Tensor, w: &Tensor| -> f64 { conv1d_forward(inp, w, stride).unwrap().sum() };
        // Check a sample of input coordinates.
        for idx in [0usize, 5, 13, 20, 27] {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let num = (loss(&plus, &weights) - loss(&minus, &weights)) / (2.0 * eps as f64);
            assert!(
                (num - gi.data()[idx] as f64).abs() < 1e-2,
                "input grad at {idx}: numeric {num} vs analytic {}",
                gi.data()[idx]
            );
        }
        // Check a sample of weight coordinates.
        for idx in [0usize, 3, 7, 11, 17] {
            let mut plus = weights.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = weights.clone();
            minus.data_mut()[idx] -= eps;
            let num = (loss(&input, &plus) - loss(&input, &minus)) / (2.0 * eps as f64);
            assert!(
                (num - gw.data()[idx] as f64).abs() < 1e-2,
                "weight grad at {idx}: numeric {num} vs analytic {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn backward_rejects_bad_grad_shape() {
        let input = rand3(1, 8, 2, 20);
        let weights = rand3(3, 2, 4, 21);
        let bad_grad = rand3(1, 99, 4, 22);
        assert!(conv1d_backward(&input, &weights, &bad_grad, 1).is_err());
    }

    #[test]
    fn maxpool_forward_selects_maxima() {
        let input =
            Tensor::from_vec([1, 4, 2], vec![1.0, -1.0, 3.0, 0.5, 2.0, 9.0, -4.0, 8.0]).unwrap();
        let (out, argmax) = maxpool1d_forward(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.data(), &[3.0, 0.5, 2.0, 9.0]);
        assert_eq!(argmax, vec![2, 3, 4, 5]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let input = Tensor::from_vec([1, 4, 1], vec![1.0, 5.0, 2.0, 0.0]).unwrap();
        let (out, argmax) = maxpool1d_forward(&input, 2).unwrap();
        let grad_out =
            Tensor::from_vec(out.shape().clone().dims().to_vec(), vec![10.0, 20.0]).unwrap();
        let gi = maxpool1d_backward(input.shape(), &grad_out, &argmax).unwrap();
        assert_eq!(gi.data(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn maxpool_truncates_trailing_remainder() {
        let input = Tensor::from_fn([1, 5, 1], |i| i as f32);
        let (out, _) = maxpool1d_forward(&input, 2).unwrap();
        // Element 4 is dropped, matching Keras valid pooling.
        assert_eq!(out.data(), &[1.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn pool_then_unpool_conserves_gradient_mass(
            b in 1usize..3, s in 2usize..12, c in 1usize..4, pool in 1usize..4, seed in 0u64..100
        ) {
            prop_assume!(s >= pool && pool >= 1);
            let input = rand3(b, s, c, seed);
            let (out, argmax) = maxpool1d_forward(&input, pool).unwrap();
            let grad = Tensor::full(out.shape().clone().dims().to_vec(), 1.0);
            let gi = maxpool1d_backward(input.shape(), &grad, &argmax).unwrap();
            // Gradient mass is conserved through the routing.
            prop_assert!((gi.sum() - grad.sum()).abs() < 1e-4);
        }
    }
}
