//! Seed kernels, kept verbatim as a baseline.
//!
//! These are the pre-blocked-GEMM implementations the workspace shipped
//! with: scalar i-k-j matmul loops with the `aval == 0.0` skip, and the
//! direct 4-deep Conv1D loop nest. They are retained so benchmarks and
//! the `table_kernels` experiment can measure the blocked engine against
//! the exact code it replaced, and so property tests have an independent
//! oracle.

use crate::conv1d_output_len;
use crate::gemm::kernel_threads;
use crate::{Tensor, TensorError};

/// Seed `C = A·B`: scalar i-k-j with a zero-skip branch.
pub fn matmul_seed(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_2d();
    let (kb, n) = b.shape().as_2d();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = RawRows {
        base: c.data_mut().as_mut_ptr() as usize,
    };
    parx::parallel_for(m, kernel_threads(), |chunk| {
        for i in chunk.start..chunk.end {
            // SAFETY: each output row i is written by exactly one chunk.
            let crow =
                unsafe { std::slice::from_raw_parts_mut((cd.base as *mut f32).add(i * n), n) };
            let arow = &ad[i * ka..(i + 1) * ka];
            for (l, &aval) in arow.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let brow = &bd[l * n..(l + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aval * bv;
                }
            }
        }
    });
    Ok(c)
}

/// Seed `C = Aᵀ·B` for `A: (m×k)`, `B: (m×n)`, producing `(k×n)`.
pub fn matmul_at_b_seed(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ma, k) = a.shape().as_2d();
    let (mb, n) = b.shape().as_2d();
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    let mut c = Tensor::zeros([k, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = RawRows {
        base: c.data_mut().as_mut_ptr() as usize,
    };
    parx::parallel_for(k, kernel_threads(), |chunk| {
        for j in chunk.start..chunk.end {
            // SAFETY: disjoint output rows per chunk.
            let crow =
                unsafe { std::slice::from_raw_parts_mut((cd.base as *mut f32).add(j * n), n) };
            for i in 0..ma {
                let aval = ad[i * k + j];
                if aval == 0.0 {
                    continue;
                }
                let brow = &bd[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aval * bv;
                }
            }
        }
    });
    Ok(c)
}

/// Seed `C = A·Bᵀ` for `A: (m×k)`, `B: (n×k)`, producing `(m×n)`.
pub fn matmul_a_bt_seed(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_2d();
    let (n, kb) = b.shape().as_2d();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = RawRows {
        base: c.data_mut().as_mut_ptr() as usize,
    };
    parx::parallel_for(m, kernel_threads(), |chunk| {
        for i in chunk.start..chunk.end {
            let arow = &ad[i * ka..(i + 1) * ka];
            // SAFETY: disjoint output rows per chunk.
            let crow =
                unsafe { std::slice::from_raw_parts_mut((cd.base as *mut f32).add(i * n), n) };
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &bd[j * ka..(j + 1) * ka];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
    Ok(c)
}

/// Seed forward Conv1D: the direct batch/step/kernel/channel loop nest
/// with the `iv == 0.0` skip.
pub fn conv1d_forward_seed(
    input: &Tensor,
    weights: &Tensor,
    stride: usize,
) -> Result<Tensor, TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, w_in, out_ch) = weights.shape().as_3d();
    let out_steps =
        conv1d_output_len(steps, kernel, stride).ok_or_else(|| TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weights.shape().clone(),
        })?;
    if w_in != in_ch {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: weights.shape().clone(),
        });
    }
    let mut out = Tensor::zeros([batch, out_steps, out_ch]);
    let (id, wd) = (input.data(), weights.data());
    let od = RawRows {
        base: out.data_mut().as_mut_ptr() as usize,
    };
    parx::parallel_for(batch, kernel_threads(), |chunk| {
        for b in chunk.start..chunk.end {
            // SAFETY: batches are disjoint across chunks.
            let obatch = unsafe {
                std::slice::from_raw_parts_mut(
                    (od.base as *mut f32).add(b * out_steps * out_ch),
                    out_steps * out_ch,
                )
            };
            let ibatch = &id[b * steps * in_ch..(b + 1) * steps * in_ch];
            for t in 0..out_steps {
                let orow = &mut obatch[t * out_ch..(t + 1) * out_ch];
                for k in 0..kernel {
                    let irow = &ibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                    let wslab = &wd[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                    for (c, &iv) in irow.iter().enumerate() {
                        if iv == 0.0 {
                            continue;
                        }
                        let wrow = &wslab[c * out_ch..(c + 1) * out_ch];
                        for (ov, &wv) in orow.iter_mut().zip(wrow) {
                            *ov += iv * wv;
                        }
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Seed backward Conv1D: batch-parallel input gradient plus the *serial*
/// whole-batch weight-gradient loop the blocked engine replaced.
pub fn conv1d_backward_seed(
    input: &Tensor,
    weights: &Tensor,
    grad_out: &Tensor,
    stride: usize,
) -> Result<(Tensor, Tensor), TensorError> {
    let (batch, steps, in_ch) = input.shape().as_3d();
    let (kernel, _, out_ch) = weights.shape().as_3d();
    let (gb, out_steps, g_out_ch) = grad_out.shape().as_3d();
    if gb != batch
        || g_out_ch != out_ch
        || conv1d_output_len(steps, kernel, stride) != Some(out_steps)
    {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: grad_out.shape().clone(),
        });
    }
    let mut grad_input = Tensor::zeros([batch, steps, in_ch]);
    let mut grad_weights = Tensor::zeros([kernel, in_ch, out_ch]);
    let (id, wd, gd) = (input.data(), weights.data(), grad_out.data());

    let gi = RawRows {
        base: grad_input.data_mut().as_mut_ptr() as usize,
    };
    parx::parallel_for(batch, kernel_threads(), |chunk| {
        for b in chunk.start..chunk.end {
            // SAFETY: batches disjoint across chunks.
            let gibatch = unsafe {
                std::slice::from_raw_parts_mut(
                    (gi.base as *mut f32).add(b * steps * in_ch),
                    steps * in_ch,
                )
            };
            let gbatch = &gd[b * out_steps * out_ch..(b + 1) * out_steps * out_ch];
            for t in 0..out_steps {
                let grow = &gbatch[t * out_ch..(t + 1) * out_ch];
                for k in 0..kernel {
                    let girow =
                        &mut gibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                    let wslab = &wd[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                    for (c, gv) in girow.iter_mut().enumerate() {
                        let wrow = &wslab[c * out_ch..(c + 1) * out_ch];
                        let mut acc = 0.0f32;
                        for (&g, &w) in grow.iter().zip(wrow) {
                            acc += g * w;
                        }
                        *gv += acc;
                    }
                }
            }
        }
    });

    for b in 0..batch {
        let ibatch = &id[b * steps * in_ch..(b + 1) * steps * in_ch];
        let gbatch = &gd[b * out_steps * out_ch..(b + 1) * out_steps * out_ch];
        for t in 0..out_steps {
            let grow = &gbatch[t * out_ch..(t + 1) * out_ch];
            for k in 0..kernel {
                let irow = &ibatch[(t * stride + k) * in_ch..(t * stride + k + 1) * in_ch];
                let gwslab =
                    &mut grad_weights.data_mut()[k * in_ch * out_ch..(k + 1) * in_ch * out_ch];
                for (c, &iv) in irow.iter().enumerate() {
                    if iv == 0.0 {
                        continue;
                    }
                    let gwrow = &mut gwslab[c * out_ch..(c + 1) * out_ch];
                    for (gw, &g) in gwrow.iter_mut().zip(grow) {
                        *gw += iv * g;
                    }
                }
            }
        }
    }
    Ok((grad_input, grad_weights))
}

/// Shares a mutable base pointer across scoped threads for disjoint-row
/// writes.
struct RawRows {
    base: usize,
}
unsafe impl Sync for RawRows {}
