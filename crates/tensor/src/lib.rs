//! Dense `f32` tensor library backing the `dlframe` neural-network framework.
//!
//! The CANDLE P1 benchmarks need exactly four kinds of kernel: dense matrix
//! products (MLP layers in P1B1/P1B2/P1B3), 1-D convolution and max-pooling
//! (the NT3 convolutional classifier), elementwise maps, and reductions.
//! This crate implements those from scratch with deterministic, chunked
//! parallelism from `parx` — no BLAS, no external array crate — so the whole
//! reproduction builds offline and runs identically everywhere.
//!
//! Layout is always row-major and owned (`Vec<f32>`); views are expressed as
//! `(offset, rows, cols)` slices where needed. That is deliberately simpler
//! than a general strided tensor: every use in the workspace is covered, and
//! the flat layout keeps the hot kernels readable and autovectorizable.

mod conv;
mod gemm;
mod init;
mod matmul;
mod ops;
pub mod reference;
mod shape;

pub use conv::{
    conv1d_backward, conv1d_backward_ws, conv1d_forward, conv1d_forward_ws, conv1d_output_len,
    maxpool1d_backward, maxpool1d_backward_ws, maxpool1d_forward, maxpool1d_forward_ws,
    pool1d_output_len,
};
pub use gemm::{
    gemm_into, gemm_into_with_threads, gemm_slice, sigmoid, with_scratch, Epilogue, FusedAct,
    GemmMode, Workspace, MR, NR,
};
pub use init::{glorot_uniform, he_normal, Initializer};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b};
pub use shape::{Shape, MAX_RANK};

/// Errors produced by tensor constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the dimensions.
    LengthMismatch { expected: usize, actual: usize },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch { left: Shape, right: Shape },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "incompatible shapes {left} and {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major, owned `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Self {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Wraps existing data in a tensor.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.volume()).map(&mut f).collect();
        Self { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or indices are out of range.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (rows, cols) = self.shape.as_2d();
        assert!(
            row < rows && col < cols,
            "index ({row},{col}) out of {rows}x{cols}"
        );
        self.data[row * cols + col]
    }

    /// Mutable element access for rank-2 tensors.
    pub fn at2_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        let (rows, cols) = self.shape.as_2d();
        assert!(
            row < rows && col < cols,
            "index ({row},{col}) out of {rows}x{cols}"
        );
        &mut self.data[row * cols + col]
    }

    /// Borrow of one row of a rank-2 tensor.
    pub fn row(&self, row: usize) -> &[f32] {
        let (rows, cols) = self.shape.as_2d();
        assert!(row < rows, "row {row} out of {rows}");
        &self.data[row * cols..(row + 1) * cols]
    }

    /// Copies the given rows (by index) of a rank-2 tensor into a new tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let (_, cols) = self.shape.as_2d();
        let mut out = Tensor::zeros([indices.len(), cols]);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Copies the given rows of a rank-2 tensor into `out`, reshaping it to
    /// `(indices.len(), cols)`. Allocation-free once `out`'s buffer is large
    /// enough — the batch-assembly primitive of the training hot path.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        let (_, cols) = self.shape.as_2d();
        out.shape = Shape::new(&[indices.len(), cols]);
        out.data.clear();
        out.data.reserve(indices.len() * cols);
        for &src in indices {
            out.data.extend_from_slice(self.row(src));
        }
    }

    /// Makes `self` an exact copy of `src` (shape and data) without
    /// allocating when the existing buffer has enough capacity.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape = src.shape.clone();
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{}[", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 6], |i| i as f32);
        let r = t.clone().reshape([3, 4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([5, 5]).is_err());
    }

    #[test]
    fn at2_and_row() {
        let t = Tensor::from_fn([3, 4], |i| i as f32);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(2), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn at2_out_of_range_panics() {
        Tensor::zeros([2, 2]).at2(2, 0);
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let t = Tensor::from_fn([4, 2], |i| i as f32);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape().dims(), &[3, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn gather_rows_into_reuses_buffer() {
        let t = Tensor::from_fn([4, 2], |i| i as f32);
        let mut out = Tensor::zeros([3, 2]);
        let ptr = out.data().as_ptr();
        t.gather_rows_into(&[1, 1, 2], &mut out);
        assert_eq!(out.data(), &[2.0, 3.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(out.data().as_ptr(), ptr, "buffer must be reused");
        // Shrinking reshapes too.
        t.gather_rows_into(&[0], &mut out);
        assert_eq!(out.shape().dims(), &[1, 2]);
        assert_eq!(out.data(), &[0.0, 1.0]);
    }

    #[test]
    fn copy_from_matches_clone_without_alloc() {
        let src = Tensor::from_fn([2, 3], |i| i as f32);
        let mut dst = Tensor::zeros([6]);
        let ptr = dst.data().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.data().as_ptr(), ptr, "buffer must be reused");
    }

    #[test]
    fn display_is_compact() {
        let t = Tensor::from_fn([10], |i| i as f32);
        let s = format!("{t}");
        assert!(s.contains('…'));
    }

    #[test]
    fn error_display() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("does not match"));
    }
}
