//! Serving statistics: lock-free counters plus histogram-backed latency
//! summaries.

use parking_lot::Mutex;
use simcore::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared mutable recording state. Counters are atomics (workers bump
/// them per request); histograms sit behind short-lived mutexes that are
/// taken once per request or batch, far off the matmul critical path.
pub(crate) struct StatsInner {
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub batches: AtomicU64,
    pub slo_violations: AtomicU64,
    pub expired: AtomicU64,
    pub latency: Mutex<LogHistogram>,
    pub wait: Mutex<LogHistogram>,
    pub forward: Mutex<LogHistogram>,
}

impl StatsInner {
    pub fn new() -> Self {
        Self {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            slo_violations: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            latency: Mutex::new(LogHistogram::for_latency_seconds()),
            wait: Mutex::new(LogHistogram::for_latency_seconds()),
            forward: Mutex::new(LogHistogram::for_latency_seconds()),
        }
    }

    /// Records one completed request.
    pub fn record_request(&self, wait: Duration, latency: Duration, slo: Option<Duration>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if slo.is_some_and(|target| latency > target) {
            self.slo_violations.fetch_add(1, Ordering::Relaxed);
        }
        self.wait.lock().record(wait.as_secs_f64());
        self.latency.lock().record(latency.as_secs_f64());
    }

    /// Records one dispatched batch's forward time.
    pub fn record_batch(&self, forward: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.forward.lock().record(forward.as_secs_f64());
    }

    /// Snapshot over `elapsed_s` seconds of serving; `worker_restarts`
    /// comes from the worker pool, which owns that counter.
    pub fn report(&self, elapsed_s: f64, worker_restarts: u64) -> ServeReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeReport {
            completed,
            shed: self.shed.load(Ordering::Relaxed),
            batches,
            slo_violations: self.slo_violations.load(Ordering::Relaxed),
            deadline_expired: self.expired.load(Ordering::Relaxed),
            worker_restarts,
            mean_batch: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            elapsed_s,
            throughput_rps: if elapsed_s > 0.0 {
                completed as f64 / elapsed_s
            } else {
                0.0
            },
            latency: LatencySummary::from_histogram(&self.latency.lock()),
            enqueue_wait: LatencySummary::from_histogram(&self.wait.lock()),
            batch_forward: LatencySummary::from_histogram(&self.forward.lock()),
        }
    }
}

/// Quantile summary of one latency histogram, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact mean.
    pub mean_s: f64,
    /// Median (within histogram bucket error).
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Exact maximum.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        Self {
            count: h.count(),
            mean_s: h.mean(),
            p50_s: h.quantile(0.50),
            p95_s: h.quantile(0.95),
            p99_s: h.quantile(0.99),
            max_s: h.max(),
        }
    }

    /// Renders as `p50/p95/p99/max` milliseconds.
    pub fn to_millis_string(&self) -> String {
        format!(
            "{:.2}/{:.2}/{:.2}/{:.2} ms",
            self.p50_s * 1e3,
            self.p95_s * 1e3,
            self.p99_s * 1e3,
            self.max_s * 1e3
        )
    }
}

/// A point-in-time summary of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests rejected at the queue watermark ([`crate::ServeError::Overloaded`]).
    pub shed: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Completed requests whose end-to-end latency exceeded the SLO
    /// target (0 when no SLO is configured).
    pub slo_violations: u64,
    /// Requests dropped before their batch's forward pass because their
    /// [`crate::ServeHandle::submit_with_deadline`] budget had elapsed.
    pub deadline_expired: u64,
    /// Workers that died mid-batch and were restarted (0 in a healthy
    /// run; see [`crate::ServeError::WorkerCrashed`]).
    pub worker_restarts: u64,
    /// Mean rows per dispatched batch.
    pub mean_batch: f64,
    /// Serving wall-clock covered by this report, seconds.
    pub elapsed_s: f64,
    /// Completed requests per second over `elapsed_s`.
    pub throughput_rps: f64,
    /// End-to-end (submit → reply) per-request latency.
    pub latency: LatencySummary,
    /// Per-request time spent queued before batch dispatch.
    pub enqueue_wait: LatencySummary,
    /// Per-batch forward-pass time.
    pub batch_forward: LatencySummary,
}

impl ServeReport {
    /// Fraction of completed requests that met the SLO (1.0 when no SLO
    /// was configured or nothing completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.completed as f64
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "completed {} | shed {} | batches {} (mean {:.2} rows) | {:.0} req/s | {} restarts",
            self.completed,
            self.shed,
            self.batches,
            self.mean_batch,
            self.throughput_rps,
            self.worker_restarts
        )?;
        writeln!(f, "latency  p50/p95/p99/max: {}", self.latency.to_millis_string())?;
        writeln!(
            f,
            "queue    p50/p95/p99/max: {}",
            self.enqueue_wait.to_millis_string()
        )?;
        write!(
            f,
            "forward  p50/p95/p99/max: {} | SLO attainment {:.1}%",
            self.batch_forward.to_millis_string(),
            self.slo_attainment() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios() {
        let inner = StatsInner::new();
        inner.record_batch(Duration::from_millis(4));
        for _ in 0..8 {
            inner.record_request(
                Duration::from_millis(1),
                Duration::from_millis(5),
                Some(Duration::from_millis(3)),
            );
        }
        let r = inner.report(2.0, 1);
        assert_eq!(r.worker_restarts, 1);
        assert_eq!(r.completed, 8);
        assert_eq!(r.batches, 1);
        assert_eq!(r.mean_batch, 8.0);
        assert_eq!(r.throughput_rps, 4.0);
        assert_eq!(r.slo_violations, 8);
        assert_eq!(r.slo_attainment(), 0.0);
        assert_eq!(r.latency.count, 8);
        assert!(r.latency.max_s >= 0.005 - 1e-9);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = StatsInner::new().report(0.0, 0);
        assert_eq!(r.completed, 0);
        assert_eq!(r.throughput_rps, 0.0);
        assert_eq!(r.mean_batch, 0.0);
        assert_eq!(r.slo_attainment(), 1.0);
        assert!(r.to_string().contains("completed 0"));
    }
}
