//! Deterministic load generation.
//!
//! Two standard driver shapes from the serving literature:
//!
//! * **closed loop** — `clients` concurrent clients, each submitting its
//!   next request only after the previous reply (throughput-oriented;
//!   concurrency, not arrival rate, is the control variable);
//! * **open loop** — requests arrive on an exponential (Poisson) arrival
//!   process at a target rate regardless of completion, the shape that
//!   exposes queueing collapse and makes load shedding observable.
//!
//! Both draw every feature row from `xrng` as a pure function of
//! `(seed, request index)`, so two runs against the same model must
//! produce bit-identical predictions — summarized in an
//! order-independent [`LoadReport::output_hash`] that tests compare
//! across batching configurations and worker counts.

use crate::{ServeError, ServeHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xrng::RandomSource;

/// The deterministic feature row for request `index` of stream `seed`:
/// `features` uniform draws in `[-1, 1)` from an independent substream.
pub fn request_row(seed: u64, index: u64, features: usize) -> Vec<f32> {
    let mut rng = xrng::seeded(xrng::derive_seed(seed, index));
    (0..features).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Closed-loop driver parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Concurrent clients (threads).
    pub clients: usize,
    /// Requests each client issues sequentially.
    pub requests_per_client: usize,
    /// Feature width of every request row.
    pub features: usize,
    /// Workload seed (request rows are a pure function of it).
    pub seed: u64,
}

/// Open-loop driver parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target arrival rate, requests per second.
    pub rate_rps: f64,
    /// Total requests to issue.
    pub requests: usize,
    /// Feature width of every request row.
    pub features: usize,
    /// Workload seed for both rows and inter-arrival gaps.
    pub seed: u64,
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Requests admitted by the engine.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Submissions shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests that failed for any other reason.
    pub errors: u64,
    /// Driver wall-clock, seconds.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Order-independent hash over `(request index, output bits)` of
    /// every completed request — equal hashes mean bit-identical served
    /// predictions for the same workload.
    pub output_hash: u64,
}

/// Hash of one completed request, mixed commutatively into the report
/// hash so completion order does not matter.
fn request_hash(index: u64, output: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ index.wrapping_mul(0x100_0000_01b3);
    for &v in output {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(17);
    }
    h
}

/// Runs a closed loop: each of `clients` threads keeps exactly one
/// request outstanding. Overloaded submissions are retried after a short
/// backoff (a closed loop cannot make progress by dropping work), with
/// each retry counted in [`LoadReport::shed`].
pub fn run_closed_loop(handle: &ServeHandle, cfg: &ClosedLoopConfig) -> LoadReport {
    assert!(cfg.clients >= 1, "closed loop needs at least one client");
    let completed = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let hash = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let handle = handle.clone();
            let (completed, shed, errors, hash) = (&completed, &shed, &errors, &hash);
            scope.spawn(move || {
                for k in 0..cfg.requests_per_client {
                    let index = (client * cfg.requests_per_client + k) as u64;
                    let row = request_row(cfg.seed, index, cfg.features);
                    loop {
                        match handle.predict(row.clone()) {
                            Ok(p) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                                hash.fetch_add(
                                    request_hash(index, &p.output),
                                    Ordering::Relaxed,
                                );
                                break;
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let completed = completed.into_inner();
    LoadReport {
        submitted: completed + errors.load(Ordering::Relaxed),
        completed,
        shed: shed.into_inner(),
        errors: errors.into_inner(),
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        output_hash: hash.into_inner(),
    }
}

/// Runs an open loop: submissions are paced on a Poisson arrival process
/// at `rate_rps` and never retried — an overloaded engine sheds them,
/// which is exactly the behaviour this driver exists to measure. Replies
/// are collected on a separate thread so slow completions do not distort
/// the arrival process.
pub fn run_open_loop(handle: &ServeHandle, cfg: &OpenLoopConfig) -> LoadReport {
    assert!(cfg.rate_rps > 0.0, "open loop needs a positive rate");
    let completed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let hash = AtomicU64::new(0);
    let mut shed = 0u64;
    let mut submitted = 0u64;
    let start = Instant::now();
    let mut gap_rng = xrng::seeded(xrng::derive_seed(cfg.seed, u64::MAX));
    std::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<(u64, crate::Ticket)>();
        let (completed, errors, hash) = (&completed, &errors, &hash);
        scope.spawn(move || {
            while let Ok((index, ticket)) = rx.recv() {
                match ticket.wait() {
                    Ok(p) => {
                        completed.fetch_add(1, Ordering::Relaxed);
                        hash.fetch_add(request_hash(index, &p.output), Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });
        let mut next_arrival = 0.0f64;
        for index in 0..cfg.requests as u64 {
            // Exponential inter-arrival gap via inverse transform.
            let u = gap_rng.next_f64();
            next_arrival += -(1.0 - u).ln() / cfg.rate_rps;
            let target = start + Duration::from_secs_f64(next_arrival);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let row = request_row(cfg.seed, index, cfg.features);
            match handle.submit(row) {
                Ok(ticket) => {
                    submitted += 1;
                    let _ = tx.send((index, ticket));
                }
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(tx);
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let completed = completed.into_inner();
    LoadReport {
        submitted,
        completed,
        shed,
        errors: errors.into_inner(),
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        output_hash: hash.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServeEngine};
    use dlframe::{Activation, Dense, Loss, Optimizer, Sequential};
    use std::sync::Arc;

    fn model(seed: u64) -> Arc<Sequential> {
        let mut rng = xrng::seeded(seed);
        let mut m = Sequential::new(seed);
        m.add(Box::new(Dense::new(6, 16, Activation::Relu, &mut rng)));
        m.add(Box::new(Dense::new(16, 3, Activation::Linear, &mut rng)));
        m.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.1));
        Arc::new(m)
    }

    #[test]
    fn request_rows_are_pure_and_distinct() {
        assert_eq!(request_row(1, 0, 8), request_row(1, 0, 8));
        assert_ne!(request_row(1, 0, 8), request_row(1, 1, 8));
        assert_ne!(request_row(1, 0, 8), request_row(2, 0, 8));
        for v in request_row(3, 9, 64) {
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn closed_loop_completes_everything_deterministically() {
        let cfg = ClosedLoopConfig {
            clients: 4,
            requests_per_client: 25,
            features: 6,
            seed: 42,
        };
        let run = || {
            let engine = ServeEngine::start(model(11), ServeConfig::default());
            let r = run_closed_loop(&engine.handle(), &cfg);
            engine.shutdown();
            r
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, 100);
        assert_eq!(a.errors, 0);
        assert_eq!(a.output_hash, b.output_hash, "served outputs must be bit-identical");
        assert!(a.throughput_rps > 0.0);
    }

    #[test]
    fn open_loop_paces_and_collects() {
        let engine = ServeEngine::start(model(12), ServeConfig::default());
        let r = run_open_loop(
            &engine.handle(),
            &OpenLoopConfig {
                rate_rps: 2000.0,
                requests: 100,
                features: 6,
                seed: 7,
            },
        );
        engine.shutdown();
        assert_eq!(r.submitted, 100);
        assert_eq!(r.completed, 100);
        assert_eq!(r.shed, 0);
        // 100 requests at 2000 rps is ~50 ms of arrivals; allow slack.
        assert!(r.elapsed_s < 10.0);
    }

    #[test]
    fn open_loop_sheds_under_overload_without_deadlock() {
        // Tiny capacity, slow flush: most of a fast burst must shed.
        let engine = ServeEngine::start(
            model(13),
            ServeConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(50),
                queue_capacity: 8,
                workers: 1,
                ..Default::default()
            },
        );
        let r = run_open_loop(
            &engine.handle(),
            &OpenLoopConfig {
                rate_rps: 1e6,
                requests: 500,
                features: 6,
                seed: 8,
            },
        );
        let report = engine.shutdown();
        assert!(r.shed > 0, "expected shedding at capacity 8");
        assert_eq!(r.submitted + r.shed, 500);
        assert_eq!(r.completed, r.submitted);
        assert_eq!(report.shed, r.shed, "engine counts what the driver saw");
    }

    #[test]
    fn output_hash_is_order_independent_but_value_sensitive() {
        let a = request_hash(1, &[1.0, 2.0]).wrapping_add(request_hash(2, &[3.0]));
        let b = request_hash(2, &[3.0]).wrapping_add(request_hash(1, &[1.0, 2.0]));
        assert_eq!(a, b);
        assert_ne!(request_hash(1, &[1.0]), request_hash(1, &[-1.0]));
        assert_ne!(request_hash(1, &[1.0]), request_hash(2, &[1.0]));
    }
}
