//! The serving engine: bounded submission, dynamic micro-batching and
//! pooled batch execution.
//!
//! Data path: [`ServeHandle::submit`] reserves an in-flight slot (or sheds
//! with [`ServeError::Overloaded`]) and enqueues the request; a dedicated
//! batcher thread coalesces the queue into batches that flush on
//! `max_batch` or `max_wait`, whichever comes first; each batch runs one
//! forward pass on a [`parx::WorkerPool`] worker against the shared
//! immutable model replica and answers every request in the batch through
//! its one-shot reply channel. The in-flight slot is released when the
//! reply is sent, so the capacity bound covers queued *and* executing
//! requests — memory is bounded end to end.

use crate::stats::StatsInner;
use crate::{ServeError, ServeReport};
use collectives::Timeline;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dlframe::Sequential;
use parx::WorkerPool;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// How often the idle batcher wakes to check for shutdown.
const IDLE_TICK: Duration = Duration::from_millis(10);

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum rows coalesced into one forward pass.
    pub max_batch: usize,
    /// Maximum time the batcher holds an open batch waiting for more
    /// rows. An idle server adds at most this much latency.
    pub max_wait: Duration,
    /// Maximum in-flight requests (queued + executing). Submissions
    /// beyond this are shed with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Worker threads running batched forward passes.
    pub workers: usize,
    /// Optional per-request latency target; completed requests slower
    /// than this are counted in [`ServeReport::slo_violations`].
    pub slo: Option<Duration>,
    /// Fault injection: batch sequence numbers (0-based, in dispatch
    /// order) whose executing worker dies mid-batch. The affected batch's
    /// requests are answered with [`ServeError::WorkerCrashed`], the
    /// worker restarts (counted in [`ServeReport::worker_restarts`]), and
    /// serving continues. Empty in production.
    pub kill_batches: Vec<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            slo: None,
            kill_batches: Vec::new(),
        }
    }
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model's output row for this request.
    pub output: Vec<f32>,
    /// Rows in the batch this request was served in.
    pub batch_size: usize,
    /// Time spent queued before batch dispatch.
    pub enqueue_wait: Duration,
    /// End-to-end submit → reply latency.
    pub latency: Duration,
}

/// A pending request's receipt; resolves via [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<Result<Prediction, ServeError>>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the prediction (or its error) arrives. Returns
    /// [`ServeError::ShuttingDown`] if the engine stopped before
    /// answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

/// One queued inference request.
struct Request {
    features: Vec<f32>,
    enqueued: Instant,
    /// Absolute per-request deadline; a request still queued past it is
    /// answered with [`ServeError::DeadlineExceeded`] instead of being
    /// included in a forward pass.
    deadline: Option<Instant>,
    reply: Sender<Result<Prediction, ServeError>>,
}

/// Shared state the batcher and workers need per batch.
struct Ctx {
    model: Arc<Sequential>,
    stats: Arc<StatsInner>,
    depth: Arc<AtomicUsize>,
    timeline: Option<Timeline>,
    origin: Instant,
    slo: Option<Duration>,
    /// Batches dispatched so far; gives each batch its deterministic
    /// sequence number for fault injection.
    batch_seq: AtomicU64,
    /// Sorted copy of [`ServeConfig::kill_batches`].
    kill_batches: Vec<u64>,
}

/// The submitting half of the engine; cheap to clone, one per client.
pub struct ServeHandle {
    tx: Sender<Request>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
    stopping: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            capacity: self.capacity,
            stopping: Arc::clone(&self.stopping),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl ServeHandle {
    /// Submits one feature row for prediction, failing fast when the
    /// engine is at capacity ([`ServeError::Overloaded`]) or stopping.
    pub fn submit(&self, features: Vec<f32>) -> Result<Ticket, ServeError> {
        self.submit_inner(features, None)
    }

    /// Submits one feature row with a latency `budget`: if the request is
    /// still queued once the budget has elapsed, it is dropped before the
    /// batch forward pass and answered with
    /// [`ServeError::DeadlineExceeded`] — bounded staleness instead of a
    /// reply nobody can use.
    pub fn submit_with_deadline(
        &self,
        features: Vec<f32>,
        budget: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(features, Some(Instant::now() + budget))
    }

    fn submit_inner(
        &self,
        features: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        // Reserve the in-flight slot BEFORE the stopping check (SeqCst,
        // Dekker-style pairing with the shutdown drain): the drain loop
        // only exits once `depth` reaches zero, so a submission that
        // observed `stopping == false` has already published its slot
        // and is guaranteed to be answered. The slot is released by the
        // worker when the reply is sent.
        let depth = self.depth.fetch_add(1, Ordering::SeqCst);
        if self.stopping.load(Ordering::SeqCst) {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::ShuttingDown);
        }
        if depth >= self.capacity {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                depth,
                capacity: self.capacity,
            });
        }
        let (reply, rx) = unbounded();
        let req = Request {
            features,
            enqueued: Instant::now(),
            deadline,
            reply,
        };
        if self.tx.send(req).is_err() {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::ShuttingDown);
        }
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience for closed-loop clients.
    pub fn predict(&self, features: Vec<f32>) -> Result<Prediction, ServeError> {
        self.submit(features)?.wait()
    }

    /// Current in-flight depth (queued + executing).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Configured in-flight capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A running serving engine; dropping or [`ServeEngine::shutdown`] stops it.
pub struct ServeEngine {
    handle: ServeHandle,
    stopping: Arc<AtomicBool>,
    batcher: Option<std::thread::JoinHandle<()>>,
    pool: Arc<WorkerPool>,
    stats: Arc<StatsInner>,
    started: Instant,
}

impl ServeEngine {
    /// Starts serving `model` with `config`.
    ///
    /// # Panics
    /// Panics if `max_batch`, `queue_capacity` or `workers` is zero.
    pub fn start(model: Arc<Sequential>, config: ServeConfig) -> Self {
        Self::build(model, config, None)
    }

    /// Starts serving with batch spans (`enqueue_wait`, `batch_forward`)
    /// recorded to `timeline` for `chrome://tracing` inspection.
    pub fn with_timeline(model: Arc<Sequential>, config: ServeConfig, timeline: Timeline) -> Self {
        Self::build(model, config, Some(timeline))
    }

    fn build(model: Arc<Sequential>, config: ServeConfig, timeline: Option<Timeline>) -> Self {
        assert!(config.max_batch >= 1, "serve: max_batch must be positive");
        assert!(
            config.queue_capacity >= 1,
            "serve: queue_capacity must be positive"
        );
        assert!(config.workers >= 1, "serve: workers must be positive");
        let (tx, rx) = unbounded::<Request>();
        let depth = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(StatsInner::new());
        let stopping = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(WorkerPool::new(config.workers));
        let mut kill_batches = config.kill_batches.clone();
        kill_batches.sort_unstable();
        let ctx = Arc::new(Ctx {
            model,
            stats: Arc::clone(&stats),
            depth: Arc::clone(&depth),
            timeline,
            origin: Instant::now(),
            slo: config.slo,
            batch_seq: AtomicU64::new(0),
            kill_batches,
        });
        let batcher = {
            let pool = Arc::clone(&pool);
            let stopping = Arc::clone(&stopping);
            let cfg = config.clone();
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(rx, ctx, pool, stopping, cfg))
                .expect("failed to spawn serve batcher")
        };
        let handle = ServeHandle {
            tx,
            depth,
            capacity: config.queue_capacity,
            stopping: Arc::clone(&stopping),
            stats: Arc::clone(&stats),
        };
        Self {
            handle,
            stopping,
            batcher: Some(batcher),
            pool,
            stats,
            started: Instant::now(),
        }
    }

    /// Returns a new submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Snapshot of serving stats so far.
    pub fn report(&self) -> ServeReport {
        self.stats
            .report(self.started.elapsed().as_secs_f64(), self.pool.restarts())
    }

    /// Stops accepting requests, drains the queue, waits for in-flight
    /// batches and returns the final stats.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_and_join();
        self.stats
            .report(self.started.elapsed().as_secs_f64(), self.pool.restarts())
    }

    fn stop_and_join(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        self.pool.join();
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The micro-batcher: pulls the queue into batches and hands them to the
/// worker pool.
fn batcher_loop(
    rx: Receiver<Request>,
    ctx: Arc<Ctx>,
    pool: Arc<WorkerPool>,
    stopping: Arc<AtomicBool>,
    cfg: ServeConfig,
) {
    loop {
        match rx.recv_timeout(IDLE_TICK) {
            Ok(first) => {
                let batch = collect_batch(&rx, first, &cfg);
                dispatch(batch, &ctx, &pool);
                // Check between batches too: a loaded engine would
                // otherwise never hit the idle tick and never stop.
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
    // Graceful drain: answer every admitted request. `depth` counts
    // queued + executing requests, and any submission that raced the
    // stop flag has already reserved its slot (SeqCst pairing in
    // `ServeHandle::submit_inner`), so draining until depth reaches zero
    // strands nothing — including requests enqueued *after* the stop
    // flag was set by a submit that won the race.
    loop {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(first) => {
                let mut batch = vec![first];
                while batch.len() < cfg.max_batch {
                    match rx.try_recv() {
                        Ok(r) => batch.push(r),
                        Err(_) => break,
                    }
                }
                dispatch(batch, &ctx, &pool);
            }
            Err(RecvTimeoutError::Timeout) => {
                if ctx.depth.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Fills a batch starting from `first`: flush on `max_batch` rows or
/// `max_wait` elapsed, whichever comes first.
fn collect_batch(rx: &Receiver<Request>, first: Request, cfg: &ServeConfig) -> Vec<Request> {
    let mut batch = Vec::with_capacity(cfg.max_batch.min(64));
    batch.push(first);
    if cfg.max_batch > 1 {
        let deadline = Instant::now() + cfg.max_wait;
        while batch.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
    }
    batch
}

/// Hands one batch to the pool.
fn dispatch(batch: Vec<Request>, ctx: &Arc<Ctx>, pool: &WorkerPool) {
    let ctx = Arc::clone(ctx);
    pool.submit(move || run_batch(batch, &ctx));
}

/// Holds a batch's unanswered requests while the worker executes it. If
/// the worker dies mid-batch (a panic anywhere during assembly or the
/// forward pass), the drop during unwinding still answers every pending
/// request with [`ServeError::WorkerCrashed`] and releases its in-flight
/// slot — a crash must not leak capacity or strand waiting clients.
struct PendingBatch<'a> {
    requests: Vec<Request>,
    ctx: &'a Ctx,
}

impl PendingBatch<'_> {
    /// Takes the requests for normal (non-crash) completion.
    fn take(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.requests)
    }
}

impl Drop for PendingBatch<'_> {
    fn drop(&mut self) {
        for r in self.requests.drain(..) {
            finish(r, Err(ServeError::WorkerCrashed), self.ctx);
        }
    }
}

/// Executes one batch on a worker thread: assemble rows, one forward
/// pass, scatter replies, record stats and timeline spans.
fn run_batch(batch: Vec<Request>, ctx: &Ctx) {
    let dispatched = Instant::now();
    let seq = ctx.batch_seq.fetch_add(1, Ordering::Relaxed);
    // Expired requests are answered (and dropped) *before* the forward
    // pass: running the model for a reply nobody can use wastes the
    // batch's capacity exactly when the queue is deepest.
    let mut live = Vec::with_capacity(batch.len());
    for r in batch {
        if r.deadline.is_some_and(|d| dispatched >= d) {
            ctx.stats.expired.fetch_add(1, Ordering::Relaxed);
            finish(r, Err(ServeError::DeadlineExceeded), ctx);
        } else {
            live.push(r);
        }
    }
    if live.is_empty() {
        return;
    }
    // All rows in a batch must share the first row's width; stragglers
    // are answered individually so they cannot poison the forward pass.
    let width = live[0].features.len();
    let mut pending = PendingBatch {
        requests: Vec::with_capacity(live.len()),
        ctx,
    };
    for r in live {
        if r.features.len() == width {
            pending.requests.push(r);
        } else {
            let msg = format!(
                "feature width {} differs from batch width {width}",
                r.features.len()
            );
            finish(r, Err(ServeError::BadRequest(msg)), ctx);
        }
    }
    if pending.requests.is_empty() {
        return;
    }
    // Injected fault: this worker dies mid-batch. The PendingBatch guard
    // answers the batch with WorkerCrashed on the way down, and the pool
    // restarts the worker.
    if ctx.kill_batches.binary_search(&seq).is_ok() {
        panic!("injected worker death at batch {seq}");
    }
    let n = pending.requests.len();
    let mut data = Vec::with_capacity(n * width);
    for r in &pending.requests {
        data.extend_from_slice(&r.features);
    }
    let x = Tensor::from_vec([n, width], data).expect("batch assembly is shape-exact");
    let forward_start = Instant::now();
    let result = ctx.model.predict(&x);
    let forward = forward_start.elapsed();
    ctx.stats.record_batch(forward);
    if let Some(tl) = &ctx.timeline {
        let rank = worker_rank();
        let earliest = pending
            .requests
            .iter()
            .map(|r| r.enqueued)
            .min()
            .expect("batch is non-empty");
        tl.record(
            "enqueue_wait",
            rank,
            micros_since(ctx.origin, earliest),
            (dispatched - earliest).as_micros() as u64,
        );
        tl.record(
            "batch_forward",
            rank,
            micros_since(ctx.origin, forward_start),
            forward.as_micros() as u64,
        );
    }
    let valid = pending.take();
    match result {
        Ok(out) => {
            let out_width = out.len() / n;
            for (i, r) in valid.into_iter().enumerate() {
                let wait = dispatched - r.enqueued;
                let latency = r.enqueued.elapsed();
                ctx.stats.record_request(wait, latency, ctx.slo);
                let row = out.data()[i * out_width..(i + 1) * out_width].to_vec();
                finish(
                    r,
                    Ok(Prediction {
                        output: row,
                        batch_size: n,
                        enqueue_wait: wait,
                        latency,
                    }),
                    ctx,
                );
            }
        }
        Err(e) => {
            for r in valid {
                finish(r, Err(ServeError::Model(e.clone())), ctx);
            }
        }
    }
}

/// Sends a reply and releases the request's in-flight slot. The send can
/// fail only if the client dropped its ticket; the slot is released
/// either way.
fn finish(r: Request, result: Result<Prediction, ServeError>, ctx: &Ctx) {
    // Release the slot before the reply hand-off: a client that has its
    // reply must observe the slot free too, or a sequential caller can
    // read a stale nonzero depth from an otherwise idle engine.
    ctx.depth.fetch_sub(1, Ordering::AcqRel);
    let _ = r.reply.send(result);
}

/// Timeline lane for the current pool worker, parsed from the
/// `parx-worker-N` thread name (0 if unnamed).
fn worker_rank() -> usize {
    std::thread::current()
        .name()
        .and_then(|n| n.rsplit('-').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Microseconds from `origin` to `t`, saturating at 0.
fn micros_since(origin: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(origin).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlframe::{Activation, Dense, Loss, Optimizer};

    /// A small deterministic MLP (untrained weights are fine: inference
    /// is a pure function of the weights).
    fn model(seed: u64, in_dim: usize, out_dim: usize) -> Arc<Sequential> {
        let mut rng = xrng::seeded(seed);
        let mut m = Sequential::new(seed);
        m.add(Box::new(Dense::new(in_dim, 32, Activation::Relu, &mut rng)));
        m.add(Box::new(Dense::new(32, out_dim, Activation::Linear, &mut rng)));
        m.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.1));
        Arc::new(m)
    }

    fn row(i: usize, width: usize) -> Vec<f32> {
        (0..width).map(|j| ((i * width + j) % 13) as f32 * 0.1).collect()
    }

    #[test]
    fn serves_correct_predictions() {
        let m = model(1, 8, 3);
        let engine = ServeEngine::start(Arc::clone(&m), ServeConfig::default());
        let handle = engine.handle();
        for i in 0..20 {
            let p = handle.predict(row(i, 8)).unwrap();
            let direct = m
                .predict(&Tensor::from_vec([1, 8], row(i, 8)).unwrap())
                .unwrap();
            assert_eq!(p.output, direct.data(), "request {i}");
            assert!(p.batch_size >= 1);
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 20);
        assert_eq!(report.shed, 0);
        assert!(report.batches >= 1 && report.batches <= 20);
        assert_eq!(report.latency.count, 20);
    }

    #[test]
    fn batch_one_config_never_coalesces() {
        let m = model(2, 4, 2);
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 1,
                workers: 2,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let tickets: Vec<_> = (0..16).map(|i| handle.submit(row(i, 4)).unwrap()).collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().batch_size, 1);
        }
        let report = engine.shutdown();
        assert_eq!(report.batches, 16);
        assert_eq!(report.mean_batch, 1.0);
    }

    #[test]
    fn dynamic_batching_coalesces_queued_requests() {
        let m = model(3, 6, 2);
        // One worker and a generous flush window: a burst submitted while
        // the queue is held open must coalesce.
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(50),
                workers: 1,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let tickets: Vec<_> = (0..32).map(|i| handle.submit(row(i, 6)).unwrap()).collect();
        let mut max_seen = 0;
        for t in tickets {
            max_seen = max_seen.max(t.wait().unwrap().batch_size);
        }
        assert!(max_seen > 1, "no coalescing observed (max batch {max_seen})");
        let report = engine.shutdown();
        assert!(report.mean_batch > 1.0);
        assert!(report.batches < 32);
    }

    #[test]
    fn overload_sheds_fast_without_deadlock() {
        let m = model(4, 4, 2);
        // Hold the batcher's first batch open so admitted requests stay
        // in flight, then overflow the capacity.
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(600),
                queue_capacity: 4,
                workers: 1,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let tickets: Vec<_> = (0..4).map(|i| handle.submit(row(i, 4)).unwrap()).collect();
        // Queue is at the watermark: further submissions shed immediately.
        for i in 4..8 {
            match handle.submit(row(i, 4)) {
                Err(ServeError::Overloaded { depth, capacity }) => {
                    assert_eq!(capacity, 4);
                    assert!(depth >= 4);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        // Admitted requests still complete after the flush window.
        for t in tickets {
            t.wait().unwrap();
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 4);
        assert_eq!(report.shed, 4);
    }

    #[test]
    fn mismatched_width_rejected_individually() {
        let m = model(5, 8, 2);
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                workers: 1,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let good = handle.submit(row(0, 8)).unwrap();
        let bad = handle.submit(row(1, 5)).unwrap();
        assert!(good.wait().is_ok());
        assert!(matches!(bad.wait(), Err(ServeError::BadRequest(_))));
        engine.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions_and_drains_queue() {
        let m = model(6, 4, 2);
        let engine = ServeEngine::start(
            Arc::clone(&m),
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let tickets: Vec<_> = (0..8).map(|i| handle.submit(row(i, 4)).unwrap()).collect();
        let report = engine.shutdown();
        // Every admitted request was answered before shutdown returned.
        assert_eq!(report.completed, 8);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert!(matches!(
            handle.submit(row(9, 4)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn timeline_records_batch_spans() {
        let m = model(7, 4, 2);
        let tl = Timeline::new();
        let engine = ServeEngine::with_timeline(m, ServeConfig::default(), tl.clone());
        let handle = engine.handle();
        for i in 0..6 {
            handle.predict(row(i, 4)).unwrap();
        }
        engine.shutdown();
        let events = tl.events();
        assert!(events.iter().any(|e| e.name == "enqueue_wait"));
        assert!(events.iter().any(|e| e.name == "batch_forward"));
        // Spans pair up: one wait span per forward span.
        assert_eq!(
            events.iter().filter(|e| e.name == "enqueue_wait").count(),
            events.iter().filter(|e| e.name == "batch_forward").count()
        );
        let json = tl.to_chrome_trace();
        assert!(json.contains("batch_forward"));
    }

    #[test]
    fn slo_violations_counted() {
        let m = model(8, 4, 2);
        // Zero-duration SLO: every completed request violates it.
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                slo: Some(Duration::from_secs(0)),
                ..Default::default()
            },
        );
        let handle = engine.handle();
        for i in 0..5 {
            handle.predict(row(i, 4)).unwrap();
        }
        let report = engine.shutdown();
        assert_eq!(report.slo_violations, 5);
        assert_eq!(report.slo_attainment(), 0.0);
    }

    #[test]
    fn killed_worker_restarts_and_serving_continues() {
        let m = model(10, 4, 2);
        // Batch-1 mode makes batch sequence numbers align with requests:
        // batch 2 (the third) is killed mid-execution.
        let engine = ServeEngine::start(
            Arc::clone(&m),
            ServeConfig {
                max_batch: 1,
                workers: 2,
                kill_batches: vec![2],
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let mut crashed = 0;
        let mut completed = 0;
        for i in 0..12 {
            match handle.predict(row(i, 4)) {
                Ok(p) => {
                    // Served rows stay bit-identical to direct inference.
                    let direct = m
                        .predict(&Tensor::from_vec([1, 4], row(i, 4)).unwrap())
                        .unwrap();
                    assert_eq!(p.output, direct.data());
                    completed += 1;
                }
                Err(ServeError::WorkerCrashed) => crashed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(crashed, 1, "exactly the killed batch fails");
        assert_eq!(completed, 11);
        // No leaked in-flight slots: the engine is idle again.
        assert_eq!(handle.depth(), 0);
        let report = engine.shutdown();
        assert_eq!(report.worker_restarts, 1);
        assert_eq!(report.completed, 11);
    }

    #[test]
    fn expired_requests_drop_before_batch_forward() {
        let m = model(11, 4, 2);
        // A long flush window guarantees the queued request's deadline
        // elapses before its batch dispatches.
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(80),
                workers: 1,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let expired = handle
            .submit_with_deadline(row(0, 4), Duration::from_millis(1))
            .unwrap();
        let fresh = handle
            .submit_with_deadline(row(1, 4), Duration::from_secs(30))
            .unwrap();
        assert!(matches!(expired.wait(), Err(ServeError::DeadlineExceeded)));
        assert!(fresh.wait().is_ok());
        assert_eq!(handle.depth(), 0, "expired request leaked its slot");
        let report = engine.shutdown();
        assert_eq!(report.deadline_expired, 1);
        assert_eq!(report.completed, 1);
        // The expired request never entered a forward pass: the batch's
        // latency histogram saw only the fresh request.
        assert_eq!(report.latency.count, 1);
    }

    #[test]
    fn fully_expired_batch_runs_no_forward() {
        let m = model(12, 4, 2);
        // max_batch above the submission count: the batch holds for the
        // full 60 ms flush window, past every 1 ms deadline.
        let engine = ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(60),
                workers: 1,
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                handle
                    .submit_with_deadline(row(i, 4), Duration::from_millis(1))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert!(matches!(t.wait(), Err(ServeError::DeadlineExceeded)));
        }
        let report = engine.shutdown();
        assert_eq!(report.deadline_expired, 4);
        assert_eq!(report.completed, 0);
        // No forward pass ran for the all-expired batch.
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn shutdown_under_load_answers_every_admitted_request() {
        use std::sync::atomic::AtomicU64;
        // Regression for the submit-vs-drain race: a submission that
        // observes `stopping == false` just as shutdown begins must still
        // be served — previously the drain loop could finish before the
        // racing request hit the queue, stranding its ticket.
        for round in 0..5u64 {
            let m = model(20 + round, 4, 2);
            let engine = ServeEngine::start(
                m,
                ServeConfig {
                    max_batch: 8,
                    max_wait: Duration::from_micros(200),
                    queue_capacity: 4096,
                    workers: 2,
                    ..Default::default()
                },
            );
            let handle = engine.handle();
            let admitted = AtomicU64::new(0);
            let answered = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for c in 0..4u64 {
                    let handle = handle.clone();
                    let (admitted, answered) = (&admitted, &answered);
                    scope.spawn(move || {
                        for i in 0..300u64 {
                            match handle.submit(row((c * 1000 + i) as usize, 4)) {
                                Ok(t) => {
                                    admitted.fetch_add(1, Ordering::Relaxed);
                                    // Every admitted ticket must resolve to a
                                    // real prediction, never hang or error.
                                    t.wait().expect("admitted request stranded by shutdown");
                                    answered.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServeError::ShuttingDown) => break,
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    });
                }
                // Stop mid-stream while the submitters are racing.
                std::thread::sleep(Duration::from_millis(2));
                let report = engine.shutdown();
                assert_eq!(report.shed, 0);
            });
            let (a, b) = (admitted.into_inner(), answered.into_inner());
            assert_eq!(a, b, "round {round}: {a} admitted but only {b} answered");
        }
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_max_batch_panics() {
        let m = model(9, 4, 2);
        ServeEngine::start(
            m,
            ServeConfig {
                max_batch: 0,
                ..Default::default()
            },
        );
    }
}
