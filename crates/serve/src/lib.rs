//! `serve` — a batched inference serving engine for trained
//! [`dlframe::Sequential`] models.
//!
//! The paper's central lesson is that end-to-end performance is set by the
//! pipeline *around* the model (its §4–5 attribute most CANDLE runtime to
//! `read_csv`, not training math). Serving has the same shape: a single
//! request's forward pass is cheap, so throughput is determined by how
//! requests are queued, coalesced and dispatched. This crate provides that
//! pipeline:
//!
//! * a **bounded submission queue** — [`ServeHandle::submit`] fails fast
//!   with [`ServeError::Overloaded`] once the number of in-flight requests
//!   reaches the configured capacity (load shedding instead of unbounded
//!   memory growth and collapse);
//! * a **dynamic micro-batcher** — requests are coalesced into batches
//!   that flush on `max_batch` *or* `max_wait`, whichever comes first, so
//!   a loaded server amortizes per-forward overhead while an idle server
//!   adds at most `max_wait` latency;
//! * a **`parx`-pooled worker set** — batched forward passes run on
//!   shared, immutable model replicas (`Arc<Sequential>`, enabled by
//!   `dlframe`'s `predict(&self)` inference path), so no weight copies and
//!   no locks on the hot path;
//! * **latency SLO instrumentation** — per-request end-to-end latency,
//!   per-request queue wait and per-batch forward time are recorded into
//!   [`simcore::LogHistogram`]s (p50/p95/p99/max) together with an
//!   optional SLO violation counter;
//! * **timeline integration** — each batch emits `enqueue_wait` and
//!   `batch_forward` spans to a [`collectives::Timeline`], viewable in
//!   `chrome://tracing` exactly like the training-side traces;
//! * a **deterministic load generator** — closed-loop and open-loop
//!   drivers seeded from `xrng`, with an order-independent output hash so
//!   tests can assert served predictions are bit-identical across batch
//!   sizes and worker counts.
//!
//! Everything in the batch path preserves bit-exactness: `tensor`'s
//! matmul accumulates each output row independently of the batch's other
//! rows, so a row served in a 16-row batch equals the same row served
//! alone, which equals a direct [`dlframe::Sequential::predict`] call.

mod engine;
mod loadgen;
mod stats;

pub use engine::{Prediction, ServeConfig, ServeEngine, ServeHandle, Ticket};
pub use loadgen::{
    request_row, run_closed_loop, run_open_loop, ClosedLoopConfig, LoadReport, OpenLoopConfig,
};
pub use stats::{LatencySummary, ServeReport};

use dlframe::DlError;

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is at capacity; the request was shed
    /// without being enqueued. Clients may retry after backoff.
    Overloaded {
        /// In-flight depth observed at rejection time.
        depth: usize,
        /// Configured in-flight capacity.
        capacity: usize,
    },
    /// The engine is shutting down (or has shut down) and no longer
    /// accepts or answers requests.
    ShuttingDown,
    /// The request's [`crate::ServeHandle::submit_with_deadline`] budget
    /// elapsed while it was still queued; it was dropped before the
    /// batch forward pass.
    DeadlineExceeded,
    /// The request was malformed (e.g. feature width differs from the
    /// rest of its batch's — and therefore the model's — input width).
    BadRequest(String),
    /// The model rejected the batched forward pass.
    Model(DlError),
    /// The worker executing this request's batch died mid-batch (e.g. an
    /// injected fault). The worker itself restarts and the engine keeps
    /// serving; clients may safely retry.
    WorkerCrashed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: {depth} in-flight requests (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "serving engine is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline elapsed before batch dispatch")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::WorkerCrashed => {
                write!(f, "worker crashed mid-batch; retry after the restart")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DlError> for ServeError {
    fn from(e: DlError) -> Self {
        ServeError::Model(e)
    }
}
