//! Figures 6–9: strong-scaling performance, power, and accuracy analysis.

use crate::functional::accuracy_sweep;
use crate::report::{format_table, secs, Experiment};
use crate::sweeps::SUMMIT_GPU_SWEEP;
use candle::HyperParams;
use cluster::calib::Bench;
use cluster::run::simulate;
use cluster::{LoadMethod, Machine, RunConfig, RunReport, ScalingMode};

fn strong_run(bench: Bench, workers: usize, batch: usize, method: LoadMethod) -> Option<RunReport> {
    let hp = HyperParams::of(bench);
    simulate(
        &hp.workload(),
        &RunConfig {
            machine: Machine::Summit,
            workers,
            batch_size: batch,
            scaling: ScalingMode::Strong,
            load_method: method,
        },
    )
    .ok()
}

/// Renders the (a) performance panel shared by Figures 6/8/9: time in
/// training ("TensorFlow"), data loading, and total runtime for two batch
/// sizes.
fn strong_perf_panel(bench: Bench, batch_a: usize, batch_b: usize) -> String {
    let mut rows = Vec::new();
    for &gpus in &SUMMIT_GPU_SWEEP {
        let a = strong_run(bench, gpus, batch_a, LoadMethod::PandasDefault);
        let b = strong_run(bench, gpus, batch_b, LoadMethod::PandasDefault);
        if let Some(a) = a {
            rows.push(vec![
                gpus.to_string(),
                secs(a.train_s),
                secs(a.data_load_s),
                secs(a.total_s),
                b.map_or("-".into(), |b| secs(b.total_s)),
                if a.data_load_s > a.train_s {
                    "load-bound".into()
                } else {
                    "compute-bound".into()
                },
            ]);
        }
    }
    format_table(
        &[
            "GPUs",
            &format!("TensorFlow B={batch_a}"),
            "Data Loading",
            &format!("Total B={batch_a}"),
            &format!("Total B={batch_b}"),
            "regime",
        ],
        &rows,
    )
}

/// Figure 6: Horovod NT3 on Summit — (a) runtime components for batch 20
/// vs 40; (b) training accuracy vs GPUs (real training, scaled budget).
pub fn fig6(quick: bool) -> Experiment {
    let mut text = String::from("(a) Performance (modelled, Summit strong scaling):\n");
    text.push_str(&strong_perf_panel(Bench::Nt3, 20, 40));

    text.push_str("\n(b) Training accuracy vs workers (real training; scaled epoch budget):\n");
    let budget = if quick { 16 } else { 32 };
    let workers: &[usize] = if quick {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut rows = Vec::new();
    for batch in [20usize, 40] {
        for p in accuracy_sweep(Bench::Nt3, budget, workers, batch, 6) {
            rows.push(vec![
                batch.to_string(),
                p.workers.to_string(),
                p.epochs_per_worker.to_string(),
                p.train_accuracy.map_or("-".into(), |a| format!("{a:.3}")),
                format!("{:.3}", p.test_accuracy),
            ]);
        }
    }
    text.push_str(&format_table(
        &["batch", "workers", "epochs/worker", "train acc", "test acc"],
        &rows,
    ));
    Experiment {
        id: "fig6",
        title: "Horovod NT3 on Summit (performance and accuracy)",
        text,
    }
}

/// Figure 7: (a) GPU power over time on 384 GPUs; (b) the Horovod timeline
/// with broadcast and allreduce activity.
pub fn fig7() -> Experiment {
    let report = strong_run(Bench::Nt3, 384, 20, LoadMethod::PandasDefault)
        .expect("384-GPU NT3 run is feasible");
    let mut text = String::from("(a) GPU power over time (nvidia-smi-style 1 Hz samples):\n");
    // Downsample the trace for the report: every 20th second.
    let rows: Vec<Vec<String>> = report
        .power
        .samples
        .iter()
        .step_by(20)
        .map(|(t, w)| vec![format!("{t:.0}s"), format!("{w:.0}W")])
        .collect();
    text.push_str(&format_table(&["time", "GPU power"], &rows));
    text.push_str("\n(b) Horovod timeline (Chrome-trace events):\n");
    let events = report.timeline.events();
    let rows: Vec<Vec<String>> = events
        .iter()
        .take(12)
        .map(|e| {
            vec![
                e.name.clone(),
                format!("{:.2}s", e.start_us as f64 / 1e6),
                format!("{:.2}s", e.dur_us as f64 / 1e6),
            ]
        })
        .collect();
    text.push_str(&format_table(&["activity", "start", "duration"], &rows));
    text.push_str(&format!(
        "\nbroadcast span: {:.2}s (paper: 43.72s on 384 GPUs)\n",
        report.broadcast_s
    ));
    Experiment {
        id: "fig7",
        title: "NT3 on 384 GPUs: power behaviour and Horovod timeline",
        text,
    }
}

/// Figure 8: Horovod P1B1 on Summit — (a) runtime for batch 100 vs 110;
/// (b) training loss (autoencoder) vs workers.
pub fn fig8(quick: bool) -> Experiment {
    let mut text = String::from("(a) Performance (modelled, Summit strong scaling):\n");
    text.push_str(&strong_perf_panel(Bench::P1b1, 100, 110));
    text.push_str("\n(b) Training loss vs workers (real training; scaled budget):\n");
    let budget = if quick { 8 } else { 16 };
    let workers: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let rows: Vec<Vec<String>> = accuracy_sweep(Bench::P1b1, budget, workers, 30, 16)
        .into_iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                p.epochs_per_worker.to_string(),
                format!("{:.4}", p.train_loss),
                format!("{:.4}", p.test_loss),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &["workers", "epochs/worker", "train loss", "test loss"],
        &rows,
    ));
    Experiment {
        id: "fig8",
        title: "Horovod P1B1 on Summit (performance and loss)",
        text,
    }
}

/// Figure 9: Horovod P1B2 on Summit — (a) runtime for batch 60 vs 100;
/// (b) training accuracy vs workers (drops when epochs/worker < 16).
pub fn fig9(quick: bool) -> Experiment {
    let mut text = String::from("(a) Performance (modelled, Summit strong scaling):\n");
    text.push_str(&strong_perf_panel(Bench::P1b2, 60, 100));
    text.push_str("\n(b) Training accuracy vs workers (real training; scaled budget):\n");
    let budget = if quick { 32 } else { 96 };
    let workers: &[usize] = if quick {
        &[1, 2, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32, 96]
    };
    let rows: Vec<Vec<String>> = accuracy_sweep(Bench::P1b2, budget, workers, 20, 26)
        .into_iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                p.epochs_per_worker.to_string(),
                p.train_accuracy.map_or("-".into(), |a| format!("{a:.3}")),
                format!("{:.3}", p.test_accuracy),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &["workers", "epochs/worker", "train acc", "test acc"],
        &rows,
    ));
    Experiment {
        id: "fig9",
        title: "Horovod P1B2 on Summit (performance and accuracy)",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_renders_both_panels() {
        let e = fig6(true);
        assert!(e.text.contains("(a) Performance"));
        assert!(e.text.contains("(b) Training accuracy"));
        assert!(
            e.text.contains("load-bound"),
            "48+ GPUs should be load-bound"
        );
        assert!(
            e.text.contains("compute-bound"),
            "small counts compute-bound"
        );
    }

    #[test]
    fn fig7_power_trace_shows_low_then_high_power() {
        let e = fig7();
        assert!(e.text.contains("45W"), "data-loading power level visible");
        assert!(e.text.contains("mpi_broadcast"));
        assert!(e.text.contains("nccl_allreduce"));
    }

    #[test]
    fn fig8_has_loss_panel() {
        let e = fig8(true);
        assert!(e.text.contains("train loss"));
    }

    #[test]
    fn fig9_has_accuracy_panel() {
        let e = fig9(true);
        assert!(e.text.contains("train acc"));
    }
}
