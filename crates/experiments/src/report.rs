//! Plain-text report rendering.

/// One regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Stable identifier (`"fig6"`, `"table3"`, ...).
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: &'static str,
    /// Rendered text body (aligned columns).
    pub text: String,
}

impl Experiment {
    /// Writes the rendered report to `<dir>/<id>.txt`, creating the
    /// directory if needed. Returns the path written.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.txt", self.id));
        std::fs::write(&path, format!("{self}"))?;
        Ok(path)
    }
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        write!(f, "{}", self.text)
    }
}

/// Renders rows as an aligned text table with a header row and a rule.
///
/// # Panics
/// Panics if any row's width differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with sensible precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["GPUs", "time"],
            &[
                vec!["1".into(), "10.3".into()],
                vec!["384".into(), "22.1".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("GPUs"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers line up.
        assert!(lines[2].ends_with("10.3"));
        assert!(lines[3].ends_with("22.1"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(123.456), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(pct(67.684), "67.68%");
    }

    #[test]
    fn write_to_creates_file() {
        let e = Experiment {
            id: "test_exp",
            title: "T",
            text: "body\n".into(),
        };
        let dir = std::env::temp_dir().join("candle_repro_report_tests");
        let path = e.write_to(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("test_exp"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn experiment_display() {
        let e = Experiment {
            id: "fig1",
            title: "Test",
            text: "body\n".into(),
        };
        let s = e.to_string();
        assert!(s.starts_with("=== fig1 — Test ==="));
        assert!(s.ends_with("body\n"));
    }
}
