//! Old-vs-new kernel comparison: seed loops against the blocked GEMM engine.
//!
//! Tables 3/4 of the paper quantify how much faster the improved data
//! loaders are than the stock `pandas.read_csv` path. This driver applies
//! the same treatment to the compute kernels: it times the retained seed
//! kernels ([`tensor::reference`]) against the blocked/packed GEMM engine
//! that replaced them, at the Dense and Conv1D shapes the benchmarks
//! actually run, and reports the wall-time speedup per kernel.

use crate::report::{format_table, Experiment};
use std::hint::black_box;
use std::time::Instant;
use tensor::{conv1d_backward, conv1d_forward, matmul, matmul_a_bt, matmul_at_b, reference, Tensor};
use xrng::RandomSource;

/// One seed-vs-blocked timing at a fixed shape.
#[derive(Debug, Clone)]
pub struct KernelComparison {
    /// Kernel + shape label.
    pub name: String,
    /// Floating-point operations per invocation (2·m·k·n style count).
    pub flops: f64,
    /// Best-of-reps seed kernel seconds.
    pub seed_s: f64,
    /// Best-of-reps blocked engine seconds.
    pub blocked_s: f64,
    /// True for the NT3-shaped rows the acceptance criteria gate on.
    pub nt3: bool,
}

impl KernelComparison {
    /// Seed time over blocked time.
    pub fn speedup(&self) -> f64 {
        self.seed_s / self.blocked_s.max(1e-12)
    }

    /// Blocked engine throughput in GFLOP/s.
    pub fn blocked_gflops(&self) -> f64 {
        self.flops / self.blocked_s.max(1e-12) / 1e9
    }

    /// Seed kernel throughput in GFLOP/s.
    pub fn seed_gflops(&self) -> f64 {
        self.flops / self.seed_s.max(1e-12) / 1e9
    }
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn filled(shape: impl Into<tensor::Shape>, seed: u64) -> Tensor {
    let mut rng = xrng::seeded(seed);
    Tensor::from_fn(shape, |_| rng.next_f32() - 0.5)
}

/// Times every kernel pair at benchmark shapes. `quick` shrinks the shapes
/// so the debug-mode test suite stays fast; the full mode uses the
/// P1B1-class 512×960×1024 GEMM and an NT3-class convolution.
pub fn measure_kernel_comparison(quick: bool) -> Vec<KernelComparison> {
    let reps = if quick { 2 } else { 3 };
    let mut rows = Vec::new();

    // Dense-layer GEMMs. P1B1's widest layer is the 960→1024 encoder at
    // batch 512; quick mode keeps the inner dimension and shrinks the rest.
    let (m, k, n) = if quick { (64, 960, 64) } else { (512, 960, 1024) };
    let a = filled([m, k], 1);
    let b = filled([k, n], 2);
    let gemm_flops = 2.0 * (m * k * n) as f64;
    rows.push(KernelComparison {
        name: format!("Dense forward A·B {m}x{k}x{n}"),
        flops: gemm_flops,
        seed_s: best_time(reps, || {
            black_box(reference::matmul_seed(&a, &b).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(matmul(&a, &b).unwrap());
        }),
        nt3: false,
    });

    let g = filled([m, n], 3);
    rows.push(KernelComparison {
        name: format!("Dense weight-grad Aᵀ·B {m}x{k}x{n}"),
        flops: gemm_flops,
        seed_s: best_time(reps, || {
            black_box(reference::matmul_at_b_seed(&a, &g).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(matmul_at_b(&a, &g).unwrap());
        }),
        nt3: false,
    });

    // Input gradient G·Wᵀ reuses the forward weight (k×n) as the Bᵀ operand.
    rows.push(KernelComparison {
        name: format!("Dense input-grad A·Bᵀ {m}x{n}x{k}"),
        flops: gemm_flops,
        seed_s: best_time(reps, || {
            black_box(reference::matmul_a_bt_seed(&g, &b).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(matmul_a_bt(&g, &b).unwrap());
        }),
        nt3: false,
    });

    // NT3's dense head: the flattened conv stack feeding a narrow layer.
    let (hm, hk, hn) = if quick { (20, 960, 32) } else { (20, 9600, 200) };
    let ha = filled([hm, hk], 5);
    let hb = filled([hk, hn], 6);
    rows.push(KernelComparison {
        name: format!("NT3 dense head A·B {hm}x{hk}x{hn}"),
        flops: 2.0 * (hm * hk * hn) as f64,
        seed_s: best_time(reps, || {
            black_box(reference::matmul_seed(&ha, &hb).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(matmul(&ha, &hb).unwrap());
        }),
        nt3: true,
    });

    // NT3's second convolution block: multi-channel input, wide filter bank.
    let (cb, steps, in_ch, out_ch, kernel, stride) = if quick {
        (4, 256, 8, 16, 5, 2)
    } else {
        (20, 1024, 16, 128, 20, 1)
    };
    let out_steps = (steps - kernel) / stride + 1;
    let x = filled([cb, steps, in_ch], 7);
    let w = filled([kernel, in_ch, out_ch], 8);
    let conv_flops = 2.0 * (cb * out_steps * kernel * in_ch * out_ch) as f64;
    rows.push(KernelComparison {
        name: format!("NT3 Conv1D fwd b{cb} {steps}x{in_ch}→{out_ch} k{kernel}s{stride}"),
        flops: conv_flops,
        seed_s: best_time(reps, || {
            black_box(reference::conv1d_forward_seed(&x, &w, stride).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(conv1d_forward(&x, &w, stride).unwrap());
        }),
        nt3: true,
    });

    let go = filled([cb, out_steps, out_ch], 9);
    rows.push(KernelComparison {
        name: format!("NT3 Conv1D bwd b{cb} {steps}x{in_ch}→{out_ch} k{kernel}s{stride}"),
        flops: 2.0 * conv_flops,
        seed_s: best_time(reps, || {
            black_box(reference::conv1d_backward_seed(&x, &w, &go, stride).unwrap());
        }),
        blocked_s: best_time(reps, || {
            black_box(conv1d_backward(&x, &w, &go, stride).unwrap());
        }),
        nt3: true,
    });

    rows
}

/// The kernel-engine experiment: seed loops vs the blocked GEMM engine,
/// rendered like the paper's loader-speedup tables. In full mode on a
/// release build it also asserts the blocked engine wins at the NT3
/// shapes (the acceptance bar); debug timings are too distorted to gate
/// on, and quick mode's shrunken shapes are not the NT3 shapes.
pub fn table_kernels(quick: bool) -> Experiment {
    let rows = measure_kernel_comparison(quick);
    if crate::gate::timed_asserts_enabled(quick) {
        for r in rows.iter().filter(|r| r.nt3) {
            assert!(
                r.speedup() > 1.0,
                "blocked engine slower than seed at {}: {:.4}s vs {:.4}s",
                r.name,
                r.blocked_s,
                r.seed_s
            );
        }
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}ms", r.seed_s * 1e3),
                format!("{:.2}ms", r.blocked_s * 1e3),
                format!("{:.2}", r.seed_gflops()),
                format!("{:.2}", r.blocked_gflops()),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    let mut text = String::from(
        "Seed kernels (scalar loops with zero-skip, serial conv weight-grad)\n\
         vs the blocked GEMM engine (packed panels, 8x8 micro-kernel, fused\n\
         epilogue, im2col convolution), best-of-reps wall time:\n",
    );
    text.push_str(&format_table(
        &[
            "kernel @ shape",
            "seed",
            "blocked",
            "seed GF/s",
            "blocked GF/s",
            "speedup",
        ],
        &cells,
    ));
    Experiment {
        id: "table_kernels",
        title: "Seed vs blocked kernel engine wall time at benchmark shapes",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_every_kernel_row() {
        let e = table_kernels(true);
        assert_eq!(e.id, "table_kernels");
        assert!(e.text.contains("Dense forward"));
        assert!(e.text.contains("NT3 Conv1D fwd"));
        assert!(e.text.contains("NT3 Conv1D bwd"));
        assert!(e.text.contains("speedup"));
    }

    #[test]
    fn nt3_rows_are_marked() {
        let rows = measure_kernel_comparison(true);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().filter(|r| r.nt3).count(), 3);
        for r in &rows {
            assert!(r.seed_s > 0.0 && r.blocked_s > 0.0);
            assert!(r.flops > 0.0);
        }
    }

    // Timing comparisons only mean something with optimizations on; the
    // debug-mode suite checks rendering above instead.
    #[cfg(not(debug_assertions))]
    #[test]
    fn blocked_engine_beats_seed_at_nt3_shapes() {
        for r in measure_kernel_comparison(false).iter().filter(|r| r.nt3) {
            assert!(
                r.speedup() > 1.0,
                "{}: blocked {:.4}s vs seed {:.4}s",
                r.name,
                r.blocked_s,
                r.seed_s
            );
        }
    }
}
