//! Figures 18–21: weak-scaling analysis and improvement (8 epochs per
//! worker, up to 3,072 GPUs).

use crate::report::{format_table, pct, secs, Experiment};
use crate::sweeps::{method_comparison_sweep, WEAK_GPU_SWEEP};
use cluster::calib::Bench;
use cluster::{Machine, ScalingMode};

fn weak_fig(
    id: &'static str,
    title: &'static str,
    bench: Bench,
    paper_perf: &str,
    paper_energy: &str,
) -> Experiment {
    let rows = method_comparison_sweep(
        bench,
        Machine::Summit,
        ScalingMode::Weak {
            epochs_per_worker: 8,
        },
        &WEAK_GPU_SWEEP,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                secs(r.original.total_s),
                secs(r.optimized.total_s),
                pct(r.improvement_pct()),
                pct(r.energy_saving_pct()),
            ]
        })
        .collect();
    let min_gain = rows
        .iter()
        .map(|r| r.improvement_pct())
        .fold(f64::INFINITY, f64::min);
    let max_gain = rows
        .iter()
        .map(|r| r.improvement_pct())
        .fold(0.0f64, f64::max);
    let min_e = rows
        .iter()
        .map(|r| r.energy_saving_pct())
        .fold(f64::INFINITY, f64::min);
    let max_e = rows
        .iter()
        .map(|r| r.energy_saving_pct())
        .fold(0.0f64, f64::max);
    let mut text = format_table(
        &[
            "GPUs",
            "total orig",
            "total opt",
            "perf gain",
            "energy saved",
        ],
        &table,
    );
    text.push_str(&format!(
        "\nperf gain range: {}–{} (paper: {paper_perf}); energy saving range: {}–{} (paper: {paper_energy})\n",
        pct(min_gain),
        pct(max_gain),
        pct(min_e),
        pct(max_e),
    ));
    Experiment { id, title, text }
}

/// Figure 18: NT3 weak scaling on Summit (performance + energy).
pub fn fig18() -> Experiment {
    weak_fig(
        "fig18",
        "NT3 weak scaling, original vs optimized (Summit, 8 epochs/GPU)",
        Bench::Nt3,
        "34.23%–52.44%",
        "22.31%–28.59%",
    )
}

/// Figure 19: weak-scaling broadcast timeline on 768 GPUs — the broadcast
/// shrinks and the per-epoch communication blocks are visible.
pub fn fig19() -> Experiment {
    let rows = method_comparison_sweep(
        Bench::Nt3,
        Machine::Summit,
        ScalingMode::Weak {
            epochs_per_worker: 8,
        },
        &[768],
    );
    let r = rows.first().expect("768-GPU point");
    let mut text = format!(
        "broadcast on 768 GPUs: {:.2}s (original) → {:.2}s (optimized); paper: 37.65s → 5.3s (85.92%)\n\n",
        r.original.broadcast_s, r.optimized.broadcast_s
    );
    text.push_str("optimized-run timeline (one communication block per epoch):\n");
    let events = r.optimized.timeline.events();
    let table: Vec<Vec<String>> = events
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                format!("{:.2}s", e.start_us as f64 / 1e6),
                format!("{:.2}s", e.dur_us as f64 / 1e6),
            ]
        })
        .collect();
    text.push_str(&format_table(&["activity", "start", "duration"], &table));
    let blocks = events.iter().filter(|e| e.name == "nccl_allreduce").count();
    text.push_str(&format!(
        "\nallreduce blocks: {blocks} (8 epochs ⇒ 8 blocks)\n"
    ));
    Experiment {
        id: "fig19",
        title: "NT3 weak-scaling timeline on 768 GPUs",
        text,
    }
}

/// Figure 20: P1B1 weak scaling on Summit.
pub fn fig20() -> Experiment {
    weak_fig(
        "fig20",
        "P1B1 weak scaling, original vs optimized (Summit, 8 epochs/GPU)",
        Bench::P1b1,
        "75.24%–79.50%",
        "69.70%–77.11%",
    )
}

/// Figure 21: P1B2 weak scaling on Summit.
pub fn fig21() -> Experiment {
    weak_fig(
        "fig21",
        "P1B2 weak scaling, original vs optimized (Summit, 8 epochs/GPU)",
        Bench::P1b2,
        "48.63%–56.62%",
        "45.86%–53.91%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain_range(text: &str) -> (f64, f64) {
        // Parse "perf gain range: LO%–HI% (paper: ...)"; the separator is a
        // multi-byte en dash, so slice on char indices via '%' positions.
        let needle = "perf gain range: ";
        let start = text.find(needle).expect("range line") + needle.len();
        let rest = &text[start..];
        let numbers: Vec<f64> = rest
            .split('%')
            .take(2)
            .map(|chunk| {
                let digits: String = chunk
                    .chars()
                    .skip_while(|c| !c.is_ascii_digit())
                    .filter(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                digits.parse().expect("gain number")
            })
            .collect();
        (numbers[0], numbers[1])
    }

    #[test]
    fn fig18_nt3_weak_gains_near_paper() {
        // Paper: 34.23%–52.44% perf gain.
        let (lo, hi) = gain_range(&fig18().text);
        assert!(lo > 20.0 && lo < 60.0, "low end {lo}");
        assert!(hi > lo && hi < 75.0, "high end {hi}");
    }

    #[test]
    fn fig18_gain_decreases_with_gpus() {
        // Paper: "the performance improvement percentage decreases with
        // the number of GPUs because of the large Horovod overhead."
        let rows = method_comparison_sweep(
            Bench::Nt3,
            Machine::Summit,
            ScalingMode::Weak {
                epochs_per_worker: 8,
            },
            &WEAK_GPU_SWEEP,
        );
        let first = rows.first().unwrap().improvement_pct();
        let last = rows.last().unwrap().improvement_pct();
        assert!(
            last < first,
            "gain should shrink: {first:.1}% -> {last:.1}%"
        );
    }

    #[test]
    fn fig19_has_eight_blocks() {
        let e = fig19();
        assert!(e.text.contains("allreduce blocks: 8"));
    }

    #[test]
    fn fig20_p1b1_weak_gains_near_paper() {
        // Paper: 75.24%–79.50%.
        let (lo, hi) = gain_range(&fig20().text);
        assert!(lo > 55.0, "low end {lo}");
        assert!(hi < 92.0, "high end {hi}");
    }

    #[test]
    fn fig21_p1b2_weak_gains_near_paper() {
        // Paper: 48.63%–56.62%. Our comm model charges P1B2 more Horovod
        // coordination at 3,072 GPUs than the real system, pulling the low
        // end down; the qualitative shape (large gains, declining with
        // scale) holds. EXPERIMENTS.md records the delta.
        let (lo, hi) = gain_range(&fig21().text);
        assert!(lo > 15.0, "low end {lo}");
        assert!(hi < 60.0, "high end {hi}");
    }
}
