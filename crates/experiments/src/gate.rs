//! Host-capability gating for the timed acceptance asserts.
//!
//! Several tables back their claims with wall-clock measurements, and
//! those asserts are only meaningful when (a) the binary is an optimized
//! build — debug timings are dominated by unoptimized code, (b) the run
//! is in full mode — quick mode's shrunken workloads are too noisy to
//! gate on, and (c) for comparisons that need real parallelism, the host
//! has at least two hardware threads. Every table used to re-derive this
//! trio inline; this module is the single shared answer.

/// True when full-mode wall-clock asserts are meaningful: a release
/// (optimized) build running the full workload.
pub fn timed_asserts_enabled(quick: bool) -> bool {
    !quick && !cfg!(debug_assertions)
}

/// True when the host can physically run two threads in parallel —
/// required before asserting that overlapped or multi-worker execution
/// beats sequential execution.
pub fn multicore_host() -> bool {
    std::thread::available_parallelism()
        .map(|p| p.get() >= 2)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_never_enables_timed_asserts() {
        assert!(!timed_asserts_enabled(true));
    }

    #[test]
    fn full_mode_tracks_build_profile() {
        assert_eq!(timed_asserts_enabled(false), !cfg!(debug_assertions));
    }

    #[test]
    fn multicore_probe_is_consistent() {
        // The probe is pure environment; just pin that it does not panic
        // and agrees with the raw API.
        let raw = std::thread::available_parallelism()
            .map(|p| p.get() >= 2)
            .unwrap_or(false);
        assert_eq!(multicore_host(), raw);
    }
}
