//! Cold-vs-warm dataset cache comparison.
//!
//! The paper stops at optimizing the CSV *parse*; the `datacache` crate
//! removes the repeated parse entirely by persisting binary shards. This
//! driver quantifies that next step twice over:
//!
//! 1. **measured** — a wide NT3-like file is parsed with the real Rust CSV
//!    engine (original and chunked strategies), cold-built into the shard
//!    cache, and warm-loaded back (sequentially and through the
//!    background prefetcher);
//! 2. **modelled** — the calibrated `cluster` simulator's per-rank
//!    data-loading seconds on Summit with every [`LoadMethod`], including
//!    the warm [`LoadMethod::BinaryCache`].

use crate::report::{format_table, Experiment};
use cluster::calib::Bench;
use cluster::{io, LoadMethod, Machine};
use datacache::{CacheStore, Prefetcher};
use dataio::{generate, write_csv_dataset, read_csv, ClassSpec, ReadStrategy, SyntheticSpec};
use std::sync::Arc;
use std::time::Instant;

/// One measured cold/warm comparison on a generated file.
#[derive(Debug, Clone)]
pub struct CacheComparison {
    /// `pandas.read_csv`-style parse seconds.
    pub pandas_s: f64,
    /// Parse throughput of the pandas-style strategy, MiB/s.
    pub pandas_mib_s: f64,
    /// Chunked (`low_memory=False`) parse seconds.
    pub chunked_s: f64,
    /// Chunked parse throughput, MiB/s.
    pub chunked_mib_s: f64,
    /// Cold cache build seconds (parse + shard encode + write).
    pub cold_build_s: f64,
    /// Warm sequential shard load seconds.
    pub warm_load_s: f64,
    /// Warm prefetched load seconds (background double-buffered decode).
    pub warm_prefetch_s: f64,
    /// Prefetcher counters from the warm prefetched load.
    pub prefetch_stats: datacache::PrefetchStats,
}

impl CacheComparison {
    /// Warm-load speedup over the original pandas-style parse.
    pub fn warm_speedup_vs_pandas(&self) -> f64 {
        self.pandas_s / self.warm_load_s.max(1e-9)
    }
}

/// Measures parse-vs-cache times on a generated `rows`×`cols` file split
/// into `shards` shards. Returns `None` if the temp filesystem is
/// unavailable.
pub fn measure_cache_comparison(
    rows: usize,
    cols: usize,
    shards: usize,
) -> Option<CacheComparison> {
    let dir = std::env::temp_dir().join(format!(
        "candle_repro_cache_table_{}_{rows}x{cols}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok()?;
    let csv = dir.join("data.csv");
    let spec = SyntheticSpec {
        rows,
        cols,
        kind: ClassSpec::Classification {
            classes: 2,
            separation: 1.0,
        },
        noise: 0.5,
        seed: 33,
    };
    write_csv_dataset(&csv, &generate(&spec)).ok()?;

    let (_, pandas_stats) = read_csv(&csv, ReadStrategy::PandasDefault).ok()?;
    let (_, chunked_stats) = read_csv(&csv, ReadStrategy::ChunkedLowMemory).ok()?;

    let store = CacheStore::new(dir.join("cache")).ok()?;
    let cold_start = Instant::now();
    let _ = store
        .open_csv(&csv, ReadStrategy::ChunkedLowMemory, shards)
        .ok()?;
    let cold_build_s = cold_start.elapsed().as_secs_f64();

    let warm_start = Instant::now();
    let (ds, outcome) = store
        .open_csv(&csv, ReadStrategy::ChunkedLowMemory, shards)
        .ok()?;
    if !outcome.is_warm() {
        return None;
    }
    ds.load_all().ok()?;
    let warm_load_s = warm_start.elapsed().as_secs_f64();

    let ds = Arc::new(ds);
    let prefetch_start = Instant::now();
    let mut pf = Prefetcher::all(Arc::clone(&ds));
    for item in pf.by_ref() {
        item.ok()?;
    }
    let warm_prefetch_s = prefetch_start.elapsed().as_secs_f64();
    let prefetch_stats = pf.stats();

    std::fs::remove_dir_all(&dir).ok();
    Some(CacheComparison {
        pandas_s: pandas_stats.elapsed.as_secs_f64(),
        pandas_mib_s: pandas_stats.throughput_mib_s(),
        chunked_s: chunked_stats.elapsed.as_secs_f64(),
        chunked_mib_s: chunked_stats.throughput_mib_s(),
        cold_build_s,
        warm_load_s,
        warm_prefetch_s,
        prefetch_stats,
    })
}

/// The cold-vs-warm cache experiment: measured local comparison plus the
/// modelled Summit sweep.
pub fn table_cache(quick: bool) -> Experiment {
    // NT3's geometry is wide-few-rows; quick mode shrinks the width.
    let (rows, cols) = if quick { (160, 4_000) } else { (160, 12_000) };
    let mut text = String::new();
    match measure_cache_comparison(rows, cols, 4) {
        Some(c) => {
            let speedup = |s: f64| format!("{:.2}x", c.pandas_s / s.max(1e-9));
            let measured = format_table(
                &["method", "time", "MiB/s", "vs pandas"],
                &[
                    vec![
                        "pandas-style parse".into(),
                        format!("{:.3}s", c.pandas_s),
                        format!("{:.1}", c.pandas_mib_s),
                        "1.00x".into(),
                    ],
                    vec![
                        "chunked parse".into(),
                        format!("{:.3}s", c.chunked_s),
                        format!("{:.1}", c.chunked_mib_s),
                        speedup(c.chunked_s),
                    ],
                    vec![
                        "cold build (parse+write)".into(),
                        format!("{:.3}s", c.cold_build_s),
                        "-".into(),
                        speedup(c.cold_build_s),
                    ],
                    vec![
                        "warm load (sequential)".into(),
                        format!("{:.3}s", c.warm_load_s),
                        "-".into(),
                        speedup(c.warm_load_s),
                    ],
                    vec![
                        "warm load (prefetched)".into(),
                        format!("{:.3}s", c.warm_prefetch_s),
                        "-".into(),
                        speedup(c.warm_prefetch_s),
                    ],
                ],
            );
            text.push_str(&format!(
                "Measured on a generated NT3-like file ({rows}x{cols}, 4 shards):\n{measured}"
            ));
            text.push_str(&format!(
                "prefetch counters: {} ready hits, {} waits ({:.1}ms blocked), {} decoded\n",
                c.prefetch_stats.ready_hits,
                c.prefetch_stats.waits,
                c.prefetch_stats.wait_time().as_secs_f64() * 1e3,
                c.prefetch_stats.decoded,
            ));
        }
        None => text.push_str("  (temp dir unavailable; measured section skipped)\n"),
    }

    text.push_str("\nModelled per-rank NT3 loading on Summit (train+test, seconds):\n");
    let gpus = [1usize, 6, 48, 384];
    let mut rows_out = Vec::new();
    for method in [
        LoadMethod::PandasDefault,
        LoadMethod::ChunkedLowMemoryFalse,
        LoadMethod::Dask,
        LoadMethod::TurboParallel,
        LoadMethod::BinaryCache,
    ] {
        let mut cells = vec![method.label().to_string()];
        for &g in &gpus {
            let nodes = Machine::Summit.nodes_for(g);
            cells.push(format!(
                "{:.1}",
                io::total_load_seconds(Machine::Summit, Bench::Nt3, method, nodes)
            ));
        }
        rows_out.push(cells);
    }
    text.push_str(&format_table(
        &["method", "1 GPU", "6 GPUs", "48 GPUs", "384 GPUs"],
        &rows_out,
    ));

    Experiment {
        id: "table_cache",
        title: "Cold vs warm dataset cache: measured parse/build/load and modelled Summit sweep",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_load_is_at_least_3x_faster_than_pandas_parse() {
        let c = measure_cache_comparison(160, 8_000, 4).expect("temp fs available");
        assert!(
            c.warm_speedup_vs_pandas() >= 3.0,
            "warm load {:.4}s vs pandas parse {:.4}s ({:.2}x)",
            c.warm_load_s,
            c.pandas_s,
            c.warm_speedup_vs_pandas()
        );
        assert_eq!(
            c.prefetch_stats.ready_hits + c.prefetch_stats.waits,
            c.prefetch_stats.decoded
        );
        assert_eq!(c.prefetch_stats.decoded, 4);
    }

    #[test]
    fn table_renders_measured_and_modelled_sections() {
        let e = table_cache(true);
        assert_eq!(e.id, "table_cache");
        assert!(e.text.contains("binary shard cache (warm)"));
        assert!(e.text.contains("warm load (sequential)"));
        assert!(e.text.contains("prefetch counters"));
    }
}
