//! Figures 11–17: performance and energy improvement from the optimized
//! data loading, under strong scaling on Summit and Theta.

use crate::report::{format_table, pct, secs, Experiment};
use crate::sweeps::{
    method_comparison_sweep, MethodComparisonRow, SUMMIT_GPU_SWEEP, THETA_NODE_SWEEP,
};
use cluster::calib::Bench;
use cluster::{Machine, ScalingMode};

/// Renders an original-vs-optimized comparison table.
fn improvement_table(rows: &[MethodComparisonRow], unit: &str) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                secs(r.original.data_load_s),
                secs(r.optimized.data_load_s),
                secs(r.original.total_s),
                secs(r.optimized.total_s),
                pct(r.improvement_pct()),
                pct(r.energy_saving_pct()),
            ]
        })
        .collect();
    format_table(
        &[
            unit,
            "load orig",
            "load opt",
            "total orig",
            "total opt",
            "perf gain",
            "energy saved",
        ],
        &table_rows,
    )
}

fn improvement_fig(
    id: &'static str,
    title: &'static str,
    bench: Bench,
    machine: Machine,
    sweep: &[usize],
) -> Experiment {
    let rows = method_comparison_sweep(bench, machine, ScalingMode::Strong, sweep);
    let unit = match machine {
        Machine::Summit => "GPUs",
        Machine::Theta => "nodes",
    };
    let best = rows
        .iter()
        .map(|r| r.improvement_pct())
        .fold(0.0f64, f64::max);
    let best_energy = rows
        .iter()
        .map(|r| r.energy_saving_pct())
        .fold(0.0f64, f64::max);
    let mut text = improvement_table(&rows, unit);
    text.push_str(&format!(
        "\nbest: {} performance improvement, {} energy saving\n",
        pct(best),
        pct(best_energy)
    ));
    Experiment { id, title, text }
}

/// Figure 11: NT3 original vs optimized on Summit.
pub fn fig11() -> Experiment {
    improvement_fig(
        "fig11",
        "NT3 performance, original vs optimized (Summit, strong scaling)",
        Bench::Nt3,
        Machine::Summit,
        &SUMMIT_GPU_SWEEP,
    )
}

/// Figure 12: broadcast overhead, original vs optimized, on 384 GPUs.
pub fn fig12() -> Experiment {
    let rows = method_comparison_sweep(
        Bench::Nt3,
        Machine::Summit,
        ScalingMode::Strong,
        &SUMMIT_GPU_SWEEP,
    );
    let mut table = Vec::new();
    for r in &rows {
        let improvement =
            (r.original.broadcast_s - r.optimized.broadcast_s) / r.original.broadcast_s.max(1e-9);
        table.push(vec![
            r.workers.to_string(),
            secs(r.original.broadcast_s),
            secs(r.optimized.broadcast_s),
            pct(improvement * 100.0),
        ]);
    }
    let mut text = format_table(&["GPUs", "bcast orig", "bcast opt", "reduction"], &table);
    let last = rows.last().expect("sweep nonempty");
    text.push_str(&format!(
        "\non 384 GPUs: {:.2}s → {:.2}s (paper: 43.72s → 4.65s, 89.36% reduction)\n",
        last.original.broadcast_s, last.optimized.broadcast_s
    ));
    Experiment {
        id: "fig12",
        title: "Broadcast overhead of NT3, original vs optimized (Summit)",
        text,
    }
}

/// Figure 13: NT3 original vs optimized on Theta.
pub fn fig13() -> Experiment {
    improvement_fig(
        "fig13",
        "NT3 performance and energy, original vs optimized (Theta)",
        Bench::Nt3,
        Machine::Theta,
        &THETA_NODE_SWEEP,
    )
}

/// Figure 14: P1B1 original vs optimized on Summit.
pub fn fig14() -> Experiment {
    improvement_fig(
        "fig14",
        "P1B1 performance and energy, original vs optimized (Summit)",
        Bench::P1b1,
        Machine::Summit,
        &SUMMIT_GPU_SWEEP[..6], // P1B1 needs ≥4 epochs ⇒ at most 96 GPUs
    )
}

/// Figure 15: P1B1 original vs optimized on Theta.
pub fn fig15() -> Experiment {
    improvement_fig(
        "fig15",
        "P1B1 performance and energy, original vs optimized (Theta)",
        Bench::P1b1,
        Machine::Theta,
        &THETA_NODE_SWEEP[..4],
    )
}

/// Figure 16: P1B2 original vs optimized on Summit.
pub fn fig16() -> Experiment {
    improvement_fig(
        "fig16",
        "P1B2 performance and energy, original vs optimized (Summit)",
        Bench::P1b2,
        Machine::Summit,
        &SUMMIT_GPU_SWEEP,
    )
}

/// Figure 17: P1B2 original vs optimized on Theta.
pub fn fig17() -> Experiment {
    improvement_fig(
        "fig17",
        "P1B2 performance and energy, original vs optimized (Theta)",
        Bench::P1b2,
        Machine::Theta,
        &THETA_NODE_SWEEP,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_gain(text: &str) -> f64 {
        // Parse "best: X% performance improvement".
        let needle = "best: ";
        let start = text.find(needle).expect("has best line") + needle.len();
        let rest = &text[start..];
        let end = rest.find('%').expect("has percent");
        rest[..end].parse().expect("parses")
    }

    #[test]
    fn fig11_nt3_summit_improvement_near_paper() {
        // Paper: up to 67.68%.
        let g = best_gain(&fig11().text);
        assert!((55.0..80.0).contains(&g), "NT3 Summit best gain {g}");
    }

    #[test]
    fn fig13_nt3_theta_improvement_near_paper() {
        // Paper: up to 38.46% performance improvement on Theta.
        let g = best_gain(&fig13().text);
        assert!((25.0..55.0).contains(&g), "NT3 Theta best gain {g}");
    }

    #[test]
    fn fig14_p1b1_summit_improvement_near_paper() {
        // Paper: up to 78.25%.
        let g = best_gain(&fig14().text);
        assert!((65.0..88.0).contains(&g), "P1B1 Summit best gain {g}");
    }

    #[test]
    fn fig15_p1b1_theta_improvement_near_paper() {
        // Paper: up to 45.22%.
        let g = best_gain(&fig15().text);
        assert!((30.0..60.0).contains(&g), "P1B1 Theta best gain {g}");
    }

    #[test]
    fn fig16_p1b2_summit_improvement_near_paper() {
        // Paper: up to 55.45%.
        let g = best_gain(&fig16().text);
        assert!((40.0..70.0).contains(&g), "P1B2 Summit best gain {g}");
    }

    #[test]
    fn fig17_p1b2_theta_improvement_near_paper() {
        // Paper: up to 40.72%.
        let g = best_gain(&fig17().text);
        assert!((25.0..55.0).contains(&g), "P1B2 Theta best gain {g}");
    }

    #[test]
    fn fig12_broadcast_reduction_near_paper() {
        let e = fig12();
        assert!(e.text.contains("384"));
        // The reduction column should show a large cut at scale.
        assert!(e.text.contains("paper: 43.72s"));
    }
}
