//! Autoscaled serving fleet vs fixed sizing: SLO attainment and
//! joules per request.
//!
//! The paper's central trade-off — provisioned capacity versus energy —
//! reappears verbatim on the serving side. This driver runs the same
//! seeded diurnal-plus-burst arrival trace through three fleets built
//! from `fleet`'s deterministic virtual-time simulator:
//!
//! * **fixed-mean** — sized for the trace's *mean* rate, admission
//!   control disabled: the burst collapses its queues and the rolling
//!   p99 blows through the SLO;
//! * **fixed-peak** — sized for the trace's *peak* rate: it holds the
//!   SLO everywhere but burns idle watts for the whole run;
//! * **autoscaled** — the SLO-driven control loop with admission
//!   shedding: it holds the SLO through the bursts at a fraction of the
//!   peak fleet's energy.
//!
//! Every run is a pure function of its config (bit-identical decision
//! logs and outcome fingerprints at any thread count), so the SLO and
//! energy assertions below are exact, not statistical.

use crate::report::{format_table, Experiment};
use cluster::Machine;
use fleet::sim::{run_fleet_sim, FleetSimReport, ScalePolicy, ServiceModel, SimFleetConfig};
use fleet::{AutoscaleConfig, Burst, RouterPolicy, TraceConfig};

/// One fleet configuration's measured outcome.
#[derive(Debug, Clone)]
pub struct FleetComparison {
    /// Human label of the sizing policy.
    pub label: &'static str,
    /// Replica count (fixed size, or autoscaler peak).
    pub replicas: usize,
    /// The full simulation report.
    pub report: FleetSimReport,
}

/// The latency objective every fleet is held to (shared with the
/// perfmodel table's fleet-sizing tuner).
pub(crate) const SLO_P99_S: f64 = 0.25;

pub(crate) fn service() -> ServiceModel {
    ServiceModel {
        batch_base_s: 0.002,
        batch_per_row_s: 0.0005,
        max_batch: 8,
    }
}

pub(crate) fn trace(quick: bool) -> TraceConfig {
    if quick {
        TraceConfig {
            seed: 7,
            duration_s: 60.0,
            base_rps: 600.0,
            diurnal_amplitude: 0.25,
            diurnal_period_s: 60.0,
            bursts: vec![
                Burst {
                    start_s: 20.0,
                    duration_s: 5.0,
                    extra_rps: 4000.0,
                },
                Burst {
                    start_s: 40.0,
                    duration_s: 4.0,
                    extra_rps: 5000.0,
                },
            ],
        }
    } else {
        TraceConfig {
            seed: 7,
            duration_s: 1200.0,
            base_rps: 2000.0,
            diurnal_amplitude: 0.25,
            diurnal_period_s: 600.0,
            bursts: vec![
                Burst {
                    start_s: 300.0,
                    duration_s: 60.0,
                    extra_rps: 6000.0,
                },
                Burst {
                    start_s: 700.0,
                    duration_s: 40.0,
                    extra_rps: 9000.0,
                },
            ],
        }
    }
}

/// Largest instantaneous rate the trace actually reaches (the envelope
/// `peak_rps` over-counts when bursts do not overlap).
pub(crate) fn actual_peak_rps(t: &TraceConfig) -> f64 {
    let steps = (t.duration_s * 10.0).ceil() as usize;
    (0..=steps)
        .map(|k| t.rate_at(k as f64 * 0.1))
        .fold(0.0f64, f64::max)
}

pub(crate) fn base_config(quick: bool, scaling: ScalePolicy, shed_wait_frac: f64) -> SimFleetConfig {
    SimFleetConfig {
        trace: trace(quick),
        service: service(),
        router: RouterPolicy::PowerOfTwo,
        scaling,
        slo_p99_s: SLO_P99_S,
        queue_capacity: 4096,
        shed_wait_frac,
        control_interval_s: if quick { 0.5 } else { 1.0 },
        stats_window_s: if quick { 5.0 } else { 10.0 },
        tick_s: 0.1,
        provision_delay_s: if quick { 1.0 } else { 2.0 },
        machine: Machine::Summit,
        threads: 4,
    }
}

/// Runs the three-fleet comparison: fixed-mean, fixed-peak, autoscaled.
pub fn measure_fleet_comparison(quick: bool) -> Vec<FleetComparison> {
    let t = trace(quick);
    let per_replica_rps = service().peak_rps();
    let mean_n = ((t.mean_rps() / per_replica_rps).ceil() as usize).max(1);
    let peak_n = ((actual_peak_rps(&t) / per_replica_rps).ceil() as usize).max(mean_n + 1);
    // Cap the autoscaler at the peak-sized fleet: anything above it is
    // pure overshoot from stale windowed latencies during burst decay.
    let auto = AutoscaleConfig {
        min_replicas: mean_n,
        max_replicas: peak_n,
        slo_p99_s: SLO_P99_S,
        scale_out_frac: 0.6,
        queue_high_per_replica: 64,
        // Generous: an over-provisioned fleet loses batch coalescing
        // (singleton forwards pay the full base cost), which inflates
        // busy-time utilization and would otherwise pin the fleet at
        // its burst size forever.
        scale_in_util: 0.7,
        scale_in_p99_frac: 0.3,
        idle_intervals: 3,
        cooldown_s: if quick { 1.0 } else { 2.0 },
        step_out: 2,
        step_in: 1,
    };
    // Shedding (0.9 of the SLO) must sit *above* the scale-out trigger
    // (0.6): if admission capped latency below the trigger the
    // autoscaler would never see the breach it needs to react to.
    let runs = [
        (
            "fixed-mean",
            mean_n,
            base_config(quick, ScalePolicy::Fixed(mean_n), f64::INFINITY),
        ),
        (
            "fixed-peak",
            peak_n,
            base_config(quick, ScalePolicy::Fixed(peak_n), 0.9),
        ),
        (
            "autoscaled",
            peak_n,
            base_config(quick, ScalePolicy::Auto(auto), 0.9),
        ),
    ];
    runs.into_iter()
        .map(|(label, sized, config)| {
            let report = run_fleet_sim(&config);
            FleetComparison {
                label,
                replicas: match config.scaling {
                    ScalePolicy::Fixed(_) => sized,
                    ScalePolicy::Auto(_) => report.peak_replicas,
                },
                report,
            }
        })
        .collect()
}

/// The fleet-sizing experiment: one burst trace, three capacity policies,
/// with the SLO and energy ordering asserted.
///
/// # Panics
/// Panics if the fixed-mean fleet fails to violate the SLO, if the
/// autoscaled fleet violates it, or if the autoscaler does not spend
/// measurably fewer joules than the fixed-peak fleet.
pub fn table_fleet(quick: bool) -> Experiment {
    let rows = measure_fleet_comparison(quick);
    let mean = &rows[0].report;
    let peak = &rows[1].report;
    let auto = &rows[2].report;

    // The story the table must actually tell, enforced exactly: the
    // virtual-time simulator is deterministic, so these are not flaky.
    assert!(
        mean.worst_window_p99_s > SLO_P99_S,
        "fixed-mean fleet should blow the {SLO_P99_S}s SLO in the burst, worst p99 {:.3}s",
        mean.worst_window_p99_s
    );
    assert!(
        peak.worst_window_p99_s <= SLO_P99_S,
        "fixed-peak fleet should hold the SLO, worst p99 {:.3}s",
        peak.worst_window_p99_s
    );
    assert!(
        auto.worst_window_p99_s <= SLO_P99_S,
        "autoscaled fleet should hold the SLO, worst p99 {:.3}s",
        auto.worst_window_p99_s
    );
    assert!(
        auto.energy_j < 0.9 * peak.energy_j,
        "autoscaler should be measurably cheaper than fixed-peak: {:.0} J vs {:.0} J",
        auto.energy_j,
        peak.energy_j
    );
    assert!(
        auto.joules_per_request < peak.joules_per_request,
        "autoscaler should win on joules/request too"
    );
    assert!(
        !auto.decisions.is_empty(),
        "autoscaled run recorded no scaling decisions"
    );

    let fmt = |c: &FleetComparison| {
        let r = &c.report;
        vec![
            c.label.to_string(),
            c.replicas.to_string(),
            r.offered.to_string(),
            format!("{:.2}%", r.rejection_rate() * 100.0),
            format!("{:.1}", r.worst_window_p99_s * 1e3),
            format!("{:.2}%", r.slo_attainment() * 100.0),
            format!("{:.0}", r.replica_seconds),
            format!("{:.1}", r.energy_j / 1e3),
            format!("{:.0}", r.avg_power_w),
            format!("{:.3}", r.joules_per_request),
        ]
    };
    let table = format_table(
        &[
            "fleet",
            "replicas",
            "offered",
            "rejected",
            "worst p99 ms",
            "SLO attain",
            "replica-s",
            "energy kJ",
            "avg W",
            "J/req",
        ],
        &rows.iter().map(fmt).collect::<Vec<_>>(),
    );
    let t = trace(quick);
    let scale_outs = auto.decisions.iter().filter(|d| d.to > d.from).count();
    let scale_ins = auto.decisions.len() - scale_outs;
    let out_watts: f64 = auto
        .decisions
        .iter()
        .filter(|d| d.to > d.from)
        .map(|d| d.marginal_watts)
        .sum();
    let text = format!(
        "Diurnal + burst arrival trace ({:.0} rps mean, {:.0} rps peak, \
         {:.0}s, SLO p99 <= {:.0} ms) served by three capacity policies:\n{table}\
         autoscaler: {} scale-out / {} scale-in decisions, \
         {:.0} W total marginal scale-out power\n\
         replicas priced with Summit power states: 180 W busy, 40 W idle, \
         45 W warming, 0 W offline\n",
        t.mean_rps(),
        actual_peak_rps(&t),
        t.duration_s,
        SLO_P99_S * 1e3,
        scale_outs,
        scale_ins,
        out_watts,
    );
    Experiment {
        id: "table_fleet",
        title: "Autoscaled serving fleet: SLO attainment vs joules per request",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_table_orders_the_three_policies() {
        let e = table_fleet(true);
        assert_eq!(e.id, "table_fleet");
        assert!(e.text.contains("fixed-mean"));
        assert!(e.text.contains("fixed-peak"));
        assert!(e.text.contains("autoscaled"));
        assert!(e.text.contains("J/req"));
    }

    #[test]
    fn comparison_is_deterministic() {
        let a = measure_fleet_comparison(true);
        let b = measure_fleet_comparison(true);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.report.outcome_fingerprint, y.report.outcome_fingerprint,
                "{} diverged between identical runs",
                x.label
            );
            assert_eq!(x.report.energy_j.to_bits(), y.report.energy_j.to_bits());
        }
    }
}
