//! Extra-P-style performance modeling closed into a loop: fit scaling
//! laws, predict beyond the measured range, tune knobs from the models,
//! and flag points that fall off their own curve.
//!
//! The paper stops at *measuring* scaling; Extra-P (and its DeepScale /
//! Extra-Deep application to deep-learning benchmarks) turns the same
//! measurements into analytic models `c0 + c1·N^a·log2^b(N)` that
//! extrapolate. This 32nd experiment pins that whole pipeline with four
//! sections:
//!
//! 1. **Sim fit + extrapolation** — fit the `cluster` simulator's NT3
//!    strong-scaling seconds and joules on 1–96 workers, hold out 192
//!    (2× beyond the largest fitted scale) and 384 (4×), and assert the
//!    2× prediction lands inside the model's stated error band. The
//!    simulator is deterministic, so this is asserted unconditionally.
//! 2. **Measured fit** — fit real NT3 weak-scaling epoch times from
//!    `candle::run_parallel`, hold out the largest worker count in full
//!    mode, and assert the same contract under the timed-assert gate
//!    (release build, full mode, multicore host).
//! 3. **Model-driven autotuning** — the three `perfmodel::tune` pickers
//!    fed from measurements made here: the comm-overlap fusion threshold
//!    (α–β calibration from two runs at different thresholds), the
//!    training worker count (argmin of the fitted wall-clock law), and
//!    the serving fleet's initial size (smallest replica count whose
//!    fitted p99 law holds the SLO, then verified by direct simulation).
//!    Each tuned knob is asserted no worse than the hardcoded default.
//! 4. **Regression gate demo** — inject a +60% slowdown into one point
//!    of the clean sim series and assert `perfmodel::check_points` flags
//!    exactly that point and nothing on the clean series. This is the
//!    same code path `perfmodel_check` runs over `BENCH_INDEX.json` in
//!    CI.

use crate::overlap_table::{phase, spec};
use crate::report::{format_table, Experiment};
use cluster::calib::Bench;
use cluster::{LoadMethod, Machine, RunConfig, ScalingMode, WorkloadProfile};
use collectives::DEFAULT_FUSION_THRESHOLD_BYTES;
use fleet::sim::{run_fleet_sim, FleetSimReport, ScalePolicy};
use perfmodel::{
    check_points, fit_series, pick_fleet_initial_size, pick_overlap_threshold, pick_worker_count,
    FittedModel, OverlapCostModel, SamplePoint,
};

/// Worker counts the simulator fit trains on (NT3 strong scaling).
const SIM_FIT_WORKERS: &[usize] = &[1, 6, 12, 24, 48, 96];
/// Held-out extrapolation targets: 2× and 4× the largest fitted scale.
const SIM_HOLDOUT_2X: usize = 192;
const SIM_HOLDOUT_4X: usize = 384;
/// Epoch budget the worker-count tuner minimises wall-clock for.
const TUNE_EPOCH_BUDGET: usize = 8;

/// One fitted law validated against a held-out point.
#[derive(Debug, Clone)]
pub struct FitValidation {
    /// Series label for the report.
    pub series: &'static str,
    /// The fitted scaling law.
    pub fitted: FittedModel,
    /// Held-out scale the model predicts.
    pub holdout_scale: f64,
    /// Model prediction at the held-out scale.
    pub predicted: f64,
    /// Ground truth at the held-out scale.
    pub measured: f64,
    /// Relative error band the prediction is held to.
    pub band_frac: f64,
    /// Whether the band is asserted (2× extrapolations; the 4× row is
    /// reported for context but outside the model's stated contract).
    pub asserted: bool,
    /// Whether the assertion needs the timed gate (real measurements
    /// jitter; simulator output does not).
    pub timed_only: bool,
}

impl FitValidation {
    /// Relative prediction error against the held-out truth.
    pub fn rel_err(&self) -> f64 {
        (self.predicted - self.measured).abs() / self.measured.abs().max(1e-12)
    }
}

/// One autotuned knob with its default, its model-driven choice, and the
/// evidence backing it.
#[derive(Debug, Clone)]
pub struct TunedKnob {
    /// Knob name.
    pub knob: &'static str,
    /// The hardcoded default.
    pub default: String,
    /// The tuner's choice.
    pub tuned: String,
    /// Model evidence (prediction at the choice).
    pub predicted: String,
    /// Measured outcome backing the choice.
    pub measured: String,
}

/// NT3's Table-1 workload, the scaling subject throughout.
fn nt3_profile() -> WorkloadProfile {
    candle::HyperParams::of(Bench::Nt3).workload()
}

fn nt3_strong_config(batch: usize) -> impl Fn(usize) -> RunConfig {
    move |workers| RunConfig {
        machine: Machine::Summit,
        workers,
        batch_size: batch,
        scaling: ScalingMode::Strong,
        load_method: LoadMethod::ChunkedLowMemoryFalse,
    }
}

/// Section 1: fit the simulator's strong-scaling series and validate the
/// extrapolations against held-out simulator runs.
fn sim_fit_validations() -> (Vec<FitValidation>, Vec<SamplePoint>) {
    let profile = nt3_profile();
    let config = nt3_strong_config(profile.default_batch);
    let train = cluster::sweep(&profile, SIM_FIT_WORKERS, &config);
    let held = cluster::sweep(&profile, &[SIM_HOLDOUT_2X, SIM_HOLDOUT_4X], &config);
    assert_eq!(train.len(), SIM_FIT_WORKERS.len(), "sim fit sweep lost points");
    assert_eq!(held.len(), 2, "sim holdout sweep lost points");

    let sec_pts: Vec<SamplePoint> = train
        .iter()
        .map(|p| SamplePoint { scale: p.scale, value: p.seconds })
        .collect();
    let joule_pts: Vec<SamplePoint> = train
        .iter()
        .map(|p| SamplePoint { scale: p.scale, value: p.joules })
        .collect();
    let sec_fit = fit_series(&sec_pts).expect("sim seconds series must fit");
    let joule_fit = fit_series(&joule_pts).expect("sim joules series must fit");

    let rows = vec![
        FitValidation {
            series: "sim NT3 strong seconds",
            holdout_scale: held[0].scale,
            predicted: sec_fit.predict(held[0].scale),
            measured: held[0].seconds,
            band_frac: sec_fit.error_band_frac(),
            asserted: true,
            timed_only: false,
            fitted: sec_fit.clone(),
        },
        FitValidation {
            series: "sim NT3 strong joules",
            holdout_scale: held[0].scale,
            predicted: joule_fit.predict(held[0].scale),
            measured: held[0].joules,
            band_frac: joule_fit.error_band_frac(),
            asserted: true,
            timed_only: false,
            fitted: joule_fit,
        },
        FitValidation {
            series: "sim NT3 strong seconds (4x)",
            holdout_scale: held[1].scale,
            predicted: sec_fit.predict(held[1].scale),
            measured: held[1].seconds,
            band_frac: sec_fit.error_band_frac(),
            asserted: false,
            timed_only: false,
            fitted: sec_fit,
        },
    ];
    (rows, sec_pts)
}

/// Section 2: real NT3 weak-scaling epoch times. Returns the per-worker
/// measurements alongside the validation row (quick mode has too few
/// points to hold one out, so its row validates the largest in-sample
/// point and is never asserted).
fn measured_fit_validation(quick: bool) -> (Vec<(usize, f64)>, FitValidation) {
    let (workers, epochs): (&[usize], usize) =
        if quick { (&[1, 2, 4], 1) } else { (&[1, 2, 4, 8], 4) };
    let epoch_s: Vec<(usize, f64)> = workers
        .iter()
        .map(|&w| {
            let out = candle::run_parallel(&spec(w, epochs, None)).expect("blocking NT3 run");
            let (train_s, _) = phase(&out, "training");
            (w, train_s / epochs as f64)
        })
        .collect();
    let (fit_on, holdout) = if quick {
        (&epoch_s[..], *epoch_s.last().expect("measured at least one point"))
    } else {
        let (last, rest) = epoch_s.split_last().expect("measured at least one point");
        (rest, *last)
    };
    let pts: Vec<SamplePoint> = fit_on
        .iter()
        .map(|&(w, s)| SamplePoint { scale: w as f64, value: s })
        .collect();
    let fitted = fit_series(&pts).expect("measured epoch series must fit");
    // Thread-simulated ranks on a shared host jitter far beyond the
    // simulator's determinism: never state a band under 50%.
    let band = fitted.error_band_frac().max(0.5);
    let row = FitValidation {
        series: "measured NT3 weak s/epoch",
        holdout_scale: holdout.0 as f64,
        predicted: fitted.predict(holdout.0 as f64),
        measured: holdout.1,
        band_frac: band,
        asserted: !quick,
        timed_only: true,
        fitted,
    };
    (epoch_s, row)
}

/// Section 3a: α–β-calibrate the per-bucket allreduce cost from two runs
/// at different fusion thresholds, pick the threshold minimising the
/// predicted step time, then measure the tuned choice against the 64 MiB
/// default. Returns the knob row and `(tuned, default)` seconds/epoch.
fn tune_overlap_threshold(quick: bool) -> (TunedKnob, f64, f64) {
    let (w, epochs) = if quick { (2, 1) } else { (4, 2) };
    let run_at = |threshold: usize| {
        candle::run_parallel(&spec(w, epochs, Some(threshold))).expect("overlapped NT3 run")
    };
    let lo = run_at(2 * 1024);
    let hi = run_at(32 * 1024);
    let busy = |out: &candle::ParallelRunOutcome| {
        let (hidden, buckets) = phase(out, "comm_overlap");
        let (exposed, steps) = phase(out, "comm_exposed");
        (hidden + exposed, buckets, steps)
    };
    let (busy_lo, buckets_lo, steps_lo) = busy(&lo);
    let (busy_hi, buckets_hi, _) = busy(&hi);
    let (backward_s, _) = phase(&lo, "train_backward");

    // Gradient regions in arrival order: backward produces layer
    // gradients back-to-front, zero-parameter layers ship nothing.
    let model = candle::build_rank_model(&spec(w, epochs, None), 0);
    let mut regions = model.layer_param_counts();
    regions.reverse();
    regions.retain(|&e| e > 0);
    let total_elems: usize = regions.iter().sum();
    let total_bytes = 4.0 * total_elems as f64 * steps_lo as f64;

    let cost = OverlapCostModel::calibrate(buckets_lo, busy_lo, buckets_hi, busy_hi, total_bytes);
    let backward_step_s = backward_s / steps_lo.max(1) as f64;
    let candidates: Vec<usize> = (10..=26).map(|p| 1usize << p).collect();
    let choice = pick_overlap_threshold(&regions, backward_step_s, &cost, &candidates);

    let tuned_s = {
        let out = run_at(choice.threshold_bytes);
        phase(&out, "training").0 / epochs as f64
    };
    let default_s = {
        let out = run_at(DEFAULT_FUSION_THRESHOLD_BYTES);
        phase(&out, "training").0 / epochs as f64
    };
    let fmt_threshold = |bytes: usize| {
        if bytes >= 1024 * 1024 {
            format!("{} MiB", bytes / (1024 * 1024))
        } else {
            format!("{} KiB", bytes / 1024)
        }
    };
    let knob = TunedKnob {
        knob: "fusion threshold",
        default: fmt_threshold(DEFAULT_FUSION_THRESHOLD_BYTES),
        tuned: fmt_threshold(choice.threshold_bytes),
        predicted: format!(
            "{:.1} ms/step, {} buckets",
            choice.predicted_step_s * 1e3,
            choice.buckets_per_step
        ),
        measured: format!("{tuned_s:.3} vs {default_s:.3} s/epoch"),
    };
    (knob, tuned_s, default_s)
}

/// Section 3b: fit wall-clock for a fixed epoch budget, derived from the
/// measured weak-scaling epoch times, and pick the worker count. Returns
/// the knob row and `(picked, derived wall at picked, at 1 worker)`.
fn tune_worker_count(epoch_s: &[(usize, f64)]) -> (TunedKnob, usize, f64, f64) {
    let wall = |w: usize, s: f64| (TUNE_EPOCH_BUDGET as f64 / w as f64) * s;
    let pts: Vec<SamplePoint> = epoch_s
        .iter()
        .map(|&(w, s)| SamplePoint { scale: w as f64, value: wall(w, s) })
        .collect();
    let fitted = fit_series(&pts).expect("wall-clock series must fit");
    let candidates: Vec<usize> = epoch_s.iter().map(|&(w, _)| w).collect();
    let (picked, predicted) = pick_worker_count(&fitted, &candidates);
    let measured_at = |n: usize| {
        epoch_s
            .iter()
            .find(|&&(w, _)| w == n)
            .map(|&(w, s)| wall(w, s))
            .expect("picked worker count was measured")
    };
    let tuned_wall = measured_at(picked);
    let serial_wall = measured_at(1);
    let knob = TunedKnob {
        knob: "training workers",
        default: "1 (serial)".to_string(),
        tuned: picked.to_string(),
        predicted: format!("{predicted:.3} s wall ({} epochs)", TUNE_EPOCH_BUDGET),
        measured: format!("{tuned_wall:.3} vs {serial_wall:.3} s wall"),
    };
    (knob, picked, tuned_wall, serial_wall)
}

/// Section 3c: sweep fixed fleet sizes through the deterministic fleet
/// simulator, fit p99-vs-replicas, pick the smallest size whose fitted
/// law holds the SLO, and verify the pick by direct simulation (bumping
/// upward when the model was optimistic — a tuner proposes, the
/// simulator disposes). Returns the knob row plus the verified size, its
/// report, the peak default size, and the peak-sized report.
fn tune_fleet_size(quick: bool) -> (TunedKnob, usize, FleetSimReport, usize, FleetSimReport) {
    let slo = crate::fleet_table::SLO_P99_S;
    let t = crate::fleet_table::trace(quick);
    let per_replica_rps = crate::fleet_table::service().peak_rps();
    let mean_n = ((t.mean_rps() / per_replica_rps).ceil() as usize).max(1);
    let peak_n =
        ((crate::fleet_table::actual_peak_rps(&t) / per_replica_rps).ceil() as usize).max(mean_n + 1);

    let sim_fixed = |n: usize| {
        run_fleet_sim(&crate::fleet_table::base_config(
            quick,
            ScalePolicy::Fixed(n),
            f64::INFINITY,
        ))
    };
    // Five candidate sizes spanning mean- to peak-sized, extended past
    // the peak when the span is too narrow to fit a law on.
    let mut sizes: Vec<usize> = (0..5).map(|i| mean_n + i * (peak_n - mean_n) / 4).collect();
    sizes.dedup();
    while sizes.len() < 4 {
        sizes.push(sizes.last().expect("sizes non-empty") + 1);
    }
    let pts: Vec<SamplePoint> = sizes
        .iter()
        .map(|&n| SamplePoint {
            scale: n as f64,
            value: sim_fixed(n).worst_window_p99_s.max(1e-6),
        })
        .collect();
    let p99_fit = fit_series(&pts).expect("fleet p99 series must fit");
    let sizing = pick_fleet_initial_size(&p99_fit, slo, peak_n);

    let mut verified = sizing.initial_replicas;
    let mut report = sim_fixed(verified);
    while report.worst_window_p99_s > slo && verified < peak_n {
        verified += 1;
        report = sim_fixed(verified);
    }
    let peak_report = if verified == peak_n { report.clone() } else { sim_fixed(peak_n) };
    let knob = TunedKnob {
        knob: "fleet replicas",
        default: format!("{peak_n} (peak-sized)"),
        tuned: verified.to_string(),
        predicted: format!(
            "p99 {:.0} ms at n={}",
            sizing.predicted_p99_s * 1e3,
            sizing.initial_replicas
        ),
        measured: format!(
            "p99 {:.0} ms, {:.1} vs {:.1} kJ",
            report.worst_window_p99_s * 1e3,
            report.energy_j / 1e3,
            peak_report.energy_j / 1e3
        ),
    };
    (knob, verified, report, peak_n, peak_report)
}

/// Section 4: the regression detector must flag an injected +60%
/// slowdown at exactly one scale and stay silent on the clean series.
/// Uses a denser sweep than the fit validation — the median-based flag
/// threshold needs enough points that one corrupted measurement cannot
/// drag the whole model after it. N=1 is deliberately excluded: a
/// leave-one-out detector cannot predict an Amdahl constant term without
/// its own anchor point, so the boundary point flags collaterally.
fn regression_demo() -> (f64, usize, usize) {
    let profile = nt3_profile();
    let workers: &[usize] = &[2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96];
    let clean: Vec<SamplePoint> =
        cluster::sweep(&profile, workers, nt3_strong_config(profile.default_batch))
            .iter()
            .map(|p| SamplePoint { scale: p.scale, value: p.seconds })
            .collect();
    let (_, clean_flags) = check_points(&clean).expect("clean series must fit");
    let mut corrupted = clean.clone();
    let idx = clean.len() / 2;
    corrupted[idx].value *= 1.6;
    let (_, flags) = check_points(&corrupted).expect("corrupted series must fit");
    assert!(
        clean_flags.is_empty(),
        "regression gate flagged the clean simulator series: {clean_flags:?}"
    );
    assert_eq!(
        flags.len(),
        1,
        "injected regression must raise exactly one flag, got {flags:?}"
    );
    assert_eq!(
        flags[0].scale, corrupted[idx].scale,
        "regression flagged the wrong scale"
    );
    (corrupted[idx].scale, clean_flags.len(), flags.len())
}

/// The performance-modeling experiment: fitted scaling laws validated at
/// 2× extrapolation, model-driven autotuning of three knobs, and the
/// CI regression gate demonstrated end to end.
///
/// # Panics
/// Panics when a simulator-backed prediction leaves its stated error
/// band, when the regression demo mis-flags, or — under the timed-assert
/// gate (release build, full mode, multicore host) — when a measured
/// prediction leaves its band or a tuned knob loses to its default.
pub fn table_perfmodel(quick: bool) -> Experiment {
    let (mut fit_rows, _sim_seconds) = sim_fit_validations();
    let (epoch_s, measured_row) = measured_fit_validation(quick);
    fit_rows.push(measured_row);

    let timed = crate::gate::timed_asserts_enabled(quick);
    let multicore = crate::gate::multicore_host();
    for r in &fit_rows {
        if !r.asserted || (r.timed_only && !(timed && multicore)) {
            continue;
        }
        assert!(
            r.rel_err() <= r.band_frac,
            "{}: prediction {:.4} vs measured {:.4} at N={} — rel err {:.1}% \
             outside the stated {:.1}% band",
            r.series,
            r.predicted,
            r.measured,
            r.holdout_scale,
            r.rel_err() * 100.0,
            r.band_frac * 100.0
        );
    }

    let (threshold_knob, tuned_s, default_s) = tune_overlap_threshold(quick);
    let (worker_knob, _picked_w, tuned_wall, serial_wall) = tune_worker_count(&epoch_s);
    let (fleet_knob, verified_n, fleet_report, peak_n, peak_report) = tune_fleet_size(quick);
    if timed && multicore {
        assert!(
            tuned_s <= default_s * 1.05,
            "tuned fusion threshold lost to the default: {tuned_s:.4} vs {default_s:.4} s/epoch"
        );
        assert!(
            tuned_wall <= serial_wall * 1.05,
            "tuned worker count lost to serial: {tuned_wall:.4} vs {serial_wall:.4} s wall"
        );
    }
    // The fleet simulator is deterministic: its tuning contract holds
    // everywhere, not just under the timed gate.
    assert!(
        fleet_report.worst_window_p99_s <= crate::fleet_table::SLO_P99_S,
        "verified fleet size {verified_n} still violates the SLO: p99 {:.3}s",
        fleet_report.worst_window_p99_s
    );
    assert!(verified_n <= peak_n, "fleet tuner exceeded the peak-sized default");
    assert!(
        fleet_report.energy_j <= peak_report.energy_j * 1.0001,
        "tuned fleet burned more energy than the peak-sized default: {:.0} vs {:.0} J",
        fleet_report.energy_j,
        peak_report.energy_j
    );

    let (flagged_scale, clean_flags, injected_flags) = regression_demo();

    let fit_cells: Vec<Vec<String>> = fit_rows
        .iter()
        .map(|r| {
            vec![
                r.series.to_string(),
                r.fitted.model.to_string(),
                format!("{:.1}%", r.fitted.cv_mean_rel_err * 100.0),
                format!("{:.0}%", r.band_frac * 100.0),
                format!("{:.0}", r.holdout_scale),
                format!("{:.4}", r.predicted),
                format!("{:.4}", r.measured),
                format!("{:.1}%", r.rel_err() * 100.0),
                if !r.asserted {
                    "report"
                } else if r.timed_only {
                    "timed"
                } else {
                    "always"
                }
                .to_string(),
            ]
        })
        .collect();
    let knob_cells: Vec<Vec<String>> = [&threshold_knob, &worker_knob, &fleet_knob]
        .iter()
        .map(|k| {
            vec![
                k.knob.to_string(),
                k.default.clone(),
                k.tuned.clone(),
                k.predicted.clone(),
                k.measured.clone(),
            ]
        })
        .collect();

    let mut text = String::from(
        "Extra-P-style scaling laws fitted on measured/simulated series\n\
         (c0 + c1*N^a*log2^b(N), rational exponent grid, leave-one-out\n\
         model selection), validated against held-out points beyond the\n\
         fitted range:\n",
    );
    text.push_str(&format_table(
        &[
            "series", "fitted law", "cv", "band", "N*", "predicted", "measured", "err", "assert",
        ],
        &fit_cells,
    ));
    text.push_str("model-driven autotuning vs hardcoded defaults:\n");
    text.push_str(&format_table(
        &["knob", "default", "tuned", "model prediction", "measured"],
        &knob_cells,
    ));
    text.push_str(&format!(
        "regression gate: clean sim series {} flags; +60% injected at \
         N={:.0} -> {} flag at N={:.0} (same detector as perfmodel_check \
         over BENCH_INDEX.json)\n",
        clean_flags, flagged_scale, injected_flags, flagged_scale,
    ));
    Experiment {
        id: "table_perfmodel",
        title: "Performance models: fitted scaling laws, autotuning, regression gate",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_fit_holds_its_stated_band() {
        let (rows, pts) = sim_fit_validations();
        assert_eq!(rows.len(), 3);
        assert_eq!(pts.len(), SIM_FIT_WORKERS.len());
        for r in &rows {
            assert!(r.predicted > 0.0 && r.measured > 0.0);
            if r.asserted {
                assert!(
                    r.rel_err() <= r.band_frac,
                    "{}: {:.1}% err vs {:.0}% band",
                    r.series,
                    r.rel_err() * 100.0,
                    r.band_frac * 100.0
                );
            }
        }
        // Strong scaling must fit a decreasing law.
        assert!(rows[0].fitted.model.exponent() < 0.0);
    }

    #[test]
    fn regression_demo_is_exact() {
        let (scale, clean, injected) = regression_demo();
        assert_eq!(clean, 0);
        assert_eq!(injected, 1);
        assert!(scale > 1.0);
    }

    #[test]
    fn fleet_tuner_stays_within_the_peak_default() {
        let (knob, verified, report, peak_n, peak_report) = tune_fleet_size(true);
        assert!(verified <= peak_n);
        assert!(report.worst_window_p99_s <= crate::fleet_table::SLO_P99_S);
        assert!(report.energy_j <= peak_report.energy_j * 1.0001);
        assert_eq!(knob.knob, "fleet replicas");
    }

    #[test]
    fn table_renders_all_sections() {
        let e = table_perfmodel(true);
        assert_eq!(e.id, "table_perfmodel");
        for needle in [
            "fitted law",
            "sim NT3 strong seconds",
            "measured NT3 weak s/epoch",
            "fusion threshold",
            "training workers",
            "fleet replicas",
            "regression gate",
        ] {
            assert!(e.text.contains(needle), "missing section marker {needle}");
        }
    }
}
