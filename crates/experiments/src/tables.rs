//! Drivers for the paper's tables.

use crate::report::{format_table, pct, secs, Experiment};
use crate::sweeps::{method_comparison_sweep, SUMMIT_GPU_SWEEP, WEAK_GPU_SWEEP};
use candle::HyperParams;
use cluster::calib::{self, Bench, Split};
use cluster::run::simulate;
use cluster::{LoadMethod, Machine, RunConfig, RunReport, ScalingMode};
use simcore::SimTime;

/// Table 1: epochs, batch size, data samples, and file sizes per benchmark.
pub fn table1() -> Experiment {
    let rows: Vec<Vec<String>> = Bench::ALL
        .iter()
        .map(|&b| {
            let hp = HyperParams::of(b);
            vec![
                b.name().to_string(),
                format!("{}MB", calib::file_size_mb(b, Split::Train)),
                format!("{}MB", calib::file_size_mb(b, Split::Test)),
                hp.epochs.to_string(),
                hp.batch_size.to_string(),
                hp.learning_rate.map_or("none".into(), |l| l.to_string()),
                optimizer_name(&hp),
                hp.train_samples.to_string(),
                hp.batch_steps_per_epoch().to_string(),
            ]
        })
        .collect();
    Experiment {
        id: "table1",
        title: "Benchmark configurations (epochs, batch size, data sizes)",
        text: format_table(
            &[
                "bench",
                "train",
                "test",
                "epochs",
                "batch",
                "lr",
                "optimizer",
                "samples",
                "steps/epoch",
            ],
            &rows,
        ),
    }
}

fn optimizer_name(hp: &HyperParams) -> String {
    use dlframe::OptimizerKind::*;
    match hp.optimizer {
        Sgd { .. } => "sgd".into(),
        Adam { .. } => "adam".into(),
        RmsProp { .. } => "rmsprop".into(),
    }
}

/// Average device power during the training phase of a simulated run.
fn training_power_w(report: &RunReport) -> f64 {
    report
        .phases
        .iter()
        .find(|p| p.name == "training")
        .map(|p| {
            report
                .power
                .trace
                .value_at(SimTime::new(p.start_s + p.duration_s * 0.5))
        })
        .unwrap_or(0.0)
}

fn nt3_run(workers: usize, batch: usize, method: LoadMethod) -> Option<RunReport> {
    let hp = HyperParams::of(Bench::Nt3);
    simulate(
        &hp.workload(),
        &RunConfig {
            machine: Machine::Summit,
            workers,
            batch_size: batch,
            scaling: ScalingMode::Strong,
            load_method: method,
        },
    )
    .ok()
}

/// Table 2: time per epoch (s) and average GPU power (W) for Horovod NT3
/// at batch sizes 20 and 40.
pub fn table2() -> Experiment {
    let mut rows = Vec::new();
    for &gpus in &SUMMIT_GPU_SWEEP {
        let b20 = nt3_run(gpus, 20, LoadMethod::PandasDefault);
        let b40 = nt3_run(gpus, 40, LoadMethod::PandasDefault);
        if let (Some(b20), Some(b40)) = (b20, b40) {
            rows.push(vec![
                gpus.to_string(),
                secs(b20.time_per_epoch_s),
                format!("{:.0}", training_power_w(&b20)),
                secs(b40.time_per_epoch_s),
                format!("{:.0}", training_power_w(&b40)),
            ]);
        }
    }
    Experiment {
        id: "table2",
        title: "NT3 time per epoch (s) and average GPU power (W), batch 20 vs 40",
        text: format_table(
            &[
                "GPUs",
                "t/epoch B=20",
                "power B=20",
                "t/epoch B=40",
                "power B=40",
            ],
            &rows,
        ),
    }
}

fn loading_table(machine: Machine, id: &'static str, title: &'static str) -> Experiment {
    let mut rows = Vec::new();
    for &b in &Bench::ALL {
        for split in [Split::Train, Split::Test] {
            let label = match split {
                Split::Train => format!("{} train ({}MB)", b.name(), calib::file_size_mb(b, split)),
                Split::Test => format!("{} test ({}MB)", b.name(), calib::file_size_mb(b, split)),
            };
            let pandas = calib::load_base_seconds(machine, b, split, LoadMethod::PandasDefault);
            let chunked =
                calib::load_base_seconds(machine, b, split, LoadMethod::ChunkedLowMemoryFalse);
            let dask = calib::load_base_seconds(machine, b, split, LoadMethod::Dask);
            rows.push(vec![
                label,
                format!("{pandas:.2}"),
                format!("{chunked:.2}"),
                format!("{dask:.2}"),
                format!("{:.2}x", pandas / chunked),
            ]);
        }
    }
    Experiment {
        id,
        title,
        text: format_table(
            &[
                "file",
                "pandas (orig)",
                "chunked low_mem=F",
                "dask (modelled)",
                "speedup",
            ],
            &rows,
        ),
    }
}

/// Table 3: data-loading seconds by method on Summit (model inputs from
/// the paper, plus a live local validation of the Rust CSV engine's
/// ratios — see the `csv_methods` bench for the full measurement).
pub fn table3() -> Experiment {
    let mut e = loading_table(
        Machine::Summit,
        "table3",
        "Data-loading time by method, Summit",
    );
    e.text
        .push_str("\nLocal Rust CSV engine validation (generated files):\n");
    e.text.push_str(&local_csv_validation());
    e
}

/// Table 4: data-loading seconds by method on Theta.
pub fn table4() -> Experiment {
    loading_table(
        Machine::Theta,
        "table4",
        "Data-loading time by method, Theta",
    )
}

/// Measures the three real reader strategies on two generated files with
/// the paper's two geometries (wide-few-rows vs narrow-many-rows).
fn local_csv_validation() -> String {
    use dataio::{read_csv, write_csv_dataset, ClassSpec, ReadStrategy, SyntheticSpec};
    let dir = std::env::temp_dir().join("candle_repro_table3");
    if std::fs::create_dir_all(&dir).is_err() {
        return "  (temp dir unavailable; skipped)\n".into();
    }
    let mut rows = Vec::new();
    for (label, spec) in [
        (
            "wide (NT3-like, 160x12000)",
            SyntheticSpec {
                rows: 160,
                cols: 12_000,
                kind: ClassSpec::Classification {
                    classes: 2,
                    separation: 1.0,
                },
                noise: 0.5,
                seed: 11,
            },
        ),
        (
            "narrow (P1B3-like, 64000x30)",
            SyntheticSpec {
                rows: 64_000,
                cols: 30,
                kind: ClassSpec::Regression { signal_features: 8 },
                noise: 0.02,
                seed: 12,
            },
        ),
    ] {
        let ds = dataio::generate(&spec);
        let path = dir.join(format!("{}.csv", spec.rows));
        if write_csv_dataset(&path, &ds).is_err() {
            continue;
        }
        let mut cells = vec![label.to_string()];
        let mut pandas_time = 0.0;
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
            ReadStrategy::TurboParallel,
        ] {
            match read_csv(&path, strategy) {
                Ok((_, stats)) => {
                    let s = stats.elapsed.as_secs_f64();
                    if strategy == ReadStrategy::PandasDefault {
                        pandas_time = s;
                    }
                    cells.push(format!("{:.3}s", s));
                }
                Err(_) => cells.push("err".into()),
            }
        }
        let chunked: f64 = cells[2].trim_end_matches('s').parse().unwrap_or(1.0);
        cells.push(format!("{:.2}x", pandas_time / chunked.max(1e-9)));
        rows.push(cells);
        let _ = std::fs::remove_file(&path);
    }
    format_table(
        &[
            "file geometry",
            "pandas-style",
            "chunked",
            "dask-style",
            "turbo",
            "speedup",
        ],
        &rows,
    )
}

/// Table 5: NT3 average GPU power (W) and energy (J) for the original vs
/// optimized loader under strong scaling on Summit.
pub fn table5() -> Experiment {
    let rows: Vec<Vec<String>> = method_comparison_sweep(
        Bench::Nt3,
        Machine::Summit,
        ScalingMode::Strong,
        &SUMMIT_GPU_SWEEP,
    )
    .iter()
    .map(|r| {
        let dp = (r.optimized.power.avg_power_w - r.original.power.avg_power_w)
            / r.original.power.avg_power_w
            * 100.0;
        vec![
            r.workers.to_string(),
            format!("{:.1}", r.original.power.avg_power_w),
            format!("{:.1}", r.optimized.power.avg_power_w),
            pct(dp),
            format!("{:.0}", r.original.power.energy_j),
            format!("{:.0}", r.optimized.power.energy_j),
            pct(r.energy_saving_pct()),
        ]
    })
    .collect();
    Experiment {
        id: "table5",
        title: "NT3 GPU power (W) and energy (J), original vs optimized (Summit)",
        text: format_table(
            &["GPUs", "P orig", "P opt", "ΔP", "E orig", "E opt", "saving"],
            &rows,
        ),
    }
}

/// Table 6: weak-scaling NT3 — training accuracy (real training, scaled
/// budget), time per epoch, and average GPU power, original vs optimized.
pub fn table6(quick: bool) -> Experiment {
    // Performance plane: modelled time/epoch and power across the weak
    // sweep.
    let rows_perf = method_comparison_sweep(
        Bench::Nt3,
        Machine::Summit,
        ScalingMode::Weak {
            epochs_per_worker: 8,
        },
        &WEAK_GPU_SWEEP,
    );
    // Functional plane: with 8 epochs per worker, training reaches accuracy
    // ~1 regardless of worker count (the paper's rationale for weak
    // scaling at 8 epochs/GPU).
    let workers = if quick {
        vec![1usize, 2, 4]
    } else {
        vec![1usize, 2, 4, 8, 16]
    };
    let acc_points: Vec<(usize, f64)> = workers
        .iter()
        .map(|&w| {
            let hp = HyperParams::of(Bench::Nt3);
            let spec = candle::ParallelRunSpec {
                bench: Bench::Nt3,
                workers: w,
                scaling: candle::pipeline::FuncScaling::Weak {
                    epochs_per_worker: 8,
                },
                batch: hp.batch_size,
                base_lr: 0.008,
                data: candle::BenchDataKind::tiny(Bench::Nt3),
                seed: 99,
                record_timeline: false,
                data_mode: candle::pipeline::DataMode::FullReplicated,
                cache: None,
                data_service: None,
                comm_overlap: None,
            };
            let out = candle::run_parallel(&spec).expect("weak run");
            (w, out.train_accuracy.unwrap_or(0.0))
        })
        .collect();

    let mut text = String::from("Functional accuracy at 8 epochs/worker (real training):\n");
    let acc_rows: Vec<Vec<String>> = acc_points
        .iter()
        .map(|(w, a)| vec![w.to_string(), format!("{a:.3}")])
        .collect();
    text.push_str(&format_table(&["workers", "train acc"], &acc_rows));
    text.push_str("\nModelled time/epoch and power (Summit weak scaling):\n");
    let perf_rows: Vec<Vec<String>> = rows_perf
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                secs(r.original.time_per_epoch_s),
                format!("{:.1}", r.original.power.avg_power_w),
                format!("{:.1}", r.optimized.power.avg_power_w),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &["GPUs", "t/epoch", "P orig (W)", "P opt (W)"],
        &perf_rows,
    ));
    Experiment {
        id: "table6",
        title: "NT3 weak scaling: accuracy, time per epoch, average GPU power",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_benchmarks() {
        let t = table1();
        for name in ["NT3", "P1B1", "P1B2", "P1B3"] {
            assert!(t.text.contains(name), "missing {name}");
        }
        assert!(t.text.contains("9001"));
        assert!(t.text.contains("rmsprop"));
    }

    #[test]
    fn table2_epoch_time_grows_with_gpus() {
        let t = table2();
        let lines: Vec<&str> = t.text.lines().skip(2).collect();
        assert_eq!(lines.len(), 8);
        // First data row is 1 GPU (~10.3 s), last is 384 (~23 s).
        assert!(lines[0].trim_start().starts_with('1'));
        assert!(lines[7].trim_start().starts_with("384"));
    }

    #[test]
    fn table3_contains_paper_values_and_local_validation() {
        let t = table3();
        assert!(t.text.contains("81.72"));
        assert!(t.text.contains("14.30"));
        assert!(t.text.contains("wide (NT3-like"));
    }

    #[test]
    fn table4_is_theta() {
        let t = table4();
        assert!(t.text.contains("52.91"));
        assert!(t.text.contains("13.84"));
    }

    #[test]
    fn table5_shows_power_rise_and_energy_saving() {
        let t = table5();
        assert!(t.text.contains('%'));
        // The 384-GPU row exists.
        assert!(t.text.lines().any(|l| l.trim_start().starts_with("384")));
    }

    #[test]
    fn table6_quick_has_both_planes() {
        let t = table6(true);
        assert!(t.text.contains("Functional accuracy"));
        assert!(t.text.contains("Modelled time/epoch"));
        assert!(t.text.lines().any(|l| l.trim_start().starts_with("3072")));
    }
}
