//! Deterministic ASHA hyperparameter search: real trials + modelled fleet.
//!
//! CANDLE's dominant production workload is not one training run but a
//! hyperparameter search scheduling hundreds of them. This driver runs the
//! `hpo` engine both ways it supports:
//!
//! 1. **measured** — a seeded ASHA search over real `dlframe` trials fed
//!    through one shared `datapipe` service, repeated at several worker
//!    thread counts. The search fingerprint (winner, promotion sequence,
//!    per-rung objective bits, parameter hashes) must be identical at
//!    every thread count; the winner's rung-checkpointed chain must hash
//!    bit-identically to the same trial trained uninterrupted; and the
//!    winner must reach the best accuracy any trial achieves at full
//!    budget while the search spends under half the brute-force epochs.
//! 2. **modelled** — the same rung geometry priced on the calibrated
//!    `cluster` Summit model for a full-size P1B2 fleet: machine seconds
//!    and joules for ASHA vs the brute-force sweep it replaces.

use crate::report::{format_table, Experiment};
use candle::{BenchId, HyperParams};
use cluster::{LoadMethod, Machine};
use dataio::{generate, ClassSpec, SyntheticSpec};
use datapipe::{DatasetService, ServiceConfig};
use dlframe::Dataset;
use hpo::{
    run_search, AshaConfig, LocalExecutor, ModelledExecutor, ParamSpec, SearchConfig,
    SearchReport, SearchSpace, TrialExecutor, TrialId,
};
use resil::TrialStore;
use std::sync::Arc;
use tensor::Tensor;
use xrng::SeedNode;

/// The search's master seed: trial configurations, weight init, dropout
/// and shuffle streams all derive from it.
const SEARCH_SEED: u64 = 42;

/// One measured ASHA search plus its verification evidence.
#[derive(Debug)]
pub struct HpoMeasurement {
    /// `(worker threads, search fingerprint)` per repetition.
    pub worker_fingerprints: Vec<(usize, u64)>,
    /// The canonical report (last worker count; all are fingerprint-equal).
    pub report: SearchReport,
    /// Winner's rung-chain parameter hash equals the hash of the same
    /// trial trained uninterrupted to full budget.
    pub resume_bit_exact: bool,
    /// Best full-budget accuracy over *every* trial (brute-force sweep).
    pub brute_best_acc: f64,
    /// Trial achieving it.
    pub brute_best_id: TrialId,
    /// The winner's accuracy at full budget.
    pub winner_acc: f64,
    /// Epochs the brute-force sweep trained.
    pub brute_epochs: usize,
}

fn search_space() -> SearchSpace {
    SearchSpace {
        lr: ParamSpec::LogUniform { lo: 3e-3, hi: 0.3 },
        batch: vec![16, 32],
        hidden: vec![8, 16, 32],
        dropout: ParamSpec::Uniform { lo: 0.0, hi: 0.2 },
    }
}

fn eval_dataset(spec: &SyntheticSpec, rows: usize, classes: usize) -> Option<Dataset> {
    let mut held_out = *spec;
    held_out.rows = rows;
    held_out.seed = spec.seed ^ 0x5EED;
    let data = generate(&held_out);
    let x = Tensor::from_vec([data.rows, data.cols], data.features.clone()).ok()?;
    let y = Tensor::from_vec([data.rows, classes], data.one_hot_labels()).ok()?;
    Some(Dataset::new(x, y))
}

/// Runs the seeded search at each worker count in `workers`, then the
/// brute-force full-budget sweep, returning all verification evidence.
/// `None` if the temp filesystem is unavailable.
pub fn measure_hpo(quick: bool) -> Option<HpoMeasurement> {
    let (trials, rows, cols, classes, workers): (usize, usize, usize, usize, &[usize]) = if quick
    {
        (8, 512, 12, 3, &[1, 2])
    } else {
        (16, 1024, 16, 4, &[1, 2, 4])
    };
    let asha = AshaConfig {
        min_epochs: 1,
        reduction: 2,
        rungs: 4,
    };
    let dir = std::env::temp_dir().join(format!(
        "candle_repro_hpo_{}_{rows}x{cols}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok()?;

    let spec = SyntheticSpec {
        rows,
        cols,
        kind: ClassSpec::Classification {
            classes,
            separation: 1.2,
        },
        noise: 0.4,
        seed: 23,
    };
    let key = 0x4150;
    let mut config = ServiceConfig::new(dir.join("cache"));
    config.threads = 2;
    let service = DatasetService::new(config).ok()?;
    service
        .open_dataset(key, "synthetic:hpo", "", 4, || Ok(generate(&spec).to_frame()))
        .ok()?;
    let eval = eval_dataset(&spec, rows / 4, classes)?;

    let space = search_space();
    let executor = |tag: &str| -> Option<Arc<LocalExecutor>> {
        Some(Arc::new(LocalExecutor::new(
            Arc::clone(&service),
            key,
            classes,
            eval.clone(),
            64,
            TrialStore::new(dir.join(format!("store-{tag}")), 2).ok()?,
            SeedNode::root(SEARCH_SEED),
        )))
    };

    let mut worker_fingerprints = Vec::with_capacity(workers.len());
    let mut report = None;
    for &w in workers {
        let exec = executor(&format!("w{w}"))?;
        let search_config = SearchConfig {
            seed: SEARCH_SEED,
            trials,
            asha,
            workers: w,
        };
        let r = run_search(&space, exec, &search_config).ok()?;
        worker_fingerprints.push((w, r.fingerprint()));
        report = Some(r);
    }
    let report = report?;

    // Brute force: every trial trained uninterrupted to the full budget.
    // This is both the baseline ASHA's epoch bill is judged against and
    // the oracle for the resume check: the winner's checkpointed rung
    // chain must land on exactly the parameters of its uninterrupted run.
    let exec = executor("brute")?;
    let root = SeedNode::root(SEARCH_SEED);
    let mut brute_best: Option<(TrialId, f64, f64)> = None;
    let mut winner_full_hash = 0;
    let mut winner_acc = 0.0;
    for id in 0..trials as TrialId {
        let params = space.sample(root, id);
        let full = exec.full_run(id, &params, asha.max_epochs()).ok()?;
        if id == report.winner {
            winner_full_hash = full.params_hash;
            winner_acc = full.accuracy;
        }
        let better = match brute_best {
            None => true,
            Some((_, _, obj)) => full.objective < obj,
        };
        if better {
            brute_best = Some((id, full.accuracy, full.objective));
        }
    }
    let (brute_best_id, brute_best_acc, _) = brute_best?;

    std::fs::remove_dir_all(&dir).ok();
    Some(HpoMeasurement {
        resume_bit_exact: report.winner_outcome().params_hash == winner_full_hash,
        worker_fingerprints,
        report,
        brute_best_acc,
        brute_best_id,
        winner_acc,
        brute_epochs: trials * asha.max_epochs(),
    })
}

/// The HPO experiment: deterministic ASHA over real trials, plus the
/// modelled full-size fleet bill.
pub fn table_hpo(quick: bool) -> Experiment {
    let mut text = String::new();
    match measure_hpo(quick) {
        Some(m) => {
            let first = m.worker_fingerprints[0].1;
            assert!(
                m.worker_fingerprints.iter().all(|&(_, fp)| fp == first),
                "search fingerprint varies with worker threads: {:?}",
                m.worker_fingerprints
            );
            assert!(
                m.resume_bit_exact,
                "winner's rung-checkpointed chain diverged from its uninterrupted run"
            );
            assert!(
                m.report.budget_fraction() < 0.5,
                "ASHA spent {:.0}% of the brute-force budget",
                m.report.budget_fraction() * 100.0
            );
            // The headline claim — ASHA finds the best full-budget
            // configuration — needs the full-size search; the quick
            // search's rung-0 epoch is too noisy a predictor to assert on.
            if !quick {
                assert!(
                    m.winner_acc >= m.brute_best_acc,
                    "ASHA winner reached {:.4} at full budget; trial {} reached {:.4}",
                    m.winner_acc,
                    m.brute_best_id,
                    m.brute_best_acc,
                );
            }
            text.push_str(&format!(
                "Measured: {} trials, rungs at 1/2/4/8 epochs (eta 2), shared datapipe \
                 service, seed {SEARCH_SEED}:\n{}",
                m.report.config.trials,
                m.report.render(),
            ));
            let worker_list = m
                .worker_fingerprints
                .iter()
                .map(|(w, _)| w.to_string())
                .collect::<Vec<_>>()
                .join("/");
            text.push_str(&format!(
                "fingerprint {:016x} identical at {worker_list} worker threads; \
                 winner chain bit-exact vs uninterrupted run: {}\n",
                first, m.resume_bit_exact,
            ));
            text.push_str(&format!(
                "full-budget oracle: best trial {} at accuracy {:.4}; ASHA winner {} \
                 reaches {:.4} having scheduled {} of {} epochs\n",
                m.brute_best_id,
                m.brute_best_acc,
                m.report.winner,
                m.winner_acc,
                m.report.epochs_spent,
                m.report.full_budget,
            ));
            text.push_str(&m.report.phase_profile().report());
        }
        None => text.push_str("  (temp dir unavailable; measured section skipped)\n"),
    }

    // Modelled: the same rung geometry for a full-size P1B2 fleet on
    // Summit — what the early stopping is worth in machine time and
    // energy at the paper's scale.
    text.push_str(
        "\nModelled P1B2 fleet on Summit (6 GPUs per trial, 16 trials, epochs \
         scaled to the rung schedule):\n",
    );
    let modelled_dir = std::env::temp_dir().join(format!(
        "candle_repro_hpo_modelled_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&modelled_dir).ok();
    let modelled = std::fs::create_dir_all(&modelled_dir)
        .ok()
        .and_then(|_| {
            let asha = AshaConfig {
                min_epochs: 1,
                reduction: 2,
                rungs: 4,
            };
            let profile = HyperParams::of(BenchId::P1b2).workload();
            let exec = Arc::new(ModelledExecutor::new(
                profile,
                Machine::Summit,
                6,
                LoadMethod::ChunkedLowMemoryFalse,
                TrialStore::new(modelled_dir.join("store"), 2).ok()?,
                SeedNode::root(SEARCH_SEED),
            ));
            let space = search_space();
            let config = SearchConfig {
                seed: SEARCH_SEED,
                trials: 16,
                asha,
                workers: 4,
            };
            let report = run_search(&space, Arc::clone(&exec) as Arc<dyn TrialExecutor>, &config)
                .ok()?;
            // Price the brute-force sweep the search replaces.
            let root = SeedNode::root(SEARCH_SEED);
            let mut full_time = 0.0;
            let mut full_joules = 0.0;
            for id in 0..config.trials as TrialId {
                let params = space.sample(root, id);
                let out = exec.full_run(id, &params, asha.max_epochs()).ok()?;
                full_time += out.modelled_time_s;
                full_joules += out.modelled_joules;
            }
            Some((report, full_time, full_joules))
        });
    std::fs::remove_dir_all(&modelled_dir).ok();
    match modelled {
        Some((report, full_time, full_joules)) => {
            text.push_str(&format_table(
                &["schedule", "epochs", "machine time", "energy", "of full"],
                &[
                    vec![
                        "brute-force sweep".into(),
                        report.full_budget.to_string(),
                        format!("{:.0}s", full_time),
                        format!("{:.1} MJ", full_joules / 1e6),
                        "100%".into(),
                    ],
                    vec![
                        "ASHA rungs".into(),
                        report.epochs_spent.to_string(),
                        format!("{:.0}s", report.modelled_time_s()),
                        format!("{:.1} MJ", report.modelled_joules() / 1e6),
                        format!("{:.0}%", 100.0 * report.modelled_joules() / full_joules),
                    ],
                ],
            ));
        }
        None => text.push_str("  (modelled section skipped)\n"),
    }

    Experiment {
        id: "table_hpo",
        title: "Deterministic ASHA hyperparameter search (real + modelled trials)",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance check at quick scale: fingerprints worker-invariant,
    /// winner chain bit-exact, budget structurally under half.
    #[test]
    fn quick_search_is_deterministic_and_cheap() {
        let m = measure_hpo(true).expect("temp fs");
        let first = m.worker_fingerprints[0].1;
        assert!(m.worker_fingerprints.iter().all(|&(_, fp)| fp == first));
        assert!(m.resume_bit_exact);
        assert!(m.report.budget_fraction() < 0.5);
        let (hits, misses) = m.report.datapipe_totals();
        assert!(hits + misses > 0, "trials must stream through the service");
    }

    #[test]
    fn table_renders_measured_and_modelled_sections() {
        let e = table_hpo(true);
        assert_eq!(e.id, "table_hpo");
        assert!(e.text.contains("<- winner"));
        assert!(e.text.contains("ASHA rungs"));
        assert!(e.text.contains("bit-exact vs uninterrupted run: true"));
    }

    /// The headline accuracy claim is asserted inside `table_hpo` in full
    /// mode; run it where the training cost is affordable.
    #[cfg(not(debug_assertions))]
    #[test]
    fn full_table_asserts_winner_matches_oracle() {
        let e = table_hpo(false);
        assert!(e.text.contains("full-budget oracle"));
    }
}
