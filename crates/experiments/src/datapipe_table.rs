//! Shared dataset service vs independent caches, 32 concurrent jobs.
//!
//! The paper's optimizations treat each training run as its own world;
//! CANDLE in production runs fleets of concurrent HPO jobs over the same
//! files. This driver measures what the `datapipe` service buys twice
//! over:
//!
//! 1. **measured** — 32 concurrent jobs stream one epoch each, first
//!    through one shared [`DatasetService`] (one cold build, one decoded
//!    copy of every shard), then through 32 independent per-job caches
//!    splitting the same total memory budget (each pays its own cold
//!    build). Per-job streams are checked bit-identical to the same job
//!    run solo.
//! 2. **modelled** — the calibrated `cluster` fleet model
//!    ([`cluster::fleet_load_seconds`]): J independent cold loads vs one
//!    cold load plus J−1 warm shard streams, at Summit contention.

use crate::report::{format_table, Experiment};
use cluster::calib::Bench;
use cluster::{fleet_load_seconds, DataPlane, LoadMethod, Machine};
use dataio::{generate, ClassSpec, SyntheticSpec};
use datapipe::{stream_fingerprint, DatasetService, JobSpec, PoolStats, ServiceConfig};
use std::time::Instant;

/// Total in-memory shard-pool budget split across the fleet, bytes. Small
/// enough that the independent split is tight, large enough that every
/// job's working set is admissible.
const TOTAL_POOL_BUDGET: u64 = 8 << 20;

/// One measured shared-vs-independent fleet comparison.
#[derive(Debug, Clone)]
pub struct DatapipeComparison {
    /// Concurrent jobs in the fleet.
    pub jobs: usize,
    /// Dataset geometry.
    pub rows: usize,
    /// Feature columns (the cached dataset adds one label column).
    pub cols: usize,
    /// Wall seconds for all jobs through the shared service.
    pub shared_wall_s: f64,
    /// Wall seconds for all jobs, each with a private cache and
    /// `TOTAL_POOL_BUDGET / jobs` of pool memory.
    pub independent_wall_s: f64,
    /// Aggregate delivered rows per second, shared plane.
    pub shared_rows_per_s: f64,
    /// Aggregate delivered rows per second, independent caches.
    pub independent_rows_per_s: f64,
    /// Every concurrent job's stream matched its solo fingerprint.
    pub bit_identical: bool,
    /// Shared pool counters after the fleet drained.
    pub pool: PoolStats,
}

fn dataset_spec(rows: usize, cols: usize) -> SyntheticSpec {
    SyntheticSpec {
        rows,
        cols,
        kind: ClassSpec::Classification {
            classes: 4,
            separation: 1.0,
        },
        noise: 0.4,
        seed: 91,
    }
}

/// Runs `jobs` concurrent epoch streams over a shared service and over
/// independent per-job caches, returning walls, throughputs, and the
/// bit-identity verdict. `None` if the temp filesystem is unavailable.
pub fn measure_datapipe_comparison(
    jobs: usize,
    rows: usize,
    cols: usize,
    shards: usize,
) -> Option<DatapipeComparison> {
    let dir = std::env::temp_dir().join(format!(
        "candle_repro_datapipe_{}_{rows}x{cols}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok()?;
    let key = 0xDA7A;
    let batch = 64;
    let spec = dataset_spec(rows, cols);
    let job_spec = move |seed: u64| JobSpec {
        dataset: key,
        features: cols,
        batch,
        seed,
    };

    // Shared plane: one service, one cold build, full budget.
    let shared_root = dir.join("shared");
    let mut config = ServiceConfig::new(&shared_root);
    config.pool_budget_bytes = TOTAL_POOL_BUDGET;
    config.threads = 4;
    config.max_jobs = jobs;
    let service = DatasetService::new(config).ok()?;
    service
        .open_dataset(key, "synthetic:datapipe", "", shards, || {
            Ok(generate(&spec).to_frame())
        })
        .ok()?;

    // Solo baselines: each job alone on a fresh service over the warm
    // disk cache — the fingerprints the concurrent streams must match.
    let mut solo = Vec::with_capacity(jobs);
    for j in 0..jobs {
        let svc = DatasetService::new(ServiceConfig::new(&shared_root)).ok()?;
        svc.open_dataset(key, "synthetic:datapipe", "", shards, || {
            Ok(generate(&spec).to_frame())
        })
        .ok()?;
        let job = svc.admit(job_spec(j as u64)).ok()?;
        solo.push(stream_fingerprint(job.epoch(0)).ok()?);
    }

    // The concurrent shared fleet.
    let handles: Vec<_> = (0..jobs)
        .map(|j| service.admit(job_spec(j as u64)).ok())
        .collect::<Option<_>>()?;
    let shared_start = Instant::now();
    let threads: Vec<_> = handles
        .into_iter()
        .map(|job| {
            std::thread::spawn(move || {
                let fp = stream_fingerprint(job.epoch(0))?;
                Ok::<_, datacache::CacheError>((fp, job.stats().rows))
            })
        })
        .collect();
    let mut shared_rows = 0u64;
    let mut bit_identical = true;
    for (j, t) in threads.into_iter().enumerate() {
        let (fp, delivered) = t.join().ok()?.ok()?;
        shared_rows += delivered;
        bit_identical &= fp == solo[j];
    }
    let shared_wall_s = shared_start.elapsed().as_secs_f64();
    let pool = service.pool_stats();

    // Independent caches: same total memory, split J ways; every job owns
    // a root and pays its own cold build, all running concurrently.
    let per_job_budget = TOTAL_POOL_BUDGET / jobs as u64;
    let independent_start = Instant::now();
    let threads: Vec<_> = (0..jobs)
        .map(|j| {
            let root = dir.join(format!("indep-{j}"));
            std::thread::spawn(move || {
                let mut config = ServiceConfig::new(&root);
                config.pool_budget_bytes = per_job_budget;
                config.threads = 1;
                let svc = DatasetService::new(config)?;
                svc.open_dataset(key, "synthetic:datapipe", "", shards, || {
                    Ok(generate(&spec).to_frame())
                })?;
                let job = svc
                    .admit(job_spec(j as u64))
                    .map_err(|e| datacache::CacheError::Corrupt(e.to_string()))?;
                let fp = stream_fingerprint(job.epoch(0))?;
                Ok::<_, datacache::CacheError>((fp, job.stats().rows))
            })
        })
        .collect();
    let mut independent_rows = 0u64;
    for (j, t) in threads.into_iter().enumerate() {
        let (fp, delivered) = t.join().ok()?.ok()?;
        independent_rows += delivered;
        bit_identical &= fp == solo[j];
    }
    let independent_wall_s = independent_start.elapsed().as_secs_f64();

    std::fs::remove_dir_all(&dir).ok();
    Some(DatapipeComparison {
        jobs,
        rows,
        cols,
        shared_wall_s,
        independent_wall_s,
        shared_rows_per_s: shared_rows as f64 / shared_wall_s.max(1e-9),
        independent_rows_per_s: independent_rows as f64 / independent_wall_s.max(1e-9),
        bit_identical,
        pool,
    })
}

/// The shared-data-plane experiment: 32 concurrent jobs, measured and
/// modelled.
pub fn table_datapipe(quick: bool) -> Experiment {
    let jobs = 32;
    let (rows, cols, shards) = if quick { (1024, 16, 8) } else { (4096, 24, 8) };
    let mut text = String::new();
    match measure_datapipe_comparison(jobs, rows, cols, shards) {
        Some(c) => {
            assert!(
                c.bit_identical,
                "a concurrent job's stream diverged from its solo run"
            );
            let measured = format_table(
                &["data plane", "wall", "rows/s (aggregate)", "speedup"],
                &[
                    vec![
                        format!("{jobs} independent caches"),
                        format!("{:.3}s", c.independent_wall_s),
                        format!("{:.0}", c.independent_rows_per_s),
                        "1.00x".into(),
                    ],
                    vec![
                        "one shared service".into(),
                        format!("{:.3}s", c.shared_wall_s),
                        format!("{:.0}", c.shared_rows_per_s),
                        format!("{:.2}x", c.independent_wall_s / c.shared_wall_s.max(1e-9)),
                    ],
                ],
            );
            text.push_str(&format!(
                "Measured: {jobs} concurrent jobs, one shuffled epoch each over a \
                 {rows}x{} dataset ({shards} shards, {} MiB total pool budget):\n{measured}",
                cols + 1,
                TOTAL_POOL_BUDGET >> 20,
            ));
            text.push_str(&format!(
                "pool: {} decodes for {} acquires ({} hits), peak resident {} KiB; \
                 every stream bit-identical to its solo run: {}\n",
                c.pool.misses,
                c.pool.hits + c.pool.misses,
                c.pool.hits,
                c.pool.peak_resident_bytes >> 10,
                c.bit_identical,
            ));
            // Timer-based comparisons only mean something in release
            // builds; debug walls are dominated by unoptimized decode.
            if crate::gate::timed_asserts_enabled(quick) {
                assert!(
                    c.shared_rows_per_s >= c.independent_rows_per_s,
                    "shared plane slower than {jobs} independent caches: {:.0} vs {:.0} rows/s",
                    c.shared_rows_per_s,
                    c.independent_rows_per_s,
                );
            }
        }
        None => text.push_str("  (temp dir unavailable; measured section skipped)\n"),
    }

    text.push_str(
        "\nModelled NT3 fleet data loading on Summit (4 nodes per job, chunked \
         cold loads, seconds summed over the fleet):\n",
    );
    let fleet_sizes = [1usize, 8, 32];
    let mut rows_out = Vec::new();
    for plane in [DataPlane::Independent, DataPlane::SharedService] {
        let mut cells = vec![format!("{plane:?}")];
        for &j in &fleet_sizes {
            cells.push(format!(
                "{:.1}",
                fleet_load_seconds(
                    Machine::Summit,
                    Bench::Nt3,
                    LoadMethod::ChunkedLowMemoryFalse,
                    4,
                    j,
                    plane,
                )
            ));
        }
        rows_out.push(cells);
    }
    text.push_str(&format_table(
        &["data plane", "1 job", "8 jobs", "32 jobs"],
        &rows_out,
    ));

    Experiment {
        id: "table_datapipe",
        title: "Shared dataset service vs independent caches (32 concurrent jobs)",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance check at experiment scale: 32 concurrent jobs over
    /// one shared service, bit-identical to solo, throughput reported.
    #[test]
    fn measured_fleet_is_bit_identical_and_complete() {
        let c = measure_datapipe_comparison(32, 512, 8, 4).expect("temp fs");
        assert!(c.bit_identical);
        assert_eq!(c.pool.misses, 4, "one decode per shard on the shared plane");
        assert!(c.shared_rows_per_s > 0.0 && c.independent_rows_per_s > 0.0);
    }

    #[test]
    fn table_renders_measured_and_modelled_sections() {
        let e = table_datapipe(true);
        assert_eq!(e.id, "table_datapipe");
        assert!(e.text.contains("one shared service"));
        assert!(e.text.contains("SharedService"));
    }

    /// Wall-clock superiority is asserted inside `table_datapipe` in
    /// release builds; keep a cheap structural check for debug runs.
    #[cfg(not(debug_assertions))]
    #[test]
    fn full_table_asserts_throughput_in_release() {
        let e = table_datapipe(false);
        assert!(e.text.contains("one shared service"));
    }
}
