//! Shared model-plane sweep helpers.

use candle::{BenchId, HyperParams};
use cluster::{sweep_reports, LoadMethod, Machine, RunConfig, RunReport, ScalingMode};

/// The paper's Summit GPU counts for strong scaling (Figs 6/8/9/11/14/16).
pub const SUMMIT_GPU_SWEEP: [usize; 8] = [1, 6, 12, 24, 48, 96, 192, 384];

/// The paper's Theta node counts (Figs 13/15/17; up to 384 nodes).
pub const THETA_NODE_SWEEP: [usize; 6] = [12, 24, 48, 96, 192, 384];

/// The paper's weak-scaling GPU counts (Figs 18/20/21; up to 3,072).
pub const WEAK_GPU_SWEEP: [usize; 7] = [48, 96, 192, 384, 768, 1536, 3072];

/// Original vs optimized at one scale point.
#[derive(Debug, Clone)]
pub struct MethodComparisonRow {
    /// Worker count (GPUs or nodes).
    pub workers: usize,
    /// Run with `pandas.read_csv` defaults.
    pub original: RunReport,
    /// Run with the chunked `low_memory=False` loader.
    pub optimized: RunReport,
}

impl MethodComparisonRow {
    /// Total-runtime improvement percentage.
    pub fn improvement_pct(&self) -> f64 {
        self.optimized.runtime_improvement_pct(&self.original)
    }

    /// Energy-saving percentage.
    pub fn energy_saving_pct(&self) -> f64 {
        self.optimized.energy_saving_pct(&self.original)
    }
}

/// Simulates original-vs-optimized across a worker sweep on the shared
/// [`cluster::sweep_reports`] code path, skipping scale points the
/// configuration cannot run (e.g. strong scaling with more workers than
/// epochs).
pub fn method_comparison_sweep(
    bench: BenchId,
    machine: Machine,
    scaling: ScalingMode,
    workers: &[usize],
) -> Vec<MethodComparisonRow> {
    let hp = HyperParams::of(bench);
    let profile = hp.workload();
    let config = |method: LoadMethod| {
        move |w: usize| RunConfig {
            machine,
            workers: w,
            batch_size: hp.batch_size,
            scaling,
            load_method: method,
        }
    };
    let original = sweep_reports(&profile, workers, config(LoadMethod::PandasDefault));
    let optimized = sweep_reports(&profile, workers, config(LoadMethod::ChunkedLowMemoryFalse));
    // The load method never changes feasibility, so the two sweeps skip
    // identical points and zip cleanly.
    assert_eq!(original.len(), optimized.len());
    original
        .into_iter()
        .zip(optimized)
        .map(|((w, original), (w2, optimized))| {
            debug_assert_eq!(w, w2);
            MethodComparisonRow {
                workers: w,
                original,
                optimized,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::calib::Bench;

    #[test]
    fn sweep_produces_rows_and_positive_improvement() {
        let rows = method_comparison_sweep(
            Bench::Nt3,
            Machine::Summit,
            ScalingMode::Strong,
            &SUMMIT_GPU_SWEEP,
        );
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.improvement_pct() > 0.0, "at {} workers", r.workers);
            assert!(r.energy_saving_pct() > 0.0, "at {} workers", r.workers);
        }
        // Improvement grows as loading dominates (strong scaling).
        assert!(rows.last().unwrap().improvement_pct() > rows[0].improvement_pct());
    }

    #[test]
    fn sweep_skips_impossible_points() {
        // P1B3 has 1 epoch: strong scaling beyond 1 worker is impossible.
        let rows = method_comparison_sweep(
            Bench::P1b3,
            Machine::Summit,
            ScalingMode::Strong,
            &SUMMIT_GPU_SWEEP,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].workers, 1);
    }

    #[test]
    fn weak_scaling_sweep_reaches_3072() {
        let rows = method_comparison_sweep(
            Bench::Nt3,
            Machine::Summit,
            ScalingMode::Weak {
                epochs_per_worker: 8,
            },
            &WEAK_GPU_SWEEP,
        );
        assert_eq!(rows.len(), 7);
        assert_eq!(rows.last().unwrap().workers, 3072);
    }
}
