//! Ablation and projection experiments beyond the paper's figures
//! (DESIGN.md §6 and the paper's §7 future-work items).

use crate::report::{format_table, pct, Experiment};
use cluster::calib::{self, Bench};
use cluster::{CommModel, Machine, NcclVersion};
use std::time::Instant;

/// Projection of the paper's planned NCCL 2.3.7 → 2.4.2 upgrade: NT3
/// weak-scaling time per epoch with each release.
pub fn ablation_nccl_upgrade() -> Experiment {
    let old = CommModel::new(Machine::Summit);
    let new = CommModel::new(Machine::Summit).with_nccl(NcclVersion::V2_4_2);
    let bytes = calib::model_bytes(Bench::Nt3);
    let (batch_s, _) = calib::batch_compute_seconds(Bench::Nt3);
    let steps = 56.0;
    let rows: Vec<Vec<String>> = [48usize, 96, 192, 384, 768, 1536, 3072]
        .iter()
        .map(|&n| {
            let e_old = steps * (batch_s + old.allreduce_seconds(n, bytes));
            let e_new = steps * (batch_s + new.allreduce_seconds(n, bytes));
            vec![
                n.to_string(),
                format!("{e_old:.1}"),
                format!("{e_new:.1}"),
                pct((e_old - e_new) / e_old * 100.0),
            ]
        })
        .collect();
    Experiment {
        id: "ablation_nccl",
        title: "Projected NT3 time/epoch (s) with the NCCL 2.4 upgrade (paper §7 future work)",
        text: format_table(&["GPUs", "NCCL 2.3.7", "NCCL 2.4.2", "epoch speedup"], &rows),
    }
}

/// Flat ring vs two-level hierarchical allreduce: the modelled per-step
/// cost at Summit's 6-GPU node topology.
pub fn ablation_hierarchical_allreduce() -> Experiment {
    let m = CommModel::new(Machine::Summit);
    let bytes = calib::model_bytes(Bench::Nt3);
    let rows: Vec<Vec<String>> = [6usize, 48, 96, 384, 768, 3072]
        .iter()
        .map(|&n| {
            let flat = m.allreduce_seconds(n, bytes);
            let hier = m.hierarchical_allreduce_seconds(n, bytes, 6);
            vec![
                n.to_string(),
                format!("{:.1} ms", flat * 1e3),
                format!("{:.1} ms", hier * 1e3),
                format!("{:.2}x", flat / hier.max(1e-12)),
            ]
        })
        .collect();
    Experiment {
        id: "ablation_hierarchical",
        title: "Flat ring vs hierarchical allreduce per step (modelled, Summit)",
        text: format_table(&["GPUs", "flat ring", "hierarchical", "speedup"], &rows),
    }
}

/// Functional measurement: ring vs naive allreduce and flat vs
/// hierarchical on real threads — the live counterpart of the modelled
/// ablations.
pub fn ablation_collectives_measured() -> Experiment {
    use collectives::{hierarchical_allreduce, naive_allreduce, ring_allreduce, run_workers};
    let elements = 262_144; // 1 MB of f32
    let workers = 6;
    let time = |f: &(dyn Fn(&mut collectives::Communicator, &mut [f32]) + Sync)| -> f64 {
        // Warm-up + 5 measured repetitions, mean wall time.
        let reps = 5;
        let start = Instant::now();
        for _ in 0..reps {
            run_workers(workers, |comm| {
                let mut data = vec![comm.rank() as f32; elements];
                f(comm, &mut data);
                std::hint::black_box(data[0]);
            });
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let ring = time(&|c, d| ring_allreduce(c, d).expect("ring"));
    let naive = time(&|c, d| naive_allreduce(c, d).expect("naive"));
    let hier = time(&|c, d| hierarchical_allreduce(c, d, 3).expect("hier"));
    let rows = vec![
        vec!["ring (NCCL-style)".to_string(), format!("{:.2} ms", ring * 1e3)],
        vec!["naive (reduce+bcast)".to_string(), format!("{:.2} ms", naive * 1e3)],
        vec!["hierarchical (3/node)".to_string(), format!("{:.2} ms", hier * 1e3)],
    ];
    let mut text = format_table(&["algorithm", "wall time (6 workers, 1 MB)"], &rows);
    text.push_str("\n(measured on local threads; see the collective_algorithms bench for full sweeps)\n");
    Experiment {
        id: "ablation_collectives",
        title: "Allreduce algorithms measured on simulated workers",
        text,
    }
}

/// Tensor fusion on/off: modelled allreduce calls and per-step time for a
/// many-tensor model (Horovod's signature optimization).
pub fn ablation_fusion() -> Experiment {
    use collectives::FusionPlan;
    let m = CommModel::new(Machine::Summit);
    // NT3's parameter tensors: two conv layers + two dense layers, weights
    // and biases — sizes in elements at full scale.
    let tensors: Vec<usize> = vec![
        20 * 128,
        128,
        10 * 128 * 128,
        128,
        96_604 * 200,
        200,
        200 * 20,
        20,
        20 * 2,
        2,
    ];
    let fused = FusionPlan::plan(&tensors, collectives::DEFAULT_FUSION_THRESHOLD_BYTES);
    let unfused = FusionPlan::unfused(&tensors);
    let step_time = |plan: &FusionPlan| -> f64 {
        plan.group_elements()
            .iter()
            .map(|&e| m.allreduce_seconds(384, e as f64 * 4.0))
            .sum()
    };
    let t_fused = step_time(&fused);
    let t_unfused = step_time(&unfused);
    let rows = vec![
        vec![
            "fused (64 MB buffer)".to_string(),
            fused.num_calls().to_string(),
            format!("{:.3} s", t_fused),
        ],
        vec![
            "unfused".to_string(),
            unfused.num_calls().to_string(),
            format!("{:.3} s", t_unfused),
        ],
    ];
    let mut text = format_table(&["mode", "allreduce calls/step", "comm time/step (384 GPUs)"], &rows);
    text.push_str(&format!(
        "\nfusion saves {:.1}% of per-step communication at 384 GPUs\n",
        (t_unfused - t_fused) / t_unfused * 100.0
    ));
    Experiment {
        id: "ablation_fusion",
        title: "Horovod tensor fusion on/off (modelled NT3 layer sizes)",
        text,
    }
}

/// All ablations in one list.
pub fn ablations() -> Vec<Experiment> {
    vec![
        ablation_nccl_upgrade(),
        ablation_hierarchical_allreduce(),
        ablation_collectives_measured(),
        ablation_fusion(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nccl_projection_shows_speedup_growing_with_scale() {
        let e = ablation_nccl_upgrade();
        let speedups: Vec<f64> = e
            .text
            .lines()
            .skip(2)
            .filter_map(|l| {
                l.rsplit_once(' ')
                    .or(Some((l, "")))
                    .map(|_| l.split_whitespace().last().unwrap_or("0%"))
                    .and_then(|c| c.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert_eq!(speedups.len(), 7);
        // Upgrade matters more at larger scale.
        assert!(speedups.last().unwrap() > speedups.first().unwrap());
        assert!(*speedups.last().unwrap() > 10.0);
    }

    #[test]
    fn hierarchical_ablation_speedup_exceeds_one_at_scale() {
        let e = ablation_hierarchical_allreduce();
        assert!(e.text.contains('x'));
        // The last row (3072 GPUs) should show a clear win.
        let last = e.text.lines().last().unwrap();
        let factor: f64 = last
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(factor > 1.5, "hierarchical speedup {factor}");
    }

    #[test]
    fn fusion_reduces_calls_and_time() {
        let e = ablation_fusion();
        assert!(e.text.contains("fusion saves"));
        // Fused must be a single call for NT3's ~77 MB of gradients...
        // actually above 64 MB it splits into 2; either way fewer than 10.
        let fused_calls: usize = e
            .text
            .lines()
            .find(|l| l.contains("fused (64"))
            .and_then(|l| l.split_whitespace().nth(4).map(str::to_string))
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        assert!(fused_calls >= 1 && fused_calls < 10);
    }

    #[test]
    fn measured_collectives_runs() {
        let e = ablation_collectives_measured();
        assert!(e.text.contains("ring (NCCL-style)"));
        assert!(e.text.contains("ms"));
    }
}
