//! Shared functional-plane (real training) sweep helpers.
//!
//! The paper's accuracy/loss panels vary the GPU count N while holding the
//! total epoch budget fixed, so each worker runs `E/N` sequential epochs.
//! Accuracy is governed by that per-worker budget (and the effective batch
//! `N×B` of averaged gradients). We reproduce the curve with real training
//! at a scaled-down epoch budget and worker counts that are feasible as
//! threads, keeping the x-axis quantity — epochs per worker — identical in
//! spirit.

use candle::pipeline::FuncScaling;
use candle::{BenchDataKind, BenchId, HyperParams, ParallelRunSpec};

/// One point of an accuracy-vs-workers sweep.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Simulated worker count.
    pub workers: usize,
    /// Epochs each worker ran.
    pub epochs_per_worker: usize,
    /// Final training accuracy on rank 0 (classification) — the quantity
    /// Figures 6b/9b plot.
    pub train_accuracy: Option<f64>,
    /// Final training loss on rank 0 — the quantity Figure 8b plots.
    pub train_loss: f64,
    /// Held-out test accuracy.
    pub test_accuracy: f64,
    /// Held-out test loss.
    pub test_loss: f64,
}

/// Runs the benchmark at each worker count under a fixed total epoch
/// budget (strong scaling), with linear LR scaling, returning one point
/// per feasible worker count.
pub fn accuracy_sweep(
    bench: BenchId,
    total_epochs: usize,
    workers: &[usize],
    batch: usize,
    seed: u64,
) -> Vec<AccuracyPoint> {
    let hp = HyperParams::of(bench);
    workers
        .iter()
        .filter_map(|&w| {
            let spec = ParallelRunSpec {
                bench,
                workers: w,
                scaling: FuncScaling::Strong { total_epochs },
                batch,
                // Scaled-down models on preprocessed (unit-scale) features
                // need a larger base LR than Table 1's full-scale values;
                // Adam (P1B1) is scale-robust and keeps a small one.
                base_lr: match bench {
                    cluster::calib::Bench::P1b1 => hp.effective_lr().max(0.002) * 4.0,
                    _ => 0.04,
                },
                data: BenchDataKind::tiny(bench),
                seed,
                record_timeline: false,
                data_mode: candle::pipeline::DataMode::FullReplicated,
                cache: None,
                data_service: None,
                comm_overlap: None,
            };
            candle::run_parallel(&spec).ok().map(|out| AccuracyPoint {
                workers: w,
                epochs_per_worker: out.epochs_per_worker,
                train_accuracy: out.train_accuracy,
                train_loss: out.train_loss,
                test_accuracy: out.test_accuracy,
                test_loss: out.test_loss,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::calib::Bench;

    #[test]
    fn nt3_sweep_shows_the_fig6b_shape() {
        // Fixed budget, growing workers: epochs/worker falls, accuracy at
        // the high-epoch end beats the 1-epoch end.
        let points = accuracy_sweep(Bench::Nt3, 16, &[1, 4, 16], 20, 7);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].epochs_per_worker, 16);
        assert_eq!(points[2].epochs_per_worker, 1);
        let full = points[0].test_accuracy;
        let starved = points[2].test_accuracy;
        assert!(
            full >= starved,
            "16 epochs/worker ({full}) must not lose to 1 ({starved})"
        );
        assert!(full > 0.9, "full-budget accuracy {full}");
    }

    #[test]
    fn infeasible_worker_counts_are_skipped() {
        let points = accuracy_sweep(Bench::Nt3, 4, &[1, 2, 8], 20, 8);
        // 8 workers cannot split 4 epochs.
        assert_eq!(points.len(), 2);
    }
}
