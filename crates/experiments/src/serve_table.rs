//! Inference serving throughput: batch-1 vs dynamic micro-batching.
//!
//! The training-side chapters of the paper show that the pipeline around
//! the math — not the math itself — sets end-to-end performance. This
//! driver demonstrates the same effect on the inference side: a trained
//! NT3-like classifier is served through `serve`'s engine once with
//! micro-batching disabled (`max_batch = 1`, every request pays the full
//! dispatch overhead) and once per dynamic batch limit, under an
//! identical deterministic closed-loop workload. Dynamic batching
//! amortizes queue hand-off and dispatch across coalesced rows and must
//! deliver strictly higher throughput; bit-exact row-independent matmul
//! means every configuration also returns bit-identical predictions,
//! which the shared output hash verifies.

use crate::report::{format_table, Experiment};
use dlframe::{Activation, Dataset, Dense, FitConfig, Loss, NoSync, Optimizer, Sequential};
use serve::{run_closed_loop, ClosedLoopConfig, ServeConfig, ServeEngine};
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;
use xrng::RandomSource;

/// One serving configuration's measured outcome.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Micro-batch limit (1 = batching disabled).
    pub max_batch: usize,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Mean rows per dispatched batch.
    pub mean_batch: f64,
    /// End-to-end latency p50, milliseconds.
    pub p50_ms: f64,
    /// End-to-end latency p99, milliseconds.
    pub p99_ms: f64,
    /// Order-independent hash of all served predictions.
    pub output_hash: u64,
}

const FEATURES: usize = 48;
const CLASSES: usize = 4;

/// Trains the small classifier every serving run shares: Gaussian class
/// blobs, enough to give the forward pass realistic dense layers.
fn trained_model(seed: u64) -> Arc<Sequential> {
    let mut rng = xrng::seeded(seed);
    let samples = 256;
    let mut x = Vec::with_capacity(samples * FEATURES);
    let mut y = vec![0.0f32; samples * CLASSES];
    let centers: Vec<Vec<f32>> = (0..CLASSES)
        .map(|_| (0..FEATURES).map(|_| rng.next_f32() * 4.0 - 2.0).collect())
        .collect();
    for s in 0..samples {
        let class = s % CLASSES;
        for &center in &centers[class] {
            x.push(center + (rng.next_f32() - 0.5));
        }
        y[s * CLASSES + class] = 1.0;
    }
    let data = Dataset::new(
        Tensor::from_vec([samples, FEATURES], x).expect("x shape"),
        Tensor::from_vec([samples, CLASSES], y).expect("y shape"),
    );
    let mut model = Sequential::new(seed);
    model
        .add(Box::new(Dense::new(FEATURES, 64, Activation::Relu, &mut rng)))
        .add(Box::new(Dense::new(64, 64, Activation::Relu, &mut rng)))
        .add(Box::new(Dense::new(64, CLASSES, Activation::Linear, &mut rng)))
        .compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.05));
    model
        .fit(
            &data,
            &FitConfig {
                epochs: 3,
                batch_size: 32,
                ..Default::default()
            },
            &mut NoSync,
        )
        .expect("training the serving model");
    Arc::new(model)
}

/// Serves the same closed-loop workload once per `max_batch` limit and
/// returns one row per configuration.
pub fn measure_serving_sweep(quick: bool, seed: u64) -> Vec<ServingRow> {
    let model = trained_model(xrng::derive_seed(seed, 0));
    // Keep more clients outstanding than the largest batch limit: a
    // closed loop can only ever queue `clients` requests, so a batch
    // limit above that would stall on `max_wait` for rows that cannot
    // arrive.
    let load = ClosedLoopConfig {
        clients: 32,
        requests_per_client: if quick { 40 } else { 150 },
        features: FEATURES,
        seed: xrng::derive_seed(seed, 1),
    };
    [1usize, 8, 16]
        .iter()
        .map(|&max_batch| {
            let engine = ServeEngine::start(
                Arc::clone(&model),
                ServeConfig {
                    max_batch,
                    max_wait: Duration::from_micros(500),
                    queue_capacity: 4096,
                    workers: 2,
                    slo: None,
                    kill_batches: Vec::new(),
                },
            );
            let run = run_closed_loop(&engine.handle(), &load);
            let report = engine.shutdown();
            ServingRow {
                max_batch,
                throughput_rps: run.throughput_rps,
                mean_batch: report.mean_batch,
                p50_ms: report.latency.p50_s * 1e3,
                p99_ms: report.latency.p99_s * 1e3,
                output_hash: run.output_hash,
            }
        })
        .collect()
}

/// The serving experiment: a batch-limit sweep under one workload, with
/// the dynamic-batching throughput gain asserted.
///
/// # Panics
/// Panics if (after retries, to ride out scheduler noise) dynamic
/// batching fails to beat batch-1 throughput, or if any configuration
/// serves different prediction bits.
pub fn table_serve(quick: bool) -> Experiment {
    let mut rows = measure_serving_sweep(quick, 2024);
    for attempt in 1.. {
        let batch1 = rows[0].throughput_rps;
        let dynamic = rows
            .iter()
            .filter(|r| r.max_batch >= 8)
            .map(|r| r.throughput_rps)
            .fold(0.0f64, f64::max);
        if dynamic > batch1 {
            break;
        }
        assert!(
            attempt < 3,
            "dynamic batching ({dynamic:.0} req/s) failed to beat batch-1 \
             ({batch1:.0} req/s) in {attempt} attempts"
        );
        rows = measure_serving_sweep(quick, 2024 + attempt);
    }
    for r in &rows {
        assert_eq!(
            r.output_hash, rows[0].output_hash,
            "max_batch={} served different prediction bits",
            r.max_batch
        );
    }

    let batch1 = rows[0].throughput_rps;
    let table = format_table(
        &["max_batch", "req/s", "speedup", "mean rows/batch", "p50 ms", "p99 ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.max_batch.to_string(),
                    format!("{:.0}", r.throughput_rps),
                    format!("{:.2}x", r.throughput_rps / batch1.max(1e-9)),
                    format!("{:.2}", r.mean_batch),
                    format!("{:.3}", r.p50_ms),
                    format!("{:.3}", r.p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let text = format!(
        "Closed-loop serving of a trained {FEATURES}-feature classifier \
         (32 clients, 2 workers, max_wait 0.5ms):\n{table}\
         identical output hash across all configurations: \
         predictions are bit-identical regardless of batch composition\n"
    );
    Experiment {
        id: "table_serve",
        title: "Inference serving: dynamic micro-batching vs batch-1 dispatch",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_batching_beats_batch1_and_preserves_bits() {
        let e = table_serve(true);
        assert_eq!(e.id, "table_serve");
        assert!(e.text.contains("max_batch"));
        assert!(e.text.contains("identical output hash"));
    }

    #[test]
    fn sweep_coalesces_only_when_allowed() {
        let rows = measure_serving_sweep(true, 7);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].max_batch, 1);
        assert!((rows[0].mean_batch - 1.0).abs() < 1e-9, "batch-1 must not coalesce");
        assert!(
            rows.iter().any(|r| r.mean_batch > 1.0),
            "dynamic limits never coalesced: {rows:?}"
        );
    }
}
