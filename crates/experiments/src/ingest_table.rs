//! Seed-vs-turbo CSV ingest comparison.
//!
//! The paper's loader fix (chunked, `low_memory=False`) attacks I/O
//! scheduling; the turbo engine (`dataio::csv::turbo`) attacks the parse
//! itself — SWAR structural scan, fixed-format numeric conversion, and
//! allocation-free parallel materialization into the final columns. This
//! driver measures all four strategies on generated files at the paper's
//! two geometries (NT3-like wide, P1B3-like narrow) and reports wall time,
//! throughput, and the turbo engine's per-phase breakdown.

use crate::report::{format_table, Experiment};
use dataio::csv::IngestPhases;
use dataio::{generate, read_csv, write_csv_dataset, ClassSpec, ReadStrategy, SyntheticSpec};
use std::time::Instant;

/// One strategy timing on one generated file geometry.
#[derive(Debug, Clone)]
pub struct IngestComparison {
    /// File geometry label.
    pub geometry: String,
    /// Strategy measured.
    pub strategy: ReadStrategy,
    /// Best-of-reps wall seconds.
    pub seconds: f64,
    /// Throughput in MiB/s at the best rep.
    pub mib_s: f64,
    /// Turbo per-phase breakdown (best rep), when the strategy reports it.
    pub phases: Option<IngestPhases>,
    /// True for the NT3-shaped file the acceptance criteria gate on.
    pub nt3: bool,
}

impl IngestComparison {
    /// Convenience label for report rows.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.strategy.label(), self.geometry)
    }
}

/// Times every read strategy on the NT3-like wide file and the P1B3-like
/// narrow file. `quick` shrinks the widths so the debug test suite stays
/// fast; the full mode matches the `table_cache` NT3 geometry.
pub fn measure_ingest_comparison(quick: bool) -> Vec<IngestComparison> {
    let reps = if quick { 2 } else { 3 };
    let dir = std::env::temp_dir().join(format!(
        "candle_repro_ingest_table_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    if std::fs::create_dir_all(&dir).is_err() {
        return Vec::new();
    }
    let geometries: Vec<(String, SyntheticSpec, bool)> = vec![
        (
            {
                let cols = if quick { 4_000 } else { 12_000 };
                format!("wide NT3-like 160x{cols}")
            },
            SyntheticSpec {
                rows: 160,
                cols: if quick { 4_000 } else { 12_000 },
                kind: ClassSpec::Classification {
                    classes: 2,
                    separation: 1.0,
                },
                noise: 0.5,
                seed: 41,
            },
            true,
        ),
        (
            {
                let rows = if quick { 8_000 } else { 32_000 };
                format!("narrow P1B3-like {rows}x30")
            },
            SyntheticSpec {
                rows: if quick { 8_000 } else { 32_000 },
                cols: 30,
                kind: ClassSpec::Regression { signal_features: 8 },
                noise: 0.02,
                seed: 42,
            },
            false,
        ),
    ];
    let mut out = Vec::new();
    for (geometry, spec, nt3) in geometries {
        let path = dir.join(format!("{}x{}.csv", spec.rows, spec.cols));
        if write_csv_dataset(&path, &generate(&spec)).is_err() {
            continue;
        }
        for strategy in [
            ReadStrategy::PandasDefault,
            ReadStrategy::ChunkedLowMemory,
            ReadStrategy::DaskParallel,
            ReadStrategy::TurboParallel,
        ] {
            let mut best = f64::INFINITY;
            let mut best_mib = 0.0;
            let mut best_phases = None;
            for _ in 0..reps {
                let start = Instant::now();
                let Ok((frame, stats)) = read_csv(&path, strategy) else {
                    break;
                };
                let s = start.elapsed().as_secs_f64();
                std::hint::black_box(&frame);
                if s < best {
                    best = s;
                    best_mib = stats.throughput_mib_s();
                    best_phases = stats.ingest;
                }
            }
            if best.is_finite() {
                out.push(IngestComparison {
                    geometry: geometry.clone(),
                    strategy,
                    seconds: best,
                    mib_s: best_mib,
                    phases: best_phases,
                    nt3,
                });
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// The ingest-engine experiment: all four strategies at both geometries,
/// rendered like the paper's loader tables plus the turbo phase breakdown.
/// In full mode on a release build it asserts the acceptance bar: turbo
/// beats the chunked strategy wall-clock at the NT3-shaped file. Debug
/// timings are too distorted to gate on.
pub fn table_ingest(quick: bool) -> Experiment {
    let rows = measure_ingest_comparison(quick);
    if crate::gate::timed_asserts_enabled(quick) {
        let time_of = |s: ReadStrategy| {
            rows.iter()
                .find(|r| r.nt3 && r.strategy == s)
                .map(|r| r.seconds)
        };
        if let (Some(turbo), Some(chunked)) = (
            time_of(ReadStrategy::TurboParallel),
            time_of(ReadStrategy::ChunkedLowMemory),
        ) {
            assert!(
                turbo < chunked,
                "turbo slower than chunked at the NT3 geometry: {turbo:.4}s vs {chunked:.4}s"
            );
        }
    }
    let mut baseline = f64::NAN;
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            if r.strategy == ReadStrategy::PandasDefault {
                baseline = r.seconds;
            }
            let phase_text = match &r.phases {
                Some(p) => format!(
                    "scan {:.1}ms / parse {:.1}ms / mat {:.1}ms",
                    p.scan.as_secs_f64() * 1e3,
                    p.parse.as_secs_f64() * 1e3,
                    p.materialize.as_secs_f64() * 1e3
                ),
                None => "-".into(),
            };
            vec![
                r.label(),
                format!("{:.3}s", r.seconds),
                format!("{:.1}", r.mib_s),
                format!("{:.2}x", baseline / r.seconds.max(1e-9)),
                phase_text,
            ]
        })
        .collect();
    let mut text = String::from(
        "Seed read strategies vs the turbo engine (SWAR structural scan,\n\
         fixed-format parse, allocation-free parallel materialize),\n\
         best-of-reps wall time on generated files:\n",
    );
    text.push_str(&format_table(
        &["strategy @ geometry", "time", "MiB/s", "vs pandas", "turbo phases"],
        &cells,
    ));
    Experiment {
        id: "table_ingest",
        title: "Seed vs turbo CSV ingest wall time at benchmark file geometries",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_strategy_at_both_geometries() {
        let rows = measure_ingest_comparison(true);
        assert_eq!(rows.len(), 8, "4 strategies x 2 geometries");
        assert_eq!(rows.iter().filter(|r| r.nt3).count(), 4);
        for r in &rows {
            assert!(r.seconds > 0.0, "{}", r.label());
            assert!(r.mib_s > 0.0, "{}", r.label());
            let is_turbo = r.strategy == ReadStrategy::TurboParallel;
            assert_eq!(r.phases.is_some(), is_turbo, "{}", r.label());
        }
    }

    #[test]
    fn table_renders_every_strategy_row() {
        let e = table_ingest(true);
        assert_eq!(e.id, "table_ingest");
        assert!(e.text.contains("turbo parallel (SWAR scan)"));
        assert!(e.text.contains("chunked low_memory=False"));
        assert!(e.text.contains("scan "));
        assert!(e.text.contains("vs pandas"));
    }

    // Timing comparisons only mean something with optimizations on; the
    // debug-mode suite checks rendering above instead.
    #[cfg(not(debug_assertions))]
    #[test]
    fn turbo_beats_chunked_at_nt3_geometry() {
        let rows = measure_ingest_comparison(false);
        let time_of = |s: ReadStrategy| {
            rows.iter()
                .find(|r| r.nt3 && r.strategy == s)
                .map(|r| r.seconds)
                .expect("strategy measured")
        };
        let turbo = time_of(ReadStrategy::TurboParallel);
        let chunked = time_of(ReadStrategy::ChunkedLowMemory);
        assert!(
            turbo < chunked,
            "turbo {turbo:.4}s vs chunked {chunked:.4}s at NT3 geometry"
        );
    }
}
