//! `experiments` — one driver per table and figure of the paper.
//!
//! Every driver regenerates its experiment from the reproduction's two
//! planes and renders a plain-text report:
//!
//! * timing / power / energy series come from the calibrated `cluster`
//!   simulator (the paper's measurements were on Summit/Theta, which we
//!   replace per DESIGN.md);
//! * accuracy / loss series come from **real training** through
//!   `candle::run_parallel` on dimension-scaled synthetic data;
//! * the data-loading method comparison additionally runs the real Rust
//!   CSV engine (`dataio`) on generated files, validating the *ratios*
//!   behind Tables 3/4 on local hardware.
//!
//! The [`all`] function runs the complete suite in paper order (the
//! `paper_report` example prints it); each driver is also exported for
//! targeted use by the benches and tests.

mod ablations;
mod cache_table;
mod datapipe_table;
mod figures_batch;
mod figures_improve;
mod figures_strong;
mod figures_weak;
mod fleet_table;
mod functional;
mod gate;
mod hpo_table;
mod ingest_table;
mod kernels_table;
mod overlap_table;
mod perfmodel_table;
mod report;
mod resil_table;
mod serve_table;
mod sweeps;
mod tables;

pub use ablations::{
    ablation_collectives_measured, ablation_fusion, ablation_hierarchical_allreduce,
    ablation_nccl_upgrade, ablations,
};
pub use cache_table::{measure_cache_comparison, table_cache, CacheComparison};
pub use datapipe_table::{measure_datapipe_comparison, table_datapipe, DatapipeComparison};
pub use figures_batch::fig10;
pub use figures_improve::{fig11, fig12, fig13, fig14, fig15, fig16, fig17};
pub use figures_strong::{fig6, fig7, fig8, fig9};
pub use figures_weak::{fig18, fig19, fig20, fig21};
pub use fleet_table::{measure_fleet_comparison, table_fleet, FleetComparison};
pub use functional::{accuracy_sweep, AccuracyPoint};
pub use gate::{multicore_host, timed_asserts_enabled};
pub use hpo_table::{measure_hpo, table_hpo, HpoMeasurement};
pub use ingest_table::{measure_ingest_comparison, table_ingest, IngestComparison};
pub use kernels_table::{measure_kernel_comparison, table_kernels, KernelComparison};
pub use overlap_table::{measure_overlap_comparison, table_overlap, OverlapComparison};
pub use perfmodel_table::{table_perfmodel, FitValidation, TunedKnob};
pub use report::{format_table, Experiment};
pub use resil_table::table_resil;
pub use serve_table::{measure_serving_sweep, table_serve, ServingRow};
pub use sweeps::{
    method_comparison_sweep, MethodComparisonRow, SUMMIT_GPU_SWEEP, THETA_NODE_SWEEP,
};
pub use tables::{table1, table2, table3, table4, table5, table6};

/// Runs every experiment in paper order.
///
/// `quick` shrinks the functional (real-training) sweeps so the whole
/// suite finishes in tens of seconds; the full mode matches the epoch
/// budgets documented in EXPERIMENTS.md.
pub fn all(quick: bool) -> Vec<Experiment> {
    vec![
        table1(),
        fig6(quick),
        table2(),
        fig7(),
        fig8(quick),
        fig9(quick),
        fig10(quick),
        table3(),
        table4(),
        table_cache(quick),
        fig11(),
        table5(),
        fig12(),
        fig13(),
        fig14(),
        fig15(),
        fig16(),
        fig17(),
        fig18(),
        table6(quick),
        fig19(),
        fig20(),
        fig21(),
        table_serve(quick),
        table_resil(quick),
        table_kernels(quick),
        table_ingest(quick),
        table_datapipe(quick),
        table_hpo(quick),
        table_fleet(quick),
        table_overlap(quick),
        table_perfmodel(quick),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_quick_runs_every_experiment() {
        let experiments = super::all(true);
        assert_eq!(experiments.len(), 32);
        for e in &experiments {
            assert!(!e.text.is_empty(), "{} rendered empty", e.id);
            assert!(!e.title.is_empty());
        }
        // Paper ordering spot checks.
        assert_eq!(experiments[0].id, "table1");
        assert!(experiments.iter().any(|e| e.id == "fig12"));
        assert!(experiments.iter().any(|e| e.id == "table6"));
        assert!(experiments.iter().any(|e| e.id == "table_cache"));
        assert!(experiments.iter().any(|e| e.id == "table_serve"));
        assert!(experiments.iter().any(|e| e.id == "table_resil"));
        assert!(experiments.iter().any(|e| e.id == "table_kernels"));
        assert!(experiments.iter().any(|e| e.id == "table_ingest"));
        assert!(experiments.iter().any(|e| e.id == "table_datapipe"));
        assert!(experiments.iter().any(|e| e.id == "table_hpo"));
        assert!(experiments.iter().any(|e| e.id == "table_fleet"));
        assert!(experiments.iter().any(|e| e.id == "table_overlap"));
        assert!(experiments.iter().any(|e| e.id == "table_perfmodel"));
    }
}
