//! Figure 10: P1B3 batch-size scaling strategies.

use crate::report::{format_table, secs, Experiment};
use candle::pipeline::FuncScaling;
use candle::{scaled_batch, BatchScaling, BenchDataKind, HyperParams, ParallelRunSpec};
use cluster::calib::Bench;
use cluster::run::{simulate, RunError};
use cluster::{LoadMethod, Machine, RunConfig, ScalingMode};

const STRATEGIES: [BatchScaling; 3] = [
    BatchScaling::Linear,
    BatchScaling::SquareRoot,
    BatchScaling::CubicRoot,
];

/// Figure 10: P1B3 under linear / square-root / cubic-root batch scaling —
/// (a) modelled runtime per strategy (with the paper's OOM failures at
/// linear 192/384 GPUs); (b) real-training accuracy per strategy.
pub fn fig10(quick: bool) -> Experiment {
    let hp = HyperParams::of(Bench::P1b3);
    let mut text = String::from("(a) Performance by batch-scaling strategy (modelled, Summit):\n");
    let mut rows = Vec::new();
    for &gpus in &[1usize, 6, 12, 24, 48, 96, 192, 384] {
        let mut cells = vec![gpus.to_string()];
        for strategy in STRATEGIES {
            let batch = scaled_batch(hp.batch_size, gpus, strategy);
            let result = simulate(
                &hp.workload(),
                &RunConfig {
                    machine: Machine::Summit,
                    workers: gpus,
                    batch_size: batch,
                    // P1B3 has 1 epoch: every GPU runs it (weak-style).
                    scaling: ScalingMode::Weak {
                        epochs_per_worker: 1,
                    },
                    load_method: LoadMethod::PandasDefault,
                },
            );
            cells.push(match result {
                Ok(r) => format!("{} (B={batch})", secs(r.total_s)),
                Err(RunError::OutOfMemory { .. }) => format!("OOM (B={batch})"),
                Err(e) => format!("err: {e}"),
            });
        }
        rows.push(cells);
    }
    text.push_str(&format_table(
        &["GPUs", "linear", "square root", "cubic root"],
        &rows,
    ));

    text.push_str("\n(b) Accuracy by strategy (real training, scaled dataset):\n");
    // P1B3 is regression; the paper reports R²-like accuracy. We report
    // 1 - MSE/Var as the comparable "growth prediction accuracy".
    let workers: &[usize] = if quick {
        &[1, 4, 8]
    } else {
        &[1, 4, 8, 16, 48]
    };
    let mut rows = Vec::new();
    for strategy in STRATEGIES {
        for &w in workers {
            let batch = scaled_batch(hp.batch_size, w, strategy);
            let spec = ParallelRunSpec {
                bench: Bench::P1b3,
                workers: w,
                scaling: FuncScaling::Weak {
                    epochs_per_worker: 1,
                },
                batch,
                base_lr: 1.0,
                data: BenchDataKind::tiny(Bench::P1b3),
                seed: 1010,
                record_timeline: false,
                data_mode: candle::pipeline::DataMode::FullReplicated,
                cache: None,
                data_service: None,
                comm_overlap: None,
            };
            if let Ok(out) = candle::run_parallel(&spec) {
                // R²-style accuracy: 1 − MSE / Var(target).
                let accuracy = (1.0 - out.test_loss / out.test_target_variance.max(1e-9)).max(0.0);
                rows.push(vec![
                    strategy.label().to_string(),
                    w.to_string(),
                    batch.to_string(),
                    format!("{:.4}", out.test_loss),
                    format!("{accuracy:.3}"),
                ]);
            }
        }
    }
    text.push_str(&format_table(
        &["strategy", "workers", "batch", "test mse", "R2 accuracy"],
        &rows,
    ));
    text.push_str(
        "\npaper: linear fastest but fails (OOM) at 19,200/38,400; cubic root slowest but most accurate\n",
    );
    Experiment {
        id: "fig10",
        title: "P1B3 batch-size scaling strategies (performance and accuracy)",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shows_oom_for_linear_at_192_and_384() {
        let e = fig10(true);
        assert!(e.text.contains("OOM (B=19200)"));
        assert!(e.text.contains("OOM (B=38400)"));
    }

    #[test]
    fn fig10_linear_is_fastest_where_it_fits() {
        let hp = HyperParams::of(Bench::P1b3);
        let run = |strategy: BatchScaling| {
            let batch = scaled_batch(hp.batch_size, 96, strategy);
            simulate(
                &hp.workload(),
                &RunConfig {
                    machine: Machine::Summit,
                    workers: 96,
                    batch_size: batch,
                    scaling: ScalingMode::Weak {
                        epochs_per_worker: 1,
                    },
                    load_method: LoadMethod::PandasDefault,
                },
            )
            .unwrap()
            .total_s
        };
        let linear = run(BatchScaling::Linear);
        let sqrt = run(BatchScaling::SquareRoot);
        let cbrt = run(BatchScaling::CubicRoot);
        assert!(linear < sqrt, "linear {linear:.0} vs sqrt {sqrt:.0}");
        assert!(sqrt < cbrt, "sqrt {sqrt:.0} vs cbrt {cbrt:.0}");
    }

    #[test]
    fn fig10_cubic_root_beats_linear_accuracy() {
        // Paper Fig 10b: cubic-root scaling gives the best accuracy.
        let run = |strategy: BatchScaling| {
            let batch = scaled_batch(100, 8, strategy);
            let spec = ParallelRunSpec {
                bench: Bench::P1b3,
                workers: 8,
                scaling: FuncScaling::Weak {
                    epochs_per_worker: 1,
                },
                batch,
                base_lr: 1.0,
                data: BenchDataKind::tiny(Bench::P1b3),
                seed: 1010,
                record_timeline: false,
                data_mode: candle::pipeline::DataMode::FullReplicated,
                cache: None,
                data_service: None,
                comm_overlap: None,
            };
            let out = candle::run_parallel(&spec).unwrap();
            1.0 - out.test_loss / out.test_target_variance
        };
        let linear = run(BatchScaling::Linear);
        let cubic = run(BatchScaling::CubicRoot);
        assert!(
            cubic > linear + 0.1,
            "cubic root R2 {cubic:.3} should beat linear {linear:.3}"
        );
        assert!(cubic > 0.4, "cubic root R2 {cubic:.3}");
    }

    #[test]
    fn fig10_mentions_both_panels() {
        let e = fig10(true);
        assert!(e.text.contains("(a) Performance"));
        assert!(e.text.contains("(b) Accuracy"));
    }
}
