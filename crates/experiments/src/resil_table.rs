//! Recovery overhead and savings: measured bit-exact resume + modelled
//! Summit economics.
//!
//! Two halves, same question — what does a crash cost, and what does a
//! checkpoint buy back?
//!
//! * the **measured** half runs `resil::run_resilient` twice on a tiny
//!   NT3: once healthy, once with an injected worker crash. The resumed
//!   run must end with **bit-exactly** the same weights (the checkpoint
//!   carries every `xrng` stream position), and the table reports what
//!   the resilience cost in checkpoint writes, bytes, and re-done epochs;
//! * the **modelled** half prices the same crash at the paper's scale:
//!   `cluster`'s calibrated Summit simulation bills crash + restart
//!   against crash + resume across GPU counts, in wall time and
//!   per-device joules. Resuming must be strictly cheaper in both — the
//!   energy chapters of the paper are exactly why.

use crate::report::{format_table, secs, Experiment};
use cluster::calib::Bench;
use resil::{run_resilient, summit_recovery_sweep, FaultEvent, FaultKind, FaultPlan, ResilSpec};

fn measured_spec(name: &str, epochs: usize, plan: FaultPlan) -> ResilSpec {
    ResilSpec {
        bench: Bench::Nt3,
        workers: 2,
        epochs,
        batch: 20,
        base_lr: 0.02,
        data: candle::BenchDataKind::tiny(Bench::Nt3),
        seed: 2025,
        checkpoint_every: 2,
        keep: 2,
        dir: std::env::temp_dir().join(format!("table_resil_{name}_{}", std::process::id())),
        plan,
        record_timeline: false,
    }
}

/// The recovery experiment: measured bit-exact resume plus the modelled
/// Summit restart-vs-resume bill.
///
/// # Panics
/// Panics if the resumed run is not bit-identical to the healthy run, or
/// if the modelled resume is not strictly cheaper than restart in both
/// wall time and energy at every scale.
pub fn table_resil(quick: bool) -> Experiment {
    let epochs = if quick { 4 } else { 8 };
    // Crash one epoch past the last checkpoint: one epoch of work is lost
    // and must be re-trained after the restore.
    let crash_epoch = 3;
    let healthy = measured_spec("healthy", epochs, FaultPlan::none());
    let faulted = measured_spec(
        "faulted",
        epochs,
        FaultPlan::manual(vec![FaultEvent {
            epoch: crash_epoch,
            kind: FaultKind::WorkerCrash { rank: 1 },
        }]),
    );
    let reference = run_resilient(&healthy).expect("healthy run");
    let recovered = run_resilient(&faulted).expect("faulted run");
    std::fs::remove_dir_all(&healthy.dir).ok();
    std::fs::remove_dir_all(&faulted.dir).ok();
    assert_eq!(
        recovered.final_hash, reference.final_hash,
        "resumed run is not bit-identical to the uninterrupted run"
    );
    assert_eq!(recovered.recoveries.len(), 1);

    let measured = format_table(
        &["run", "epochs run", "redone", "ckpt writes", "ckpt KiB", "final weight hash"],
        &[
            vec![
                "healthy".into(),
                reference.epochs_run.to_string(),
                reference.redone_epochs.to_string(),
                reference.checkpoint_writes.to_string(),
                format!("{:.1}", reference.checkpoint_bytes as f64 / 1024.0),
                format!("{:016x}", reference.final_hash),
            ],
            vec![
                format!("crash@{crash_epoch}+resume"),
                recovered.epochs_run.to_string(),
                recovered.redone_epochs.to_string(),
                recovered.checkpoint_writes.to_string(),
                format!("{:.1}", recovered.checkpoint_bytes as f64 / 1024.0),
                format!("{:016x}", recovered.final_hash),
            ],
        ],
    );

    // Modelled at the paper's scale: NT3 weak scaling on Summit, crash at
    // 3/4 of the 8-epoch budget, checkpoints every 2 epochs.
    let gpus: &[usize] = if quick { &[1, 96, 1536] } else { &[1, 6, 24, 96, 384, 1536] };
    let rows = summit_recovery_sweep(Bench::Nt3, gpus, 0.75, 2, 5.0).expect("summit sweep");
    for row in &rows {
        assert!(
            row.cost.saved_s() > 0.0 && row.cost.saved_energy_j() > 0.0,
            "modelled resume must beat restart at {} GPUs",
            row.gpus
        );
    }
    let modelled = format_table(
        &[
            "GPUs", "fail@", "redone", "restart s", "resume s", "saved s", "saved kJ/device",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.gpus.to_string(),
                    format!("{}/{}", r.fail_epoch, r.epochs_per_worker),
                    r.cost.redone_epochs.to_string(),
                    secs(r.cost.restart_total_s),
                    secs(r.cost.resume_total_s),
                    secs(r.cost.saved_s()),
                    format!("{:.2}", r.cost.saved_energy_j() / 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let text = format!(
        "Measured (NT3-tiny, 2 workers, checkpoint every 2 epochs, worker crash \
         injected at epoch {crash_epoch}):\n{measured}\
         resumed run restored epoch {}, re-trained {} epoch(s), and finished \
         bit-identical to the uninterrupted run\n\n\
         Modelled (Summit, NT3 weak scaling, 8 epochs/worker, crash at epoch 6, \
         checkpoint every 2 epochs @ 5 s/write):\n{modelled}\
         resume-from-checkpoint is strictly cheaper than restart-from-scratch in \
         wall time and per-device energy at every scale\n",
        recovered.recoveries[0].restored_epoch, recovered.redone_epochs,
    );
    Experiment {
        id: "table_resil",
        title: "Failure recovery: bit-exact resume cost vs restart-from-scratch",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_is_bit_exact_and_cheaper_than_restart() {
        let e = table_resil(true);
        assert_eq!(e.id, "table_resil");
        assert!(e.text.contains("bit-identical"));
        assert!(e.text.contains("strictly cheaper"));
        assert!(e.text.contains("GPUs"));
    }
}
