//! Overlapped vs blocking gradient synchronization on the functional
//! NT3 pipeline.
//!
//! The paper's Horovod timelines (Figures 7, 12, 19) show gradient
//! allreduce serialized after backward compute — the classic exposed
//! communication that tensor fusion plus overlap hides. This driver runs
//! the real training pipeline twice per worker count — once with the
//! blocking post-backward [`collectives::DistributedOptimizer`] and once
//! with the overlapped [`collectives::AsyncBucketedOptimizer`] — and
//! reports seconds/epoch, the measured hidden/exposed communication
//! split, and the `cluster` α–β overlap model's prediction of the exposed
//! time calibrated from the measured per-bucket allreduce cost.

use crate::report::{format_table, Experiment};
use candle::pipeline::{DataMode, FuncScaling};
use candle::{BenchDataKind, ParallelRunOutcome, ParallelRunSpec};
use cluster::calib::Bench;
use cluster::overlap_exposed_seconds;

/// Fusion threshold for the overlapped runs: small enough that even the
/// tiny NT3 model splits into several buckets, so the engine actually
/// pipelines instead of degenerating to one blocking allreduce.
const OVERLAP_THRESHOLD_BYTES: usize = 2 * 1024;

/// One blocking-vs-overlapped measurement at a fixed worker count.
#[derive(Debug, Clone)]
pub struct OverlapComparison {
    /// Simulated worker count.
    pub workers: usize,
    /// Blocking-sync seconds per epoch (rank 0 training phase).
    pub blocking_epoch_s: f64,
    /// Overlapped-sync seconds per epoch (rank 0 training phase).
    pub overlapped_epoch_s: f64,
    /// Communication hidden under backward compute (`comm_overlap`).
    pub comm_hidden_s: f64,
    /// Communication the optimizer step had to wait for (`comm_exposed`).
    pub comm_exposed_s: f64,
    /// Backward-compute seconds on rank 0 across the run.
    pub backward_s: f64,
    /// Buckets the overlap engine dispatched across the run.
    pub buckets: u64,
    /// Batch steps the overlap engine completed.
    pub steps: u64,
    /// Exposed seconds the calibrated α–β overlap recurrence predicts for
    /// the whole run (per-bucket cost taken from the measured comm-busy
    /// time, readiness spread evenly across measured backward time).
    pub predicted_exposed_s: f64,
}

impl OverlapComparison {
    /// Blocking time over overlapped time (>1 means overlap won).
    pub fn speedup(&self) -> f64 {
        self.blocking_epoch_s / self.overlapped_epoch_s.max(1e-12)
    }

    /// Total wall-clock the comm worker spent communicating.
    pub fn comm_busy_s(&self) -> f64 {
        self.comm_hidden_s + self.comm_exposed_s
    }

    /// Fraction of communication backward compute failed to hide.
    pub fn exposed_fraction(&self) -> f64 {
        if self.comm_busy_s() <= 0.0 {
            return 0.0;
        }
        (self.comm_exposed_s / self.comm_busy_s()).clamp(0.0, 1.0)
    }

    /// The model's predicted exposed fraction under the same calibration.
    pub fn predicted_exposed_fraction(&self) -> f64 {
        if self.comm_busy_s() <= 0.0 {
            return 0.0;
        }
        (self.predicted_exposed_s / self.comm_busy_s()).clamp(0.0, 1.0)
    }

    /// The error band the table asserts the model prediction within (full
    /// release mode): half the measured comm-busy time plus 25 ms of
    /// scheduler noise per batch step. Thread-simulated ranks on a shared
    /// host jitter far more than the α–β terms, so the band is wide by
    /// design — it catches model-shape mistakes (e.g. predicting full
    /// exposure when comm is hidden), not microsecond drift.
    pub fn error_band_s(&self) -> f64 {
        0.5 * self.comm_busy_s() + 0.025 * self.steps as f64
    }
}

pub(crate) fn spec(
    workers: usize,
    epochs_per_worker: usize,
    overlap: Option<usize>,
) -> ParallelRunSpec {
    ParallelRunSpec {
        bench: Bench::Nt3,
        workers,
        scaling: FuncScaling::Weak { epochs_per_worker },
        batch: 20,
        base_lr: 0.02,
        data: BenchDataKind::tiny(Bench::Nt3),
        seed: 42,
        record_timeline: false,
        data_mode: DataMode::FullReplicated,
        cache: None,
        data_service: None,
        comm_overlap: overlap,
    }
}

pub(crate) fn phase(out: &ParallelRunOutcome, name: &str) -> (f64, u64) {
    out.profile
        .records()
        .iter()
        .find(|r| r.name == name)
        .map(|r| (r.elapsed.as_secs_f64(), r.calls))
        .unwrap_or((0.0, 0))
}

/// Predicts the run's exposed communication from the measured totals: the
/// per-bucket allreduce cost calibrates the α–β comm term, bucket
/// readiness is spread evenly across the measured backward time, and the
/// per-step recurrence result is scaled back up by the step count.
fn predict_exposed(comm_busy_s: f64, backward_s: f64, buckets: u64, steps: u64) -> f64 {
    if buckets == 0 || steps == 0 {
        return 0.0;
    }
    let buckets_per_step = (buckets / steps).max(1) as usize;
    let per_bucket = comm_busy_s / buckets as f64;
    let backward_step = backward_s / steps as f64;
    let comm = vec![per_bucket; buckets_per_step];
    let ready: Vec<f64> = (0..buckets_per_step)
        .map(|i| backward_step * (i + 1) as f64 / buckets_per_step as f64)
        .collect();
    overlap_exposed_seconds(&comm, &ready) * steps as f64
}

/// Runs blocking and overlapped NT3 training at each worker count.
/// `quick` uses one epoch per worker at counts {1, 2, 4}; the full mode
/// runs four epochs per worker at counts {1, 2, 4, 8}.
pub fn measure_overlap_comparison(quick: bool) -> Vec<OverlapComparison> {
    let (worker_counts, epochs): (&[usize], usize) =
        if quick { (&[1, 2, 4], 1) } else { (&[1, 2, 4, 8], 4) };
    worker_counts
        .iter()
        .map(|&w| {
            let blocking = candle::run_parallel(&spec(w, epochs, None))
                .expect("blocking NT3 run");
            let overlapped =
                candle::run_parallel(&spec(w, epochs, Some(OVERLAP_THRESHOLD_BYTES)))
                    .expect("overlapped NT3 run");
            let (blocking_train, _) = phase(&blocking, "training");
            let (overlapped_train, _) = phase(&overlapped, "training");
            let (hidden, buckets) = phase(&overlapped, "comm_overlap");
            let (exposed, steps) = phase(&overlapped, "comm_exposed");
            let (backward, _) = phase(&overlapped, "train_backward");
            OverlapComparison {
                workers: w,
                blocking_epoch_s: blocking_train / epochs as f64,
                overlapped_epoch_s: overlapped_train / epochs as f64,
                comm_hidden_s: hidden,
                comm_exposed_s: exposed,
                backward_s: backward,
                buckets,
                steps,
                predicted_exposed_s: predict_exposed(hidden + exposed, backward, buckets, steps),
            }
        })
        .collect()
}

/// The comm/compute-overlap experiment: blocking post-backward allreduce
/// vs the async bucketed engine on real NT3 training.
///
/// In full mode on a release build it asserts (a) the calibrated α–β
/// overlap model predicts the measured exposed time within
/// [`OverlapComparison::error_band_s`], and (b) — when the host has at
/// least two hardware threads, without which comm and compute cannot
/// physically run in parallel — that the overlapped engine strictly
/// improves seconds/epoch at four or more workers. Debug timings are too
/// distorted to gate on, and quick mode's single epoch is too noisy.
pub fn table_overlap(quick: bool) -> Experiment {
    let rows = measure_overlap_comparison(quick);
    if crate::gate::timed_asserts_enabled(quick) {
        let multicore = crate::gate::multicore_host();
        for r in &rows {
            let err = (r.predicted_exposed_s - r.comm_exposed_s).abs();
            assert!(
                err <= r.error_band_s(),
                "overlap model missed at {} workers: predicted {:.4}s exposed, \
                 measured {:.4}s (band {:.4}s)",
                r.workers,
                r.predicted_exposed_s,
                r.comm_exposed_s,
                r.error_band_s()
            );
            if multicore && r.workers >= 4 {
                assert!(
                    r.overlapped_epoch_s < r.blocking_epoch_s,
                    "overlap failed to beat blocking sync at {} workers: \
                     {:.4}s/epoch vs {:.4}s/epoch",
                    r.workers,
                    r.overlapped_epoch_s,
                    r.blocking_epoch_s
                );
            }
        }
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.3}s", r.blocking_epoch_s),
                format!("{:.3}s", r.overlapped_epoch_s),
                format!("{:.2}x", r.speedup()),
                format!("{:.2}ms", r.comm_hidden_s * 1e3),
                format!("{:.2}ms", r.comm_exposed_s * 1e3),
                format!("{:.0}%", r.exposed_fraction() * 100.0),
                format!("{:.0}%", r.predicted_exposed_fraction() * 100.0),
            ]
        })
        .collect();
    let mut text = String::from(
        "Blocking post-backward allreduce vs async bucketed overlap on real\n\
         NT3 training (per-layer buckets allreduced on a comm worker while\n\
         backward still computes; identical bucket boundaries keep weights\n\
         bit-identical). Exposed = communication the optimizer waited for;\n\
         the model column is the calibrated alpha-beta overlap recurrence:\n",
    );
    text.push_str(&format_table(
        &[
            "workers",
            "blocking s/ep",
            "overlap s/ep",
            "speedup",
            "hidden",
            "exposed",
            "exposed frac",
            "model frac",
        ],
        &cells,
    ));
    Experiment {
        id: "table_overlap",
        title: "Comm/compute overlap: blocking vs async bucketed allreduce",
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_every_worker_count() {
        let e = table_overlap(true);
        assert_eq!(e.id, "table_overlap");
        for needle in ["workers", "exposed frac", "model frac"] {
            assert!(e.text.contains(needle), "missing column {needle}");
        }
    }

    #[test]
    fn measurements_are_coherent() {
        let rows = measure_overlap_comparison(true);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        for r in &rows {
            assert!(r.blocking_epoch_s > 0.0 && r.overlapped_epoch_s > 0.0);
            assert!(r.steps > 0, "overlap engine must report steps");
            assert!(
                r.buckets >= r.steps,
                "every step ships at least one bucket ({} buckets, {} steps)",
                r.buckets,
                r.steps
            );
            assert!((0.0..=1.0).contains(&r.exposed_fraction()));
            assert!((0.0..=1.0).contains(&r.predicted_exposed_fraction()));
            assert!(r.error_band_s() > 0.0);
        }
        // The tiny NT3 model at a 2 KB threshold must actually split into
        // multiple buckets per step, or the engine is not pipelining.
        assert!(rows[0].buckets > rows[0].steps);
    }

    #[test]
    fn prediction_degenerates_sensibly() {
        assert_eq!(predict_exposed(1.0, 1.0, 0, 0), 0.0);
        // Comm far cheaper than backward and fully bucketed: almost all
        // hidden (only the last bucket's tail can show).
        let hidden = predict_exposed(0.01, 10.0, 100, 10);
        assert!(hidden < 0.005, "cheap comm should hide: {hidden}");
        // Comm far more expensive than backward: nearly all exposed.
        let exposed = predict_exposed(10.0, 0.01, 10, 10);
        assert!(exposed > 9.0, "expensive comm must show: {exposed}");
    }
}
