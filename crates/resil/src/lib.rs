//! `resil` — deterministic fault injection, checkpoint/restore, and
//! elastic recovery for the simulated large-scale training pipeline.
//!
//! The paper's energy argument is stated for *complete* runs: a
//! multi-hour CANDLE job on Summit bills every joule from `read_csv` to
//! the final evaluation. At 1,500+ node scale, failures are routine, and
//! a crash near the end of an un-checkpointed run pays that whole bill
//! twice. This crate closes the reproduction's resilience gap with three
//! pieces, all deterministic under a fixed seed:
//!
//! * [`plan`] — a seeded [`FaultPlan`]: the schedule of injected faults
//!   (worker crashes at epoch boundaries, corrupted cache shards) is a
//!   pure function of `(seed, spec)`, so every failure experiment is
//!   replayable and its recovery outcome is asserted, not eyeballed.
//! * [`ckpt`] — [`CheckpointManager`]: periodic snapshots of the full
//!   training state — model weights, optimizer slots, learning rate,
//!   epoch counter, and the exact position of **every** `xrng` stream
//!   (per-rank shuffle and dropout generators) — in a checksummed,
//!   atomically written binary format (`RCP1`, sibling of `datacache`'s
//!   `CDS1` shards) with rotation and corruption-detecting load.
//! * [`recovery`] — [`run_resilient`]: the driver wiring both into the
//!   `candle` data-parallel pipeline. Training proceeds epoch by epoch
//!   through real `collectives` ring-allreduce workers; at a planned
//!   crash the replicas are torn down, the latest checkpoint restored,
//!   and training resumes. Because the checkpoint captures every random
//!   stream, the interrupted-and-resumed run finishes with **bit-exactly
//!   the same weights** as an uninterrupted one — the correctness claim
//!   the integration tests pin across seeds and fault points.
//! * [`elastic`] — survivor-side recovery without a restore: a rank
//!   announces its death in a final allgather and the remaining workers
//!   continue on a [`collectives::Communicator::shrink`]-renumbered
//!   world, with gradient averaging automatically re-scaled to the
//!   smaller worker count.
//! * [`summit`] — the modelled counterpart: `cluster`'s calibrated
//!   Summit simulation prices restart-from-scratch against
//!   resume-from-checkpoint in wall time and joules
//!   (`RunReport::failure_recovery`), which `experiments::table_resil`
//!   tabulates.
//! * [`store`] — [`TrialStore`]: per-trial checkpoint chains under one
//!   root with uniform `keep_last_n` retention, so a fleet of hundreds
//!   of paused hyperparameter trials holds a bounded disk footprint
//!   while every trial keeps an intact resume point.
//! * [`inject`] — disk-level fault injection for the dataset cache:
//!   deterministic shard byte-flips that `datacache` must answer with
//!   typed `Corrupt` errors, plus the evict-and-rebuild recovery path.

pub mod ckpt;
pub mod elastic;
pub mod inject;
pub mod plan;
pub mod recovery;
pub mod store;
pub mod summit;

pub use ckpt::{CheckpointManager, TrainState};
pub use store::TrialStore;
pub use elastic::{run_elastic, ElasticOutcome, ElasticSpec};
pub use inject::{apply_shard_faults, corrupt_shard, evict_if_corrupt, scan_shards};
pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
pub use recovery::{run_resilient, RecoveryEvent, ResilOutcome, ResilSpec};
pub use summit::{summit_recovery_sweep, SummitRecoveryRow};

/// Errors from checkpointing, fault injection, and resilient training.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilError {
    /// Underlying I/O failure (checkpoint directory, shard files).
    Io(String),
    /// A checkpoint or shard failed validation (bad magic, version,
    /// checksum mismatch, truncation).
    Corrupt(String),
    /// The training pipeline itself failed.
    Train(String),
}

impl std::fmt::Display for ResilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilError::Io(msg) => write!(f, "resilience io error: {msg}"),
            ResilError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ResilError::Train(msg) => write!(f, "resilient training failed: {msg}"),
        }
    }
}

impl std::error::Error for ResilError {}

impl From<std::io::Error> for ResilError {
    fn from(e: std::io::Error) -> Self {
        ResilError::Io(e.to_string())
    }
}

/// Order-sensitive FNV-1a hash of a parameter vector's exact bit
/// patterns. Two models hash equal iff their weights are bit-identical —
/// the currency of every resume-correctness assertion in this crate.
pub fn hash_params(params: &[f32]) -> u64 {
    use datacache::format::{fnv1a64_extend, FNV_OFFSET};
    let mut h = FNV_OFFSET;
    for &p in params {
        h = fnv1a64_extend(h, &p.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_distinguishes_bit_patterns() {
        let a = hash_params(&[1.0, 2.0, 3.0]);
        assert_eq!(a, hash_params(&[1.0, 2.0, 3.0]));
        // One ULP away must hash differently.
        assert_ne!(a, hash_params(&[1.0, 2.0, f32::from_bits(3.0f32.to_bits() ^ 1)]));
        // Order matters.
        assert_ne!(a, hash_params(&[3.0, 2.0, 1.0]));
        // Signed zeros are distinct bit patterns.
        assert_ne!(hash_params(&[0.0]), hash_params(&[-0.0]));
    }

    #[test]
    fn error_display() {
        assert!(ResilError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let io: ResilError = std::io::Error::new(std::io::ErrorKind::Other, "disk").into();
        assert!(matches!(io, ResilError::Io(_)));
    }
}
