//! Disk-level fault injection for the dataset cache.
//!
//! The third fault class in a long-running training job is neither a dead
//! worker nor a torn-down run: it is *silent data rot* — a shard of the
//! binary dataset cache flips a bit on disk between runs. `datacache`'s
//! CDS1 format checksums every shard precisely so this is detected rather
//! than trained on; this module injects such rot deterministically (the
//! flipped byte is drawn from an `xrng` stream, so tests replay the exact
//! same corruption) and implements the recovery: scan, evict, rebuild.

use crate::plan::FaultPlan;
use crate::ResilError;
use datacache::{CacheError, CacheStore, CachedDataset};
use std::path::PathBuf;
use xrng::RandomSource;

/// Flips one deterministic byte in shard `shard` of a cached dataset.
/// Returns the corrupted shard's path. Which byte flips — and which bit —
/// is a pure function of `seed`, so the same injection is replayable.
///
/// # Panics
/// Panics if `shard` is out of range.
pub fn corrupt_shard(ds: &CachedDataset, shard: usize, seed: u64) -> Result<PathBuf, ResilError> {
    assert!(
        shard < ds.nshards(),
        "shard {shard} out of range ({} shards)",
        ds.nshards()
    );
    let path = ds.dir().join(&ds.manifest().shards[shard].file);
    let mut bytes = std::fs::read(&path)?;
    assert!(!bytes.is_empty(), "shard file is empty");
    let mut rng = xrng::seeded(xrng::derive_seed(seed, 0xB17F11B));
    let offset = rng.next_index(bytes.len());
    let bit = 1u8 << rng.next_index(8);
    bytes[offset] ^= bit;
    std::fs::write(&path, &bytes)?;
    Ok(path)
}

/// Scans every shard of a cached dataset and returns the indices whose
/// load fails validation — the read-side half of the recovery loop.
pub fn scan_shards(ds: &CachedDataset) -> Vec<usize> {
    (0..ds.nshards())
        .filter(|&i| ds.load_shard(i).is_err())
        .collect()
}

/// Applies a plan's shard-corruption events to a cached dataset (shard
/// indices are taken modulo the shard count) and returns the distinct
/// shard indices corrupted, sorted.
pub fn apply_shard_faults(
    plan: &FaultPlan,
    ds: &CachedDataset,
    seed: u64,
) -> Result<Vec<usize>, ResilError> {
    let n = ds.nshards();
    assert!(n > 0, "dataset has no shards");
    let mut hit: Vec<usize> = Vec::new();
    for (i, (_, shard)) in plan.corruptions().into_iter().enumerate() {
        let target = shard % n;
        // Derive a distinct sub-seed per event so two corruptions of the
        // same shard flip different bytes.
        corrupt_shard(ds, target, xrng::derive_seed(seed, i as u64))?;
        hit.push(target);
    }
    hit.sort_unstable();
    hit.dedup();
    Ok(hit)
}

/// The recovery path: confirms the corruption surfaces as `datacache`'s
/// typed [`CacheError::Corrupt`], evicts the poisoned dataset, and
/// reports it ready for a rebuild. Returns the evicted cache key.
///
/// (The rebuild itself is the caller's `open_csv`/`open_or_build` — this
/// function owns only the detect-and-evict half, because only the caller
/// knows how to regenerate the source.)
pub fn evict_if_corrupt(store: &CacheStore, ds: &CachedDataset) -> Result<Option<u64>, ResilError> {
    let bad = scan_shards(ds);
    if bad.is_empty() {
        return Ok(None);
    }
    // The contract with datacache: rot must surface as the typed Corrupt
    // error, never as garbage rows.
    for &i in &bad {
        match ds.load_shard(i) {
            Err(CacheError::Corrupt(_)) => {}
            other => {
                return Err(ResilError::Corrupt(format!(
                    "shard {i} failed without a typed Corrupt error: {other:?}"
                )))
            }
        }
    }
    let key = ds.manifest().source_key;
    store
        .evict(key)
        .map_err(|e| ResilError::Io(e.to_string()))?;
    Ok(Some(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind};
    use dataio::ReadStrategy;
    use std::path::Path;

    fn tmp_root(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("resil_inject_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_csv(dir: &Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("data.csv");
        let mut text = String::from("a,b,c\n");
        for i in 0..60 {
            text.push_str(&format!("{i},{},{}\n", i * 2, i * 3));
        }
        std::fs::write(&path, text).unwrap();
        path
    }

    fn open(root: &Path) -> (CacheStore, CachedDataset) {
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        (store, ds)
    }

    #[test]
    fn corruption_is_detected_and_typed() {
        let root = tmp_root("typed");
        let (_store, ds) = open(&root);
        assert!(scan_shards(&ds).is_empty(), "fresh cache must be clean");
        corrupt_shard(&ds, 2, 99).unwrap();
        assert_eq!(scan_shards(&ds), vec![2]);
        assert!(matches!(ds.load_shard(2), Err(CacheError::Corrupt(_))));
        // Untouched shards still load.
        assert!(ds.load_shard(0).is_ok());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corruption_is_deterministic_in_seed() {
        let root_a = tmp_root("det_a");
        let root_b = tmp_root("det_b");
        let (_, da) = open(&root_a);
        let (_, db) = open(&root_b);
        corrupt_shard(&da, 1, 7).unwrap();
        corrupt_shard(&db, 1, 7).unwrap();
        let fa = std::fs::read(da.dir().join(&da.manifest().shards[1].file)).unwrap();
        let fb = std::fs::read(db.dir().join(&db.manifest().shards[1].file)).unwrap();
        assert_eq!(fa, fb, "same seed must flip the same byte");
        std::fs::remove_dir_all(&root_a).ok();
        std::fs::remove_dir_all(&root_b).ok();
    }

    #[test]
    fn plan_driven_faults_and_recovery_round_trip() {
        let root = tmp_root("plan");
        let (store, ds) = open(&root);
        let plan = FaultPlan::manual(vec![
            FaultEvent {
                epoch: 1,
                kind: FaultKind::ShardCorruption { shard: 2 },
            },
            FaultEvent {
                epoch: 3,
                // 7 % 4 shards = shard 3.
                kind: FaultKind::ShardCorruption { shard: 7 },
            },
        ]);
        let hit = apply_shard_faults(&plan, &ds, 42).unwrap();
        assert_eq!(hit, vec![2, 3]);
        assert_eq!(scan_shards(&ds), vec![2, 3]);

        // Detect, evict, rebuild: the warm path is gone, the rebuilt cache
        // is clean.
        let key = evict_if_corrupt(&store, &ds).unwrap().expect("was corrupt");
        assert!(!store.dataset_dir(key).exists());
        let (rebuilt, outcome) = store
            .open_csv(
                &root.join("src").join("data.csv"),
                ReadStrategy::ChunkedLowMemory,
                4,
            )
            .unwrap();
        assert!(!outcome.is_warm(), "evicted cache must rebuild cold");
        assert!(scan_shards(&rebuilt).is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clean_dataset_is_not_evicted() {
        let root = tmp_root("clean");
        let (store, ds) = open(&root);
        assert_eq!(evict_if_corrupt(&store, &ds).unwrap(), None);
        assert!(ds.load_shard(0).is_ok());
        std::fs::remove_dir_all(&root).ok();
    }
}
