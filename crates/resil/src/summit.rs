//! Modelled recovery economics at Summit scale.
//!
//! The measured half of this crate ([`crate::run_resilient`]) proves the
//! mechanism is correct at laptop scale; this module prices it at the
//! paper's scale. A crash near the end of an un-checkpointed 1,500-GPU
//! CANDLE run re-bills every joule from `read_csv` onward, and the paper's
//! energy tables make that bill concrete. [`summit_recovery_sweep`] runs
//! `cluster`'s calibrated Summit simulation across GPU counts and asks
//! [`cluster::RunReport::failure_recovery`] for the two bills — crash +
//! restart-from-scratch versus crash + resume-from-checkpoint — in wall
//! time and per-device joules, which `experiments::table_resil` tabulates.

use candle::{BenchId, HyperParams};
use cluster::{
    run::simulate, LoadMethod, Machine, RecoveryCost, RunConfig, RunError, ScalingMode,
};

/// One GPU-count point of the sweep.
#[derive(Debug, Clone)]
pub struct SummitRecoveryRow {
    /// Summit GPUs.
    pub gpus: usize,
    /// Epochs each worker runs.
    pub epochs_per_worker: usize,
    /// Epoch the injected crash hits.
    pub fail_epoch: usize,
    /// Modelled costs of both recovery strategies.
    pub cost: RecoveryCost,
}

/// Sweeps the modelled crash-recovery costs for `bench` on Summit.
///
/// The crash is injected at `fail_fraction` of the per-worker epoch
/// budget (clamped to at least one completed epoch — a crash before any
/// work is free to restart and uninteresting). `checkpoint_every` is
/// clamped into the epoch budget so every row has at least one potential
/// restore point.
pub fn summit_recovery_sweep(
    bench: BenchId,
    gpus: &[usize],
    fail_fraction: f64,
    checkpoint_every: usize,
    checkpoint_write_s: f64,
) -> Result<Vec<SummitRecoveryRow>, RunError> {
    assert!(
        (0.0..=1.0).contains(&fail_fraction),
        "fail fraction must be in [0, 1]"
    );
    let hp = HyperParams::of(bench);
    let workload = hp.workload();
    let mut rows = Vec::with_capacity(gpus.len());
    for &g in gpus {
        let report = simulate(
            &workload,
            &RunConfig {
                machine: Machine::Summit,
                workers: g,
                batch_size: hp.batch_size,
                // The paper's weak-scaling setup: 8 epochs per worker.
                scaling: ScalingMode::Weak {
                    epochs_per_worker: 8,
                },
                load_method: LoadMethod::PandasDefault,
            },
        )?;
        let epochs = report.epochs_per_worker;
        let fail_epoch = ((epochs as f64 * fail_fraction).floor() as usize).clamp(1, epochs);
        let every = checkpoint_every.clamp(1, epochs);
        let cost = report.failure_recovery(fail_epoch, every, checkpoint_write_s);
        rows.push(SummitRecoveryRow {
            gpus: g,
            epochs_per_worker: epochs,
            fail_epoch,
            cost,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::calib::Bench;

    #[test]
    fn resume_beats_restart_across_scales() {
        let rows = summit_recovery_sweep(Bench::Nt3, &[1, 6, 96, 1536], 0.75, 2, 5.0).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // The whole point: resuming is strictly cheaper than paying the
            // run's full bill twice — in time AND joules.
            assert!(
                row.cost.saved_s() > 0.0,
                "resume not cheaper in time at {} GPUs",
                row.gpus
            );
            assert!(
                row.cost.saved_energy_j() > 0.0,
                "resume not cheaper in energy at {} GPUs",
                row.gpus
            );
            assert!(row.cost.redone_epochs < row.epochs_per_worker);
            assert!(row.fail_epoch >= 1 && row.fail_epoch <= row.epochs_per_worker);
        }
    }

    #[test]
    fn late_crash_saves_more_than_early_crash() {
        let late = summit_recovery_sweep(Bench::Nt3, &[96], 0.9, 1, 5.0).unwrap();
        let early = summit_recovery_sweep(Bench::Nt3, &[96], 0.2, 1, 5.0).unwrap();
        assert!(late[0].cost.saved_s() > early[0].cost.saved_s());
        assert!(late[0].cost.saved_energy_j() > early[0].cost.saved_energy_j());
    }

    #[test]
    fn checkpoint_interval_is_clamped() {
        let rows = summit_recovery_sweep(Bench::P1b1, &[6], 0.5, 1000, 5.0).unwrap();
        // Interval clamped into the 8-epoch budget: the restore point is
        // epoch 0 at worst, and the sweep still returns a row.
        assert_eq!(rows.len(), 1);
        assert!(rows[0].cost.redone_epochs <= rows[0].epochs_per_worker);
    }
}
