//! Elastic recovery: survivors continue without a restore.
//!
//! Checkpoint/restore ([`crate::run_resilient`]) treats every crash the
//! way a classic gang-scheduled MPI job must: tear everything down and
//! rewind. Elastic training is the alternative the Horovod ecosystem
//! grew after the paper (`horovod.run.elastic`): when a worker dies, the
//! survivors agree on a new, smaller world and keep going — no lost
//! epochs, but the effective batch (and thus the gradient average) shrinks
//! from `N` to `N-1` contributions mid-run.
//!
//! [`run_elastic`] demonstrates that path on real `collectives` workers:
//! a step-indexed crash kills one rank, the survivors detect it through a
//! liveness allgather, [`collectives::Communicator::shrink`] renumbers
//! them, and `allreduce_mean` — which divides by the *current* world size
//! — re-scales the gradient average automatically. The outcome's
//! correctness claim is that all survivors hold bit-identical weights
//! after the shrink, i.e. the renumbered ring is still a correct
//! allreduce.

use crate::hash_params;
use crate::ResilError;
use candle::{benchmark_dataset, build_rank_model, BenchDataKind, BenchId, ParallelRunSpec};
use candle::{DataMode, FuncScaling};
use collectives::{run_workers_owned, Communicator};
use dlframe::GradientSync;
use std::sync::Arc;

/// Specification of one elastic-shrink run.
#[derive(Debug, Clone)]
pub struct ElasticSpec {
    /// Benchmark to run.
    pub bench: BenchId,
    /// Initial world size.
    pub workers: usize,
    /// Total batch steps to train (across the crash).
    pub total_steps: usize,
    /// Step at which the victim dies (before the step is trained).
    pub crash_step: usize,
    /// The dying rank.
    pub victim: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Base learning rate.
    pub base_lr: f32,
    /// Dataset geometry.
    pub data: BenchDataKind,
    /// Master seed.
    pub seed: u64,
}

/// Per-survivor result of an elastic run.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivorReport {
    /// Rank in the *original* world.
    pub old_rank: usize,
    /// Rank after the shrink.
    pub new_rank: usize,
    /// World size after the shrink.
    pub world: usize,
    /// Bit-exact hash of the survivor's final weights.
    pub params_hash: u64,
    /// Loss of the survivor's last trained step.
    pub last_loss: f64,
}

/// Results of an elastic run.
#[derive(Debug)]
pub struct ElasticOutcome {
    /// One report per survivor, in original-rank order.
    pub survivors: Vec<SurvivorReport>,
    /// Steps trained before the crash (full world).
    pub steps_before: usize,
    /// Steps trained after the crash (shrunken world).
    pub steps_after: usize,
}

impl ElasticOutcome {
    /// True iff every survivor finished with bit-identical weights — the
    /// renumbered ring is still a correct allreduce.
    pub fn survivors_agree(&self) -> bool {
        self.survivors
            .windows(2)
            .all(|w| w[0].params_hash == w[1].params_hash)
    }
}

/// Adapts a `Communicator` to `dlframe`'s gradient hook; dividing by the
/// communicator's *current* size is exactly the elastic re-scaling.
struct CommSync<'a>(&'a mut Communicator);

impl GradientSync for CommSync<'_> {
    fn sync_gradients(&mut self, flat: &mut [f32]) {
        self.0
            .allreduce_mean(flat)
            .expect("allreduce on live communicator");
    }
}

/// Runs data-parallel training that loses `spec.victim` at
/// `spec.crash_step` and continues on the shrunken world.
///
/// # Panics
/// Panics if the spec is degenerate (victim out of range, fewer than two
/// workers, crash step beyond the horizon).
pub fn run_elastic(spec: &ElasticSpec) -> Result<ElasticOutcome, ResilError> {
    assert!(spec.workers >= 2, "elastic shrink needs at least two workers");
    assert!(spec.victim < spec.workers, "victim rank out of range");
    assert!(
        spec.crash_step <= spec.total_steps,
        "crash step beyond the training horizon"
    );
    let pspec = ParallelRunSpec {
        bench: spec.bench,
        workers: spec.workers,
        scaling: FuncScaling::Weak {
            epochs_per_worker: 1,
        },
        batch: spec.batch,
        base_lr: spec.base_lr,
        data: spec.data,
        seed: spec.seed,
        record_timeline: false,
        data_mode: DataMode::FullReplicated,
        cache: None,
        data_service: None,
        comm_overlap: None,
    };
    let (train, _) = benchmark_dataset(&spec.data, spec.seed);
    let train = Arc::new(train);
    // A fixed, shuffle-free batch schedule: every rank must draw the same
    // batches in the same order or the post-shrink agreement check would
    // measure data skew, not ring correctness.
    let schedule: Arc<Vec<Vec<usize>>> = Arc::new(train.batch_indices(spec.batch, None));
    assert!(!schedule.is_empty(), "dataset yields no batches");

    let spec2 = spec.clone();
    let reports: Vec<Result<Option<SurvivorReport>, String>> =
        run_workers_owned(spec.workers, move |mut comm| {
            let old_rank = comm.rank();
            let mut model = build_rank_model(&pspec, old_rank);
            let mut params = model.flat_params();
            comm.broadcast(0, &mut params).map_err(|e| e.to_string())?;
            model.set_flat_params(&params);

            let mut last_loss = 0.0;
            for step in 0..spec2.total_steps {
                if step == spec2.crash_step {
                    // Liveness vote: the victim's last collective act is
                    // announcing its own death; everyone derives the same
                    // alive mask from the gather.
                    let mine = [if old_rank == spec2.victim { 0.0 } else { 1.0 }];
                    let flags = comm.allgather(&mine).map_err(|e| e.to_string())?;
                    let alive: Vec<bool> = flags.iter().map(|&f| f > 0.5).collect();
                    match comm.shrink(&alive) {
                        Some(smaller) => comm = smaller,
                        None => return Ok(None), // the victim is gone
                    }
                }
                let idx = &schedule[step % schedule.len()];
                let (x, y) = train.batch(idx);
                let mut sync = CommSync(&mut comm);
                let (loss, _) = model
                    .train_batch(&x, &y, &mut sync)
                    .map_err(|e| e.to_string())?;
                last_loss = loss;
            }
            Ok(Some(SurvivorReport {
                old_rank,
                new_rank: comm.rank(),
                world: comm.size(),
                params_hash: hash_params(&model.flat_params()),
                last_loss,
            }))
        });

    let mut survivors = Vec::new();
    for r in reports {
        if let Some(report) = r.map_err(ResilError::Train)? {
            survivors.push(report);
        }
    }
    Ok(ElasticOutcome {
        survivors,
        steps_before: spec.crash_step,
        steps_after: spec.total_steps - spec.crash_step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::calib::Bench;

    fn spec() -> ElasticSpec {
        ElasticSpec {
            bench: Bench::Nt3,
            workers: 3,
            total_steps: 8,
            crash_step: 4,
            victim: 1,
            batch: 20,
            base_lr: 0.02,
            data: BenchDataKind::tiny(Bench::Nt3),
            seed: 11,
        }
    }

    #[test]
    fn survivors_continue_and_agree() {
        let out = run_elastic(&spec()).unwrap();
        assert_eq!(out.survivors.len(), 2);
        assert!(out.survivors_agree(), "survivor weights diverged");
        for s in &out.survivors {
            assert_eq!(s.world, 2);
            assert!(s.last_loss.is_finite());
        }
        // Ranks renumbered densely: old 0 -> 0, old 2 -> 1.
        assert_eq!(out.survivors[0].old_rank, 0);
        assert_eq!(out.survivors[0].new_rank, 0);
        assert_eq!(out.survivors[1].old_rank, 2);
        assert_eq!(out.survivors[1].new_rank, 1);
    }

    #[test]
    fn elastic_run_is_deterministic() {
        let a = run_elastic(&spec()).unwrap();
        let b = run_elastic(&spec()).unwrap();
        assert_eq!(a.survivors, b.survivors);
    }

    #[test]
    fn crash_at_step_zero_trains_entirely_on_survivors() {
        let mut s = spec();
        s.crash_step = 0;
        let out = run_elastic(&s).unwrap();
        assert_eq!(out.steps_before, 0);
        assert_eq!(out.survivors.len(), 2);
        assert!(out.survivors_agree());
    }

    #[test]
    #[should_panic(expected = "victim rank out of range")]
    fn victim_must_exist() {
        let mut s = spec();
        s.victim = 9;
        run_elastic(&s).unwrap();
    }
}
