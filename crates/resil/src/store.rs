//! Per-trial checkpoint retention for fleet-scale workloads.
//!
//! A hyperparameter search pauses hundreds of trials at rung boundaries,
//! each with its own `RCP1` checkpoint chain. One [`CheckpointManager`]
//! per trial would work, but nothing would bound the fleet's disk
//! footprint or answer fleet-level questions (which trials have state?
//! how many bytes does the paused population hold?). [`TrialStore`] owns
//! one root directory with a `trial-<id>` subdirectory per trial, applies
//! the same `keep_last_n` rotation to every trial, and inherits the
//! manager's guarantees: atomic writes, checksummed loads, and a
//! [`TrialStore::latest`] that skips a corrupt newest file in favour of
//! an older intact one.

use crate::ckpt::{CheckpointManager, TrainState};
use crate::ResilError;
use std::path::{Path, PathBuf};

/// Checkpoint chains for many trials under one root, with uniform
/// retention.
#[derive(Debug, Clone)]
pub struct TrialStore {
    root: PathBuf,
    keep_last_n: usize,
}

impl TrialStore {
    /// Opens (creating if needed) a store rooted at `root`, retaining the
    /// `keep_last_n` most recent checkpoints of every trial.
    ///
    /// # Panics
    /// Panics if `keep_last_n == 0` — GC must never delete a trial's only
    /// resume point.
    pub fn new(root: impl Into<PathBuf>, keep_last_n: usize) -> Result<Self, ResilError> {
        assert!(keep_last_n > 0, "retention must keep at least one checkpoint");
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root, keep_last_n })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Checkpoints retained per trial.
    pub fn keep_last_n(&self) -> usize {
        self.keep_last_n
    }

    /// The directory holding one trial's chain.
    pub fn trial_dir(&self, trial: u64) -> PathBuf {
        self.root.join(format!("trial-{trial:08}"))
    }

    fn manager(&self, trial: u64) -> Result<CheckpointManager, ResilError> {
        CheckpointManager::new(self.trial_dir(trial), self.keep_last_n)
    }

    /// Atomically writes `state` into the trial's chain and garbage-
    /// collects checkpoints beyond the retention count. Returns the
    /// written path.
    pub fn save(&self, trial: u64, state: &TrainState) -> Result<PathBuf, ResilError> {
        self.manager(trial)?.save(state)
    }

    /// Restores the trial's newest intact checkpoint (corrupt files are
    /// skipped, like [`CheckpointManager::latest`]). `None` when the
    /// trial has never checkpointed or nothing validates.
    pub fn latest(&self, trial: u64) -> Result<Option<TrainState>, ResilError> {
        if !self.trial_dir(trial).is_dir() {
            return Ok(None);
        }
        self.manager(trial)?.latest()
    }

    /// Checkpoint files currently on disk for one trial.
    pub fn checkpoint_count(&self, trial: u64) -> usize {
        std::fs::read_dir(self.trial_dir(trial))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        e.path()
                            .extension()
                            .is_some_and(|x| x == "rcp")
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Trial ids with a chain directory, ascending.
    pub fn trials(&self) -> Result<Vec<u64>, ResilError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(id) = name
                .strip_prefix("trial-")
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                out.push(id);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Total bytes held by every trial's retained checkpoints — the
    /// fleet-level disk footprint the retention policy bounds.
    pub fn total_bytes(&self) -> Result<u64, ResilError> {
        let mut total = 0;
        for trial in self.trials()? {
            for entry in std::fs::read_dir(self.trial_dir(trial))? {
                total += entry?.metadata()?.len();
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(epoch: u64) -> TrainState {
        TrainState {
            epoch,
            lr: 0.01,
            params: vec![epoch as f32, 1.5, -2.0],
            slots: vec![],
            rank_rngs: vec![vec![[epoch as u8; 32]]],
        }
    }

    fn tmp_root(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("resil_store_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn retention_bounds_every_trial_chain() {
        let root = tmp_root("retention");
        let store = TrialStore::new(&root, 2).unwrap();
        // A paused fleet: 50 trials, 5 rung checkpoints each.
        for trial in 0..50u64 {
            for rung_epoch in [1u64, 2, 4, 8, 16] {
                store.save(trial, &state(rung_epoch)).unwrap();
            }
        }
        assert_eq!(store.trials().unwrap().len(), 50);
        for trial in 0..50u64 {
            assert_eq!(store.checkpoint_count(trial), 2, "trial {trial} not GCed");
            let latest = store.latest(trial).unwrap().expect("chain exists");
            assert_eq!(latest.epoch, 16);
        }
        // Footprint is the retained files only: 50 trials x 2 files.
        let one = crate::ckpt::encode(&state(16)).len() as u64;
        assert_eq!(store.total_bytes().unwrap(), 50 * 2 * one);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn latest_survives_gc_and_skips_corruption() {
        let root = tmp_root("gc_corrupt");
        let store = TrialStore::new(&root, 3).unwrap();
        for e in [1u64, 2, 4, 8, 16] {
            store.save(7, &state(e)).unwrap();
        }
        // GC kept {4, 8, 16}; rot the newest and latest() must fall back
        // to epoch 8, not error and not resurrect a GCed epoch.
        let newest = store.trial_dir(7).join("ckpt-00000016.rcp");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let restored = store.latest(7).unwrap().expect("older intact file");
        assert_eq!(restored.epoch, 8);
        assert_eq!(restored, state(8));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn trials_are_isolated_and_unknown_trials_are_none() {
        let root = tmp_root("isolated");
        let store = TrialStore::new(&root, 1).unwrap();
        store.save(3, &state(4)).unwrap();
        store.save(9, &state(2)).unwrap();
        assert_eq!(store.latest(3).unwrap().unwrap().epoch, 4);
        assert_eq!(store.latest(9).unwrap().unwrap().epoch, 2);
        assert_eq!(store.latest(999).unwrap(), None);
        assert_eq!(store.trials().unwrap(), vec![3, 9]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retention_panics() {
        let _ = TrialStore::new(tmp_root("zero"), 0);
    }
}
