//! The recovery driver: checkpointed, fault-injected data-parallel
//! training over the `candle` pipeline.
//!
//! [`run_resilient`] trains the same way [`candle::run_parallel`] does —
//! one replica per rank built by [`candle::build_rank_model`], rank 0's
//! initialization broadcast to all, gradients ring-allreduce-averaged on
//! every batch step — but drives the epochs one at a time from a
//! supervisor loop so it can interleave three things at epoch boundaries:
//!
//! 1. **checkpointing**: every `checkpoint_every` epochs the full
//!    [`TrainState`] (weights, optimizer slots, learning rate, per-rank
//!    RNG streams) is written through [`CheckpointManager`];
//! 2. **fault injection**: when the [`FaultPlan`](crate::FaultPlan)
//!    schedules a crash at the boundary, every replica is torn down —
//!    the job is gang-scheduled, one dead rank stalls every allreduce —
//!    exactly as a real Horovod job dies with its slowest member;
//! 3. **recovery**: the replicas are rebuilt from scratch (same code path
//!    as a fresh start) and the newest intact checkpoint is restored into
//!    them, rewinding the epoch cursor to the checkpoint's epoch.
//!
//! Because the checkpoint carries the exact position of every random
//! stream, a restored replica's next shuffle order and dropout mask are
//! the ones the dead replica would have drawn: the resumed run re-treads
//! the lost epochs bit-exactly and finishes with the same weights as an
//! uninterrupted run. The driver asserts the cheap half of that invariant
//! itself (all ranks end bit-identical); the cross-run half is pinned by
//! the `resilience` integration tests.

use crate::ckpt::{CheckpointManager, TrainState};
use crate::plan::FaultPlan;
use crate::{hash_params, ResilError};
use candle::{
    benchmark_dataset, build_rank_model, BenchDataKind, BenchId, DataMode, FuncScaling,
    ParallelRunSpec,
};
use collectives::{run_workers, Communicator, DistributedOptimizer, Timeline};
use dlframe::{FitConfig, Sequential};
use parking_lot::Mutex;
use simcore::LogHistogram;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Specification of one resilient training run.
#[derive(Debug, Clone)]
pub struct ResilSpec {
    /// Benchmark to run.
    pub bench: BenchId,
    /// Simulated worker count.
    pub workers: usize,
    /// Epochs each worker trains (weak-scaling style: the budget is per
    /// worker, not divided).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Base learning rate (linearly scaled by `workers`, as the pipeline
    /// does).
    pub base_lr: f32,
    /// Dataset geometry.
    pub data: BenchDataKind,
    /// Master seed (dataset, per-rank init, shuffle, dropout).
    pub seed: u64,
    /// Checkpoint interval in epochs.
    pub checkpoint_every: usize,
    /// Checkpoints retained on rotation.
    pub keep: usize,
    /// Checkpoint directory.
    pub dir: PathBuf,
    /// The fault schedule ([`FaultPlan::none`] for a healthy run). Only
    /// the crash events are consumed here; shard-corruption events are
    /// applied by [`crate::inject`] against a dataset cache.
    pub plan: FaultPlan,
    /// Record crash / restore / checkpoint spans to a timeline.
    pub record_timeline: bool,
}

impl ResilSpec {
    /// The equivalent pipeline spec: used to build rank replicas with
    /// exactly [`candle::run_parallel`]'s seed derivation and LR scaling.
    pub fn pipeline_spec(&self) -> ParallelRunSpec {
        ParallelRunSpec {
            bench: self.bench,
            workers: self.workers,
            scaling: FuncScaling::Weak {
                epochs_per_worker: self.epochs,
            },
            batch: self.batch,
            base_lr: self.base_lr,
            data: self.data,
            seed: self.seed,
            record_timeline: false,
            data_mode: DataMode::FullReplicated,
            cache: None,
            data_service: None,
            comm_overlap: None,
        }
    }
}

/// One crash-and-restore cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch boundary the crash struck at (epochs completed before it).
    pub fault_epoch: usize,
    /// The rank that died.
    pub rank: usize,
    /// Epoch of the checkpoint restored from.
    pub restored_epoch: u64,
    /// Epochs of finished work the crash destroyed (re-trained after the
    /// restore).
    pub redone_epochs: usize,
    /// Wall time of the restore (checkpoint read + replica rebuild),
    /// seconds.
    pub restore_s: f64,
}

/// Results of one resilient run.
#[derive(Debug)]
pub struct ResilOutcome {
    /// Bit-exact hash of the final weights (identical on every rank; the
    /// driver asserts it).
    pub final_hash: u64,
    /// Rank 0's final-epoch training loss.
    pub train_loss: f64,
    /// Test loss evaluated by rank 0 after training.
    pub test_loss: f64,
    /// Test accuracy evaluated by rank 0.
    pub test_accuracy: f64,
    /// Per-worker epochs actually executed, including re-done ones.
    pub epochs_run: usize,
    /// Epochs re-trained because a crash destroyed them.
    pub redone_epochs: usize,
    /// Every crash-and-restore cycle, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Checkpoints written.
    pub checkpoint_writes: u64,
    /// Checkpoint bytes written.
    pub checkpoint_bytes: u64,
    /// Total wall time spent writing checkpoints, seconds.
    pub checkpoint_write_s: f64,
    /// Total wall time spent restoring, seconds.
    pub restore_s: f64,
    /// Crash / restore / checkpoint spans, if requested.
    pub timeline: Option<Timeline>,
    /// Histogram of restore durations (seconds).
    pub restore_hist: LogHistogram,
}

/// Builds all rank replicas exactly as the pipeline would and applies
/// the `BroadcastGlobalVariablesHook(0)` step: rank 0's initialization
/// wins. (The in-process copy is bit-identical to the ring broadcast the
/// pipeline runs — both deliver rank 0's exact bytes.)
fn build_replicas(pspec: &ParallelRunSpec) -> Vec<Sequential> {
    let mut models: Vec<Sequential> = (0..pspec.workers)
        .map(|rank| build_rank_model(pspec, rank))
        .collect();
    let rank0_params = models[0].flat_params();
    for m in models.iter_mut().skip(1) {
        m.set_flat_params(&rank0_params);
    }
    models
}

/// Captures the complete training state at an epoch boundary. Weights and
/// optimizer slots are identical across ranks (averaged gradients), so
/// rank 0's copy represents all; RNG streams are captured per rank.
fn capture(epoch: u64, models: &[Sequential]) -> TrainState {
    let opt = models[0].optimizer().expect("models are compiled");
    TrainState {
        epoch,
        lr: opt.learning_rate(),
        params: models[0].flat_params(),
        slots: opt.export_slots(),
        rank_rngs: models.iter().map(|m| m.rng_states()).collect(),
    }
}

/// Restores a captured state into freshly built replicas.
fn restore(models: &mut [Sequential], state: &TrainState) {
    assert_eq!(
        models.len(),
        state.rank_rngs.len(),
        "checkpoint was written by a different world size"
    );
    for (rank, m) in models.iter_mut().enumerate() {
        m.set_flat_params(&state.params);
        let opt = m.optimizer_mut().expect("models are compiled");
        opt.import_slots(state.slots.clone());
        opt.set_learning_rate(state.lr);
        m.set_rng_states(&state.rank_rngs[rank]);
    }
}

/// Trains one epoch on every rank through real ring-allreduce workers.
/// Returns rank 0's epoch loss.
fn train_one_epoch(
    models: Vec<Sequential>,
    train: &Arc<dlframe::Dataset>,
    batch: usize,
) -> Result<(Vec<Sequential>, f64), ResilError> {
    let workers = models.len();
    let shared: Arc<Vec<Mutex<Option<Sequential>>>> = Arc::new(
        models
            .into_iter()
            .map(|m| Mutex::new(Some(m)))
            .collect(),
    );
    let shared2 = Arc::clone(&shared);
    let train2 = Arc::clone(train);
    let losses: Vec<Result<f64, String>> = run_workers(workers, move |comm| {
        let rank = comm.rank();
        let mut model = shared2[rank].lock().take().expect("replica present");
        let endpoint = std::mem::replace(comm, Communicator::world(1).pop().expect("nonempty"));
        let mut dist = DistributedOptimizer::new(endpoint);
        // Must match candle::run_parallel's FitConfig field for field —
        // anything else breaks the bit-exact equivalence with the
        // uninterrupted pipeline.
        let config = FitConfig {
            epochs: 1,
            batch_size: batch,
            shuffle: true,
            compute_accuracy: true,
            ..Default::default()
        };
        let result = model
            .fit(&train2, &config, &mut dist)
            .map(|h| h.epochs()[0].loss)
            .map_err(|e| e.to_string());
        *shared2[rank].lock() = Some(model);
        result
    });
    let models: Vec<Sequential> = Arc::try_unwrap(shared)
        .ok()
        .expect("all workers returned")
        .into_iter()
        .map(|m| m.lock().take().expect("replica returned"))
        .collect();
    let mut rank0_loss = 0.0;
    for (rank, l) in losses.into_iter().enumerate() {
        let loss = l.map_err(ResilError::Train)?;
        if rank == 0 {
            rank0_loss = loss;
        }
    }
    Ok((models, rank0_loss))
}

/// Runs checkpointed training under the spec's fault plan.
///
/// # Panics
/// Panics if the spec is degenerate (zero workers/epochs/interval) or if
/// the replicas ever diverge (which would indicate a collectives bug).
pub fn run_resilient(spec: &ResilSpec) -> Result<ResilOutcome, ResilError> {
    assert!(spec.workers > 0, "resilient run needs workers");
    assert!(spec.epochs > 0, "resilient run needs epochs");
    assert!(spec.checkpoint_every > 0, "checkpoint interval must be positive");
    let pspec = spec.pipeline_spec();
    let (train, test) = benchmark_dataset(&spec.data, spec.seed);
    let train = Arc::new(train);

    let mut models = build_replicas(&pspec);
    let mut mgr = CheckpointManager::new(&spec.dir, spec.keep)?;
    let timeline = spec.record_timeline.then(Timeline::new);
    let origin = Instant::now();
    let mut restore_hist = LogHistogram::for_latency_seconds();
    let span = |name: &str, rank: usize, start: Instant, tl: &Option<Timeline>| {
        if let Some(tl) = tl {
            let start_us = start.duration_since(origin).as_micros() as u64;
            let dur_us = start.elapsed().as_micros() as u64;
            tl.record(name, rank, start_us, dur_us.max(1));
        }
    };

    // Epoch-0 checkpoint: even a crash before the first interval has a
    // restore point, and it costs one small write.
    let mut checkpoint_write_s = 0.0;
    let t0 = Instant::now();
    mgr.save(&capture(0, &models))?;
    checkpoint_write_s += t0.elapsed().as_secs_f64();
    span("checkpoint_write", 0, t0, &timeline);

    let crashes = spec.plan.crashes();
    let mut next_crash = 0usize;
    let mut epoch = 0usize; // next epoch to train
    let mut epochs_run = 0usize;
    let mut redone_epochs = 0usize;
    let mut restore_s = 0.0;
    let mut recoveries = Vec::new();
    let mut train_loss = 0.0;

    while epoch < spec.epochs {
        if next_crash < crashes.len() && crashes[next_crash].0 == epoch {
            let (fault_epoch, rank) = crashes[next_crash];
            next_crash += 1;
            let t = Instant::now();
            span("worker_crash", rank, t, &timeline);
            // Gang teardown: every replica dies with rank `rank`.
            drop(std::mem::take(&mut models));
            // Rebuild from scratch — the same code path as a fresh start —
            // then restore the newest intact checkpoint.
            let state = mgr
                .latest()?
                .expect("epoch-0 checkpoint always exists");
            models = build_replicas(&pspec);
            restore(&mut models, &state);
            let elapsed = t.elapsed().as_secs_f64();
            restore_s += elapsed;
            restore_hist.record(elapsed);
            span("restore_checkpoint", 0, t, &timeline);
            let restored_epoch = state.epoch;
            redone_epochs += epoch - restored_epoch as usize;
            recoveries.push(RecoveryEvent {
                fault_epoch,
                rank,
                restored_epoch,
                redone_epochs: epoch - restored_epoch as usize,
                restore_s: elapsed,
            });
            epoch = restored_epoch as usize;
            continue;
        }

        let (trained, loss) = train_one_epoch(models, &train, spec.batch)?;
        models = trained;
        train_loss = loss;
        epochs_run += 1;
        epoch += 1;

        if epoch.is_multiple_of(spec.checkpoint_every) {
            let t = Instant::now();
            mgr.save(&capture(epoch as u64, &models))?;
            checkpoint_write_s += t.elapsed().as_secs_f64();
            span("checkpoint_write", 0, t, &timeline);
        }
    }

    // All replicas must have walked the same trajectory — averaged
    // gradients mean bit-identical weights on every rank.
    let hashes: Vec<u64> = models
        .iter()
        .map(|m| hash_params(&m.flat_params()))
        .collect();
    assert!(
        hashes.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {hashes:x?}"
    );

    let (test_loss, test_accuracy) = models[0]
        .evaluate(&test, spec.batch.max(32))
        .map_err(|e| ResilError::Train(e.to_string()))?;

    Ok(ResilOutcome {
        final_hash: hashes[0],
        train_loss,
        test_loss,
        test_accuracy,
        epochs_run,
        redone_epochs,
        recoveries,
        checkpoint_writes: mgr.writes(),
        checkpoint_bytes: mgr.bytes_written(),
        checkpoint_write_s,
        restore_s,
        timeline,
        restore_hist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind};
    use cluster::calib::Bench;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("resil_run_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn spec(name: &str, plan: FaultPlan) -> ResilSpec {
        ResilSpec {
            bench: Bench::Nt3,
            workers: 2,
            epochs: 6,
            batch: 20,
            base_lr: 0.02,
            data: BenchDataKind::tiny(Bench::Nt3),
            seed: 42,
            checkpoint_every: 2,
            keep: 3,
            dir: tmp_dir(name),
            plan,
            record_timeline: false,
        }
    }

    #[test]
    fn healthy_run_matches_pipeline_bit_exactly() {
        let s = spec("healthy", FaultPlan::none());
        let out = run_resilient(&s).unwrap();
        assert_eq!(out.epochs_run, 6);
        assert_eq!(out.redone_epochs, 0);
        assert!(out.recoveries.is_empty());
        // Epoch 0 + every 2 epochs = 4 writes.
        assert_eq!(out.checkpoint_writes, 4);

        // The supervisor's epoch-at-a-time training must be bit-identical
        // to the pipeline's single fit call: same final training loss and
        // same evaluation.
        let reference = candle::run_parallel(&s.pipeline_spec()).unwrap();
        assert_eq!(out.train_loss, reference.train_loss);
        assert_eq!(out.test_loss, reference.test_loss);
        assert_eq!(out.test_accuracy, reference.test_accuracy);
        std::fs::remove_dir_all(&s.dir).ok();
    }

    #[test]
    fn crash_and_resume_is_bit_exact() {
        let healthy = spec("bitexact_healthy", FaultPlan::none());
        let reference = run_resilient(&healthy).unwrap();

        let plan = FaultPlan::manual(vec![FaultEvent {
            epoch: 3,
            kind: FaultKind::WorkerCrash { rank: 1 },
        }]);
        let faulted = spec("bitexact_faulted", plan);
        let out = run_resilient(&faulted).unwrap();

        assert_eq!(out.recoveries.len(), 1);
        let rec = &out.recoveries[0];
        assert_eq!(rec.fault_epoch, 3);
        assert_eq!(rec.restored_epoch, 2); // checkpoints at 0, 2
        assert_eq!(rec.redone_epochs, 1);
        assert_eq!(out.redone_epochs, 1);
        assert_eq!(out.epochs_run, 7); // 6 + 1 re-done

        // The headline invariant: interrupted-and-resumed equals
        // uninterrupted, bit for bit.
        assert_eq!(out.final_hash, reference.final_hash);
        assert_eq!(out.train_loss, reference.train_loss);
        assert_eq!(out.test_loss, reference.test_loss);
        std::fs::remove_dir_all(&healthy.dir).ok();
        std::fs::remove_dir_all(&faulted.dir).ok();
    }

    #[test]
    fn crash_at_epoch_zero_restores_initial_state() {
        let plan = FaultPlan::manual(vec![FaultEvent {
            epoch: 0,
            kind: FaultKind::WorkerCrash { rank: 0 },
        }]);
        let s = spec("crash_zero", plan);
        let healthy = spec("crash_zero_ref", FaultPlan::none());
        let out = run_resilient(&s).unwrap();
        let reference = run_resilient(&healthy).unwrap();
        assert_eq!(out.recoveries[0].restored_epoch, 0);
        assert_eq!(out.recoveries[0].redone_epochs, 0);
        assert_eq!(out.final_hash, reference.final_hash);
        std::fs::remove_dir_all(&s.dir).ok();
        std::fs::remove_dir_all(&healthy.dir).ok();
    }

    #[test]
    fn timeline_records_crash_restore_and_checkpoints() {
        let plan = FaultPlan::manual(vec![FaultEvent {
            epoch: 2,
            kind: FaultKind::WorkerCrash { rank: 1 },
        }]);
        let mut s = spec("timeline", plan);
        s.record_timeline = true;
        let out = run_resilient(&s).unwrap();
        let tl = out.timeline.expect("requested");
        let count = |name: &str| tl.events().iter().filter(|e| e.name == name).count();
        assert_eq!(count("worker_crash"), 1);
        assert_eq!(count("restore_checkpoint"), 1);
        assert_eq!(count("checkpoint_write"), out.checkpoint_writes as usize);
        assert_eq!(out.restore_hist.count(), 1);
        std::fs::remove_dir_all(&s.dir).ok();
    }
}
