//! Checkpoint format and manager.
//!
//! A checkpoint captures *everything* a bit-exact resume needs: the flat
//! parameter vector, the optimizer's slot state (Adam/momentum moments and
//! step counts), the learning rate, the epoch counter, and the serialized
//! position of every `xrng` stream on every rank (epoch-shuffle plus each
//! dropout layer). Weights alone are not enough — resuming with a rewound
//! dropout mask or shuffle order diverges from the uninterrupted run on
//! the first batch.
//!
//! On-disk layout (`RCP1`, all integers little-endian, sibling of
//! `datacache`'s `CDS1` shard format):
//!
//! ```text
//! magic "RCP1" | version u16 | epoch u64 | lr f32-bits u32
//! | params  u64 count, f32-bits ×count
//! | slots   u64 count, per slot: t u64, m (u64 count + f32-bits), v (…)
//! | ranks   u64 count, per rank: u64 stream count, 32 bytes ×stream
//! | fnv1a64 checksum over everything above, u64
//! ```
//!
//! Writes are atomic (temp file + rename) so a crash mid-write can never
//! shadow a good checkpoint with a torn one; loads verify the checksum
//! and every length field before trusting a byte; [`CheckpointManager`]
//! rotates old files and [`CheckpointManager::latest`] silently skips a
//! corrupt newest checkpoint in favour of an older intact one.

use crate::ResilError;
use datacache::format::{fnv1a64, put_u16, put_u32, put_u64};
use dlframe::SlotSnapshot;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file ("Resilience CheckPoint v1").
pub const MAGIC: [u8; 4] = *b"RCP1";

/// Format version written into every checkpoint.
pub const VERSION: u16 = 1;

/// The complete state of a data-parallel training run at an epoch
/// boundary. Parameters and optimizer slots are identical across ranks
/// (gradients are allreduce-averaged, so every replica walks the same
/// trajectory) and stored once; the RNG streams differ per rank and are
/// stored per rank.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Epochs completed when this state was captured (the resume point).
    pub epoch: u64,
    /// Optimizer learning rate at capture time.
    pub lr: f32,
    /// Flat parameter vector (identical on every rank).
    pub params: Vec<f32>,
    /// Optimizer slot state (identical on every rank).
    pub slots: Vec<SlotSnapshot>,
    /// Per-rank serialized RNG streams, `rank_rngs[rank]` =
    /// [`dlframe::Sequential::rng_states`] of that rank's replica.
    pub rank_rngs: Vec<Vec<[u8; 32]>>,
}

impl TrainState {
    /// Bit-exact hash of the parameter vector.
    pub fn params_hash(&self) -> u64 {
        crate::hash_params(&self.params)
    }
}

fn put_f32_vec(buf: &mut Vec<u8>, v: &[f32]) {
    put_u64(buf, v.len() as u64);
    for &x in v {
        put_u32(buf, x.to_bits());
    }
}

/// Serializes a state to the `RCP1` byte layout (checksum included).
pub fn encode(state: &TrainState) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_u16(&mut buf, VERSION);
    put_u64(&mut buf, state.epoch);
    put_u32(&mut buf, state.lr.to_bits());
    put_f32_vec(&mut buf, &state.params);
    put_u64(&mut buf, state.slots.len() as u64);
    for slot in &state.slots {
        put_u64(&mut buf, slot.t);
        put_f32_vec(&mut buf, &slot.m);
        put_f32_vec(&mut buf, &slot.v);
    }
    put_u64(&mut buf, state.rank_rngs.len() as u64);
    for streams in &state.rank_rngs {
        put_u64(&mut buf, streams.len() as u64);
        for s in streams {
            buf.extend_from_slice(s);
        }
    }
    let checksum = fnv1a64(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// Bounds-checked little-endian reader with [`ResilError`]-typed failures.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ResilError> {
        if self.remaining() < n {
            return Err(ResilError::Corrupt(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ResilError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ResilError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ResilError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u64` count that is about to size an allocation of
    /// `elem_bytes`-sized elements, rejecting counts the remaining bytes
    /// cannot possibly hold — a garbled length field must fail as
    /// corruption, never as an absurd allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ResilError> {
        let n = self.u64()?;
        let cap = (self.remaining() / elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(ResilError::Corrupt(format!(
                "implausible count {n} at offset {}: only {} bytes remain",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, ResilError> {
        let n = self.count(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("len 4"))))
            .collect())
    }
}

/// Parses and validates an `RCP1` byte buffer.
pub fn decode(bytes: &[u8]) -> Result<TrainState, ResilError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(ResilError::Corrupt(format!(
            "checkpoint too short: {} bytes",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("len 8"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(ResilError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let mut r = Reader::new(body);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(ResilError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ResilError::Corrupt(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let epoch = r.u64()?;
    let lr = f32::from_bits(r.u32()?);
    let params = r.f32_vec()?;
    let nslots = r.count(8)?;
    let mut slots = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        let t = r.u64()?;
        let m = r.f32_vec()?;
        let v = r.f32_vec()?;
        slots.push(SlotSnapshot { m, v, t });
    }
    let nranks = r.count(8)?;
    let mut rank_rngs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let nstreams = r.count(32)?;
        let mut streams = Vec::with_capacity(nstreams);
        for _ in 0..nstreams {
            streams.push(r.take(32)?.try_into().expect("len 32"));
        }
        rank_rngs.push(streams);
    }
    if r.remaining() != 0 {
        return Err(ResilError::Corrupt(format!(
            "{} trailing bytes after checkpoint body",
            r.remaining()
        )));
    }
    Ok(TrainState {
        epoch,
        lr,
        params,
        slots,
        rank_rngs,
    })
}

/// Writes, rotates, and restores `RCP1` checkpoints in one directory.
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
    writes: u64,
    bytes_written: u64,
}

impl CheckpointManager {
    /// Opens (creating if needed) a checkpoint directory, retaining the
    /// `keep` most recent checkpoints on rotation.
    ///
    /// # Panics
    /// Panics if `keep == 0`.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, ResilError> {
        assert!(keep > 0, "checkpoint rotation must keep at least one");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            keep,
            writes: 0,
            bytes_written: 0,
        })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints written through this manager.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes written through this manager.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Atomically writes `state` as `ckpt-<epoch>.rcp` (temp file, then
    /// rename) and rotates old checkpoints beyond the retention count.
    pub fn save(&mut self, state: &TrainState) -> Result<PathBuf, ResilError> {
        let bytes = encode(state);
        let name = format!("ckpt-{:08}.rcp", state.epoch);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        self.writes += 1;
        self.bytes_written += bytes.len() as u64;
        self.rotate()?;
        Ok(path)
    }

    /// Loads and validates one checkpoint file.
    pub fn load(path: &Path) -> Result<TrainState, ResilError> {
        decode(&std::fs::read(path)?)
    }

    /// Restores the newest *intact* checkpoint: files are tried newest
    /// first and corrupt ones are skipped, so a torn or bit-rotted latest
    /// file degrades to the previous interval instead of a dead run.
    /// Returns `None` when no checkpoint validates.
    pub fn latest(&self) -> Result<Option<TrainState>, ResilError> {
        for (_, path) in self.list()?.into_iter().rev() {
            if let Ok(state) = Self::load(&path) {
                return Ok(Some(state));
            }
        }
        Ok(None)
    }

    /// Checkpoint files as `(epoch, path)`, sorted by epoch ascending.
    fn list(&self) -> Result<Vec<(u64, PathBuf)>, ResilError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            let epoch = match name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".rcp"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                Some(e) => e,
                None => continue,
            };
            out.push((epoch, path));
        }
        out.sort_by_key(|&(e, _)| e);
        Ok(out)
    }

    fn rotate(&self) -> Result<(), ResilError> {
        let files = self.list()?;
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(epoch: u64) -> TrainState {
        TrainState {
            epoch,
            lr: 0.015625,
            params: vec![1.5, -2.25, 0.0, -0.0, f32::MIN_POSITIVE, 3.0e8],
            slots: vec![
                SlotSnapshot {
                    m: vec![0.1, 0.2],
                    v: vec![0.3, 0.4],
                    t: 17,
                },
                SlotSnapshot {
                    m: vec![],
                    v: vec![],
                    t: 0,
                },
            ],
            rank_rngs: vec![
                vec![[7u8; 32], [9u8; 32]],
                vec![[1u8; 32], [2u8; 32]],
            ],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("resil_ckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let s = state(5);
        let decoded = decode(&encode(&s)).unwrap();
        assert_eq!(decoded, s);
        // Bit patterns, not just values: -0.0 survives.
        assert_eq!(decoded.params[3].to_bits(), (-0.0f32).to_bits());
        assert_eq!(decoded.params_hash(), s.params_hash());
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = encode(&state(3));
        for i in (0..bytes.len()).step_by(5) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(decode(&bad), Err(ResilError::Corrupt(_))),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode(&state(3));
        for len in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..len]), Err(ResilError::Corrupt(_))),
                "truncation to {len} went undetected"
            );
        }
    }

    #[test]
    fn garbled_count_fails_as_corruption_not_allocation() {
        let mut bytes = encode(&state(3));
        // The params count lives right after magic+version+epoch+lr
        // (4 + 2 + 8 + 4 = offset 18). Blow it up to u64::MAX *and*
        // re-stamp a valid checksum, so the failure must come from the
        // count plausibility check, not the checksum.
        bytes[18..26].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        match err {
            ResilError::Corrupt(msg) => {
                assert!(msg.contains("implausible count"), "wrong path: {msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn manager_saves_loads_and_rotates() {
        let dir = tmp_dir("rotate");
        let mut mgr = CheckpointManager::new(&dir, 2).unwrap();
        for e in [0u64, 2, 4, 6] {
            mgr.save(&state(e)).unwrap();
        }
        assert_eq!(mgr.writes(), 4);
        assert!(mgr.bytes_written() > 0);
        // Only the last two survive rotation.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "{names:?}");
        let latest = mgr.latest().unwrap().expect("checkpoints exist");
        assert_eq!(latest.epoch, 6);
        assert_eq!(latest, state(6));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_skips_corrupt_newest() {
        let dir = tmp_dir("skip");
        let mut mgr = CheckpointManager::new(&dir, 4).unwrap();
        mgr.save(&state(2)).unwrap();
        let newest = mgr.save(&state(4)).unwrap();
        // Rot the newest file; latest() must fall back to epoch 2.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let restored = mgr.latest().unwrap().expect("older checkpoint intact");
        assert_eq!(restored.epoch, 2);
        // With every file rotted, latest() reports none rather than error.
        let older = dir.join("ckpt-00000002.rcp");
        let mut b = std::fs::read(&older).unwrap();
        b[0] ^= 0xFF;
        std::fs::write(&older, &b).unwrap();
        assert!(mgr.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_state_round_trips() {
        let s = TrainState {
            epoch: 0,
            lr: 0.0,
            params: vec![],
            slots: vec![],
            rank_rngs: vec![],
        };
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retention_panics() {
        let _ = CheckpointManager::new(tmp_dir("zero"), 0);
    }
}
