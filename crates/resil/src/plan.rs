//! Seeded fault schedules.
//!
//! A resilience experiment is only an *experiment* if the failure it
//! recovers from is reproducible. [`FaultPlan::generate`] draws the whole
//! schedule — which epochs fail, which rank dies, which cache shard rots —
//! from a dedicated `xrng` stream, so the plan is a pure function of
//! `(seed, spec)`: same seed, same faults, same recovery outcome, and the
//! integration tests can assert all three.

use datacache::format::{fnv1a64_extend, FNV_OFFSET};
use std::collections::BTreeSet;
use xrng::RandomSource;

/// What kind of fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` dies at an epoch boundary. The job is gang-scheduled
    /// (one dead replica stalls every allreduce), so the whole run tears
    /// down and [`crate::run_resilient`] restores the latest checkpoint.
    WorkerCrash {
        /// The dying rank.
        rank: usize,
    },
    /// Shard `shard` of the dataset cache is corrupted on disk (a flipped
    /// bit); the next read must surface `datacache`'s typed checksum
    /// error, and recovery is evict-and-rebuild (see [`crate::inject`]).
    ShardCorruption {
        /// The corrupted shard index.
        shard: usize,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Epoch boundary at which the fault strikes (the fault fires just
    /// before this epoch is trained).
    pub epoch: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the fault stream (independent of the training seed, so
    /// the same training run can be replayed under different weather).
    pub seed: u64,
    /// Epoch horizon: faults are scheduled in `0..epochs`.
    pub epochs: usize,
    /// World size crash victims are drawn from.
    pub workers: usize,
    /// Number of worker crashes to schedule (at distinct epochs).
    pub crashes: usize,
    /// Shard count corruption targets are drawn from (0 disables).
    pub shards: usize,
    /// Number of shard corruptions to schedule.
    pub corruptions: usize,
}

/// A deterministic, epoch-ordered schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a healthy run.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit events (sorted by epoch).
    pub fn manual(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.epoch);
        Self { events }
    }

    /// Draws a schedule from the spec's seed. Crash epochs are distinct
    /// (one teardown per epoch boundary is the interesting case; two
    /// crashes at one boundary collapse into one teardown anyway).
    ///
    /// # Panics
    /// Panics if more crashes are requested than epochs exist, or if
    /// corruptions are requested with zero shards.
    pub fn generate(spec: &FaultSpec) -> Self {
        assert!(
            spec.crashes <= spec.epochs,
            "cannot schedule {} crashes in {} epochs",
            spec.crashes,
            spec.epochs
        );
        assert!(
            spec.corruptions == 0 || spec.shards > 0,
            "shard corruptions need a shard count"
        );
        let mut rng = xrng::seeded(xrng::derive_seed(spec.seed, 0xFA17));
        let mut crash_epochs = BTreeSet::new();
        while crash_epochs.len() < spec.crashes {
            crash_epochs.insert(rng.next_index(spec.epochs));
        }
        let mut events: Vec<FaultEvent> = crash_epochs
            .into_iter()
            .map(|epoch| FaultEvent {
                epoch,
                kind: FaultKind::WorkerCrash {
                    rank: rng.next_index(spec.workers),
                },
            })
            .collect();
        for _ in 0..spec.corruptions {
            events.push(FaultEvent {
                epoch: rng.next_index(spec.epochs.max(1)),
                kind: FaultKind::ShardCorruption {
                    shard: rng.next_index(spec.shards),
                },
            });
        }
        Self::manual(events)
    }

    /// All events, sorted by epoch.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The crash events only, as `(epoch, rank)` in epoch order — the
    /// subset [`crate::run_resilient`] consumes.
    pub fn crashes(&self) -> Vec<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::WorkerCrash { rank } => Some((e.epoch, rank)),
                FaultKind::ShardCorruption { .. } => None,
            })
            .collect()
    }

    /// The shard-corruption events only, as `(epoch, shard)` in epoch
    /// order — the subset [`crate::inject::apply_shard_faults`] consumes.
    pub fn corruptions(&self) -> Vec<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ShardCorruption { shard } => Some((e.epoch, shard)),
                FaultKind::WorkerCrash { .. } => None,
            })
            .collect()
    }

    /// Order-sensitive hash of the whole schedule. Two plans fingerprint
    /// equal iff they inject the same faults in the same order — the
    /// determinism assertion of the fault-injection tests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for e in &self.events {
            h = fnv1a64_extend(h, &(e.epoch as u64).to_le_bytes());
            let (tag, arg) = match e.kind {
                FaultKind::WorkerCrash { rank } => (0u8, rank as u64),
                FaultKind::ShardCorruption { shard } => (1u8, shard as u64),
            };
            h = fnv1a64_extend(h, &[tag]);
            h = fnv1a64_extend(h, &arg.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            epochs: 12,
            workers: 4,
            crashes: 3,
            shards: 6,
            corruptions: 2,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::generate(&spec(7));
        let b = FaultPlan::generate(&spec(7));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&spec(7));
        let b = FaultPlan::generate(&spec(8));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn schedule_respects_bounds_and_counts() {
        let s = spec(42);
        let p = FaultPlan::generate(&s);
        assert_eq!(p.crashes().len(), s.crashes);
        assert_eq!(p.corruptions().len(), s.corruptions);
        // Crash epochs are distinct and every event is in range.
        let crash_epochs: Vec<usize> = p.crashes().iter().map(|&(e, _)| e).collect();
        let mut dedup = crash_epochs.clone();
        dedup.dedup();
        assert_eq!(crash_epochs, dedup);
        for e in p.events() {
            assert!(e.epoch < s.epochs);
            match e.kind {
                FaultKind::WorkerCrash { rank } => assert!(rank < s.workers),
                FaultKind::ShardCorruption { shard } => assert!(shard < s.shards),
            }
        }
    }

    #[test]
    fn events_are_epoch_sorted() {
        let p = FaultPlan::generate(&spec(99));
        let epochs: Vec<usize> = p.events().iter().map(|e| e.epoch).collect();
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        assert_eq!(epochs, sorted);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().fingerprint(), FaultPlan::default().fingerprint());
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn too_many_crashes_panics() {
        FaultPlan::generate(&FaultSpec {
            seed: 1,
            epochs: 2,
            workers: 2,
            crashes: 3,
            shards: 0,
            corruptions: 0,
        });
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn generate_is_deterministic_and_bounded(seed in 0u64..10_000, epochs in 1usize..32) {
                let s = FaultSpec {
                    seed,
                    epochs,
                    workers: 1 + (seed as usize % 7),
                    crashes: epochs.min(3),
                    shards: 4,
                    corruptions: 1,
                };
                let a = FaultPlan::generate(&s);
                prop_assert_eq!(a.fingerprint(), FaultPlan::generate(&s).fingerprint());
                for e in a.events() {
                    prop_assert!(e.epoch < epochs);
                }
            }
        }
    }
}
