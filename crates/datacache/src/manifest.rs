//! The cache manifest: one small text file per cached dataset describing
//! its shards, keyed by a content hash of the source.
//!
//! The key hashes what the paper's setting makes observable about a source
//! without re-reading it — path, byte size, mtime, and the parse strategy
//! that would have been used — so a changed CSV (or a different parse
//! strategy) misses the cache instead of serving stale rows. The manifest
//! itself is `key=value` lines, human-inspectable and dependency-free.

use crate::format::{fnv1a64_extend, FNV_OFFSET};
use crate::CacheError;
use std::path::Path;

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One shard file registered in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// File name relative to the manifest's directory.
    pub file: String,
    /// Row offset of the shard's first row in the source frame.
    pub start_row: usize,
    /// Rows stored in the shard.
    pub rows: usize,
    /// Encoded size in bytes (including header and checksum).
    pub bytes: u64,
    /// The shard's trailing FNV-1a checksum, duplicated here so a warm
    /// open can cross-check file identity before decoding.
    pub checksum: u64,
}

/// A cached dataset's table of contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version (see [`MANIFEST_VERSION`]).
    pub version: u32,
    /// Content hash of the source this cache was built from.
    pub source_key: u64,
    /// Human-readable description of the source (path or generator spec).
    pub source: String,
    /// Total rows across all shards.
    pub nrows: usize,
    /// Columns per shard.
    pub ncols: usize,
    /// Free-form integration tag (e.g. train/test split metadata).
    pub tag: String,
    /// The shards, ordered by `start_row`.
    pub shards: Vec<ShardEntry>,
}

/// Hashes the identity of a source into a cache key: every field that, if
/// changed, must invalidate the cache.
pub fn source_key(source_desc: &str, size_bytes: u64, mtime_unix_ns: u128, strategy: &str) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a64_extend(h, source_desc.as_bytes());
    h = fnv1a64_extend(h, &size_bytes.to_le_bytes());
    h = fnv1a64_extend(h, &mtime_unix_ns.to_le_bytes());
    h = fnv1a64_extend(h, strategy.as_bytes());
    h
}

/// Computes the cache key for a CSV file on disk from its path, size, and
/// modification time plus the parse strategy label.
pub fn source_key_for_file(path: &Path, strategy: &str) -> Result<u64, CacheError> {
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()?
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Ok(source_key(
        &path.to_string_lossy(),
        meta.len(),
        mtime,
        strategy,
    ))
}

impl Manifest {
    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("version={}\n", self.version));
        out.push_str(&format!("source_key={:016x}\n", self.source_key));
        out.push_str(&format!("source={}\n", self.source));
        out.push_str(&format!("nrows={}\n", self.nrows));
        out.push_str(&format!("ncols={}\n", self.ncols));
        out.push_str(&format!("tag={}\n", self.tag));
        out.push_str(&format!("shards={}\n", self.shards.len()));
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard.{i}={},{},{},{},{:016x}\n",
                s.file, s.start_row, s.rows, s.bytes, s.checksum
            ));
        }
        out
    }

    /// Parses the text format, validating structure and totals.
    pub fn parse(text: &str) -> Result<Self, CacheError> {
        fn field<'a>(
            lines: &mut impl Iterator<Item = &'a str>,
            key: &str,
        ) -> Result<&'a str, CacheError> {
            let line = lines
                .next()
                .ok_or_else(|| CacheError::Corrupt(format!("manifest missing `{key}`")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| CacheError::Corrupt(format!("expected `{key}=...`, got `{line}`")))
        }
        fn bad(what: &str, v: &str) -> CacheError {
            CacheError::Corrupt(format!("manifest: bad {what} `{v}`"))
        }

        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let version: u32 = {
            let v = field(&mut lines, "version")?;
            v.parse().map_err(|_| bad("version", v))?
        };
        if version != MANIFEST_VERSION {
            return Err(CacheError::Corrupt(format!(
                "unsupported manifest version {version}"
            )));
        }
        let source_key = {
            let v = field(&mut lines, "source_key")?;
            u64::from_str_radix(v, 16).map_err(|_| bad("source_key", v))?
        };
        let source = field(&mut lines, "source")?.to_string();
        let nrows: usize = {
            let v = field(&mut lines, "nrows")?;
            v.parse().map_err(|_| bad("nrows", v))?
        };
        let ncols: usize = {
            let v = field(&mut lines, "ncols")?;
            v.parse().map_err(|_| bad("ncols", v))?
        };
        let tag = field(&mut lines, "tag")?.to_string();
        let nshards: usize = {
            let v = field(&mut lines, "shards")?;
            v.parse().map_err(|_| bad("shards", v))?
        };

        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let v = field(&mut lines, &format!("shard.{i}"))?;
            let parts: Vec<&str> = v.split(',').collect();
            if parts.len() != 5 {
                return Err(bad("shard entry", v));
            }
            shards.push(ShardEntry {
                file: parts[0].to_string(),
                start_row: parts[1].parse().map_err(|_| bad("shard start_row", v))?,
                rows: parts[2].parse().map_err(|_| bad("shard rows", v))?,
                bytes: parts[3].parse().map_err(|_| bad("shard bytes", v))?,
                checksum: u64::from_str_radix(parts[4], 16)
                    .map_err(|_| bad("shard checksum", v))?,
            });
        }

        let manifest = Manifest {
            version,
            source_key,
            source,
            nrows,
            ncols,
            tag,
            shards,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Structural invariants: shards tile `[0, nrows)` in order.
    fn validate(&self) -> Result<(), CacheError> {
        let mut cursor = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if s.start_row != cursor {
                return Err(CacheError::Corrupt(format!(
                    "shard {i} starts at row {} but previous shards end at {cursor}",
                    s.start_row
                )));
            }
            cursor += s.rows;
        }
        if cursor != self.nrows {
            return Err(CacheError::Corrupt(format!(
                "shards cover {cursor} rows, manifest claims {}",
                self.nrows
            )));
        }
        Ok(())
    }

    /// Writes the manifest into `dir` as `manifest.txt`.
    pub fn write_to(&self, dir: &Path) -> Result<(), CacheError> {
        std::fs::write(dir.join("manifest.txt"), self.to_text())?;
        Ok(())
    }

    /// Loads `manifest.txt` from `dir`.
    pub fn load_from(dir: &Path) -> Result<Self, CacheError> {
        let text = std::fs::read_to_string(dir.join("manifest.txt"))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            source_key: 0xDEAD_BEEF_0000_1234,
            source: "/tmp/nt3.csv".into(),
            nrows: 10,
            ncols: 3,
            tag: "ycols=1;test_rows=2".into(),
            shards: vec![
                ShardEntry {
                    file: "shard-0000.bin".into(),
                    start_row: 0,
                    rows: 6,
                    bytes: 512,
                    checksum: 0xAA,
                },
                ShardEntry {
                    file: "shard-0001.bin".into(),
                    start_row: 6,
                    rows: 4,
                    bytes: 400,
                    checksum: 0xBB,
                },
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let parsed = Manifest::parse(&m.to_text()).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn parse_rejects_gap_in_shards() {
        let mut m = sample();
        m.shards[1].start_row = 7;
        assert!(Manifest::parse(&m.to_text()).is_err());
    }

    #[test]
    fn parse_rejects_row_total_mismatch() {
        let mut m = sample();
        m.nrows = 11;
        assert!(Manifest::parse(&m.to_text()).is_err());
    }

    #[test]
    fn parse_rejects_missing_fields_and_garbage() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("version=1\n").is_err());
        assert!(Manifest::parse("version=not-a-number\n").is_err());
        let mut text = sample().to_text();
        text = text.replace("shard.1=", "shardX1=");
        assert!(Manifest::parse(&text).is_err());
    }

    #[test]
    fn source_key_sensitive_to_every_field() {
        let base = source_key("a.csv", 100, 999, "pandas");
        assert_ne!(base, source_key("b.csv", 100, 999, "pandas"));
        assert_ne!(base, source_key("a.csv", 101, 999, "pandas"));
        assert_ne!(base, source_key("a.csv", 100, 998, "pandas"));
        assert_ne!(base, source_key("a.csv", 100, 999, "chunked"));
        assert_eq!(base, source_key("a.csv", 100, 999, "pandas"));
    }

    #[test]
    fn write_and_load_from_dir() {
        let dir = std::env::temp_dir().join(format!("datacache_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.write_to(&dir).unwrap();
        let loaded = Manifest::load_from(&dir).unwrap();
        assert_eq!(m, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }
}
