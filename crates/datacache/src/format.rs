//! Low-level binary format primitives: little-endian encoding helpers,
//! dtype codes, and the FNV-1a checksum shared by shards and manifests.

use crate::CacheError;
use dataio::Dtype;

/// Magic bytes opening every shard file ("CANDLE Data Shard v1").
pub const MAGIC: [u8; 4] = *b"CDS1";

/// Format version written into every shard header.
pub const VERSION: u16 = 1;

/// One-byte on-disk codes for [`Dtype`].
pub fn dtype_code(dtype: Dtype) -> u8 {
    match dtype {
        Dtype::Int64 => 0,
        Dtype::Float64 => 1,
        Dtype::Str => 2,
    }
}

/// Inverse of [`dtype_code`].
pub fn dtype_from_code(code: u8) -> Result<Dtype, CacheError> {
    match code {
        0 => Ok(Dtype::Int64),
        1 => Ok(Dtype::Float64),
        2 => Ok(Dtype::Str),
        other => Err(CacheError::Corrupt(format!("unknown dtype code {other}"))),
    }
}

/// FNV-1a 64-bit hash — the shard checksum and manifest source key. Fast,
/// dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Extends an FNV-1a hash with more bytes (for hashing heterogeneous
/// fields without an intermediate buffer).
pub fn fnv1a64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Initial value for incremental FNV-1a hashing via [`fnv1a64_extend`].
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Little-endian append helpers.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    // Bit-exact: NaN payloads and signed zeros survive the round trip.
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        if self.remaining() < n {
            return Err(CacheError::Corrupt(format!(
                "truncated shard: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn take_u8(&mut self) -> Result<u8, CacheError> {
        Ok(self.take_bytes(1)?[0])
    }

    pub fn take_u16(&mut self) -> Result<u16, CacheError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    pub fn take_u32(&mut self) -> Result<u32, CacheError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, CacheError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    pub fn take_i64(&mut self) -> Result<i64, CacheError> {
        Ok(i64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    pub fn take_f64(&mut self) -> Result<f64, CacheError> {
        Ok(f64::from_bits(self.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn fnv_extend_equals_one_shot() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_extend(fnv1a64_extend(FNV_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn dtype_codes_round_trip() {
        for d in [Dtype::Int64, Dtype::Float64, Dtype::Str] {
            assert_eq!(dtype_from_code(dtype_code(d)).unwrap(), d);
        }
        assert!(dtype_from_code(9).is_err());
    }

    #[test]
    fn reader_round_trips_scalars() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_truncation() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert!(r.take_u64().is_err());
    }
}
