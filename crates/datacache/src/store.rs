//! The cache store: cold builds (parse once, write shards) and warm opens
//! (verified shard loads), plus per-rank shard assignment.

use crate::manifest::{source_key_for_file, Manifest, ShardEntry, MANIFEST_VERSION};
use crate::shard::{decode_shard, encode_shard, shard_ranges};
use crate::CacheError;
use dataio::{read_csv, Frame, ReadStrategy};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a dataset came out of the store, with phase timings for reporting.
#[derive(Debug, Clone)]
pub enum CacheOutcome {
    /// First contact with this source: it was parsed/generated and the
    /// shards were written.
    ColdBuilt {
        /// Time spent producing the source frame (CSV parse or generator).
        build: Duration,
        /// Time spent encoding and writing shards plus the manifest.
        encode_write: Duration,
    },
    /// The manifest matched, shards are served from disk.
    WarmHit {
        /// Time spent loading and validating the manifest.
        manifest_load: Duration,
    },
}

impl CacheOutcome {
    /// True when the open was served from an existing cache.
    pub fn is_warm(&self) -> bool {
        matches!(self, CacheOutcome::WarmHit { .. })
    }
}

/// On-disk footprint of one cached dataset (shard files; the manifest is
/// noise next to them).
fn dataset_bytes(manifest: &Manifest) -> u64 {
    manifest.shards.iter().map(|s| s.bytes).sum()
}

/// Disk-usage bookkeeping for one cached dataset.
struct DiskEntry {
    bytes: u64,
    /// LRU clock stamp of the last open/lease.
    last_use: u64,
    /// Active leases; a leased dataset is never a disk-eviction victim.
    leases: usize,
}

#[derive(Default)]
struct StoreState {
    entries: HashMap<u64, DiskEntry>,
    clock: u64,
    evictions: u64,
}

impl StoreState {
    fn usage(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    fn touch(&mut self, key: u64, bytes: u64) {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.entry(key).or_insert(DiskEntry {
            bytes,
            last_use: clock,
            leases: 0,
        });
        entry.bytes = bytes;
        entry.last_use = clock;
    }
}

/// A directory of cached datasets, one subdirectory per source key.
///
/// By default the store grows without bound (every build adds a dataset
/// directory, nothing removes one). [`CacheStore::with_budget`] caps the
/// on-disk footprint instead: opens register their dataset's shard bytes,
/// and when the total exceeds the budget the least-recently-used
/// *unleased* dataset directories are deleted. [`lease`](Self::lease) /
/// [`release`](Self::release) are the explicit pin/unpin path for callers
/// (like the `datapipe` service) that stream from a dataset over time and
/// must never have its shards deleted out from under them.
pub struct CacheStore {
    root: PathBuf,
    budget: Option<u64>,
    state: Mutex<StoreState>,
}

impl CacheStore {
    /// Opens (creating if needed) an unbounded cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, CacheError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            budget: None,
            state: Mutex::new(StoreState::default()),
        })
    }

    /// Opens a cache that keeps at most `budget_bytes` of shard data on
    /// disk, evicting least-recently-used unleased datasets beyond that.
    /// Datasets already on disk are adopted into the accounting (and count
    /// against the budget immediately).
    pub fn with_budget(root: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self, CacheError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut state = StoreState::default();
        for entry in std::fs::read_dir(&root)?.flatten() {
            let name = entry.file_name();
            let Some(key) = name
                .to_str()
                .filter(|s| s.len() == 16)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            if let Ok(manifest) = Manifest::load_from(&entry.path()) {
                state.touch(key, dataset_bytes(&manifest));
            }
        }
        let store = Self {
            root,
            budget: Some(budget_bytes),
            state: Mutex::new(state),
        };
        store.enforce_budget(None);
        Ok(store)
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The disk budget, if this store is bounded.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget
    }

    /// Shard bytes currently accounted on disk.
    pub fn usage_bytes(&self) -> u64 {
        self.state.lock().unwrap().usage()
    }

    /// Dataset directories deleted to stay inside the budget.
    pub fn disk_evictions(&self) -> u64 {
        self.state.lock().unwrap().evictions
    }

    /// Pins the dataset under `key`: while any lease is held, budget churn
    /// never deletes its directory. Leases stack; pair each with a
    /// [`release`](Self::release).
    pub fn lease(&self, key: u64) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let clock = state.clock;
        let entry = state.entries.entry(key).or_insert(DiskEntry {
            bytes: 0,
            last_use: clock,
            leases: 0,
        });
        entry.leases += 1;
        entry.last_use = clock;
    }

    /// Drops one lease on `key`; when the last lease goes the dataset
    /// becomes an eviction candidate again (and deferred eviction runs if
    /// the store is over budget).
    pub fn release(&self, key: u64) {
        {
            let mut state = self.state.lock().unwrap();
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.leases = entry.leases.saturating_sub(1);
            }
        }
        self.enforce_budget(None);
    }

    /// Deletes least-recently-used unleased dataset directories until
    /// usage fits the budget. `protect` (the dataset just opened) is never
    /// a victim even when unleased — evicting it would tear the shards out
    /// from under the `CachedDataset` being returned.
    fn enforce_budget(&self, protect: Option<u64>) {
        let Some(budget) = self.budget else { return };
        let mut state = self.state.lock().unwrap();
        while state.usage() > budget {
            let victim = state
                .entries
                .iter()
                .filter(|&(k, e)| e.leases == 0 && Some(*k) != protect)
                .min_by_key(|&(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            state.entries.remove(&key);
            state.evictions += 1;
            std::fs::remove_dir_all(self.dataset_dir(key)).ok();
        }
    }

    /// Directory holding the dataset cached under `key`.
    pub fn dataset_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}"))
    }

    /// Opens a CSV-backed dataset: warm if a valid cache keyed by the
    /// file's (path, size, mtime, strategy) exists, otherwise parses the
    /// CSV with `strategy` and builds an `nshards`-way cache.
    pub fn open_csv(
        &self,
        csv: &Path,
        strategy: ReadStrategy,
        nshards: usize,
    ) -> Result<(CachedDataset, CacheOutcome), CacheError> {
        let key = source_key_for_file(csv, strategy.label())?;
        self.open_or_build(key, &csv.to_string_lossy(), "", nshards, || {
            let (frame, _stats) = read_csv(csv, strategy)?;
            Ok(frame)
        })
    }

    /// Generic open: serves a warm hit when a valid manifest for `key`
    /// exists, otherwise invokes `build` for the source frame and writes
    /// the cache. `tag` rides along in the manifest for integration
    /// metadata (e.g. train/test split bookkeeping).
    pub fn open_or_build(
        &self,
        key: u64,
        source_desc: &str,
        tag: &str,
        nshards: usize,
        build: impl FnOnce() -> Result<Frame, CacheError>,
    ) -> Result<(CachedDataset, CacheOutcome), CacheError> {
        let dir = self.dataset_dir(key);
        let warm_start = Instant::now();
        match Manifest::load_from(&dir) {
            Ok(manifest) if manifest.source_key == key => {
                self.state
                    .lock()
                    .unwrap()
                    .touch(key, dataset_bytes(&manifest));
                self.enforce_budget(Some(key));
                return Ok((
                    CachedDataset { dir, manifest },
                    CacheOutcome::WarmHit {
                        manifest_load: warm_start.elapsed(),
                    },
                ));
            }
            // Missing or invalid manifest: fall through to a cold build.
            // A key collision with a different source_key is treated the
            // same way and rebuilt in place.
            _ => {}
        }

        let build_start = Instant::now();
        let frame = build()?;
        let build_time = build_start.elapsed();

        let write_start = Instant::now();
        let dataset = write_cache(&dir, key, source_desc, tag, &frame, nshards)?;
        self.state
            .lock()
            .unwrap()
            .touch(key, dataset_bytes(dataset.manifest()));
        self.enforce_budget(Some(key));
        Ok((
            dataset,
            CacheOutcome::ColdBuilt {
                build: build_time,
                encode_write: write_start.elapsed(),
            },
        ))
    }

    /// Drops the cached dataset for `key`, if present. Explicit eviction
    /// ignores leases — it is the manual override, not the budget path.
    pub fn evict(&self, key: u64) -> Result<(), CacheError> {
        self.state.lock().unwrap().entries.remove(&key);
        let dir = self.dataset_dir(key);
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
        }
        Ok(())
    }
}

/// Encodes `frame` into `nshards` shard files under `dir` and writes the
/// manifest last, so a crash mid-build never leaves a valid manifest over
/// incomplete shards.
fn write_cache(
    dir: &Path,
    key: u64,
    source_desc: &str,
    tag: &str,
    frame: &Frame,
    nshards: usize,
) -> Result<CachedDataset, CacheError> {
    std::fs::create_dir_all(dir)?;
    let ranges = shard_ranges(frame.nrows(), nshards);
    let mut entries = Vec::with_capacity(ranges.len());
    for (i, &(start, end)) in ranges.iter().enumerate() {
        let bytes = encode_shard(frame, i as u32, start, end);
        let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let file = format!("shard-{i:04}.bin");
        std::fs::write(dir.join(&file), &bytes)?;
        entries.push(ShardEntry {
            file,
            start_row: start,
            rows: end - start,
            bytes: bytes.len() as u64,
            checksum,
        });
    }
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        source_key: key,
        source: source_desc.to_string(),
        nrows: frame.nrows(),
        ncols: frame.ncols(),
        tag: tag.to_string(),
        shards: entries,
    };
    manifest.write_to(dir)?;
    Ok(CachedDataset {
        dir: dir.to_path_buf(),
        manifest,
    })
}

/// An opened cached dataset: a manifest plus the directory its shard
/// files live in.
pub struct CachedDataset {
    dir: PathBuf,
    manifest: Manifest,
}

impl CachedDataset {
    /// The manifest describing this dataset.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// Total rows across shards.
    pub fn nrows(&self) -> usize {
        self.manifest.nrows
    }

    /// Columns per shard.
    pub fn ncols(&self) -> usize {
        self.manifest.ncols
    }

    /// Directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads, checksums, and decodes shard `index`.
    pub fn load_shard(&self, index: usize) -> Result<Frame, CacheError> {
        let entry = self.manifest.shards.get(index).ok_or_else(|| {
            CacheError::Corrupt(format!(
                "shard index {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let bytes = std::fs::read(self.dir.join(&entry.file))?;
        if bytes.len() as u64 != entry.bytes {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: file is {} bytes, manifest says {}",
                bytes.len(),
                entry.bytes
            )));
        }
        let decoded = decode_shard(&bytes)?;
        if decoded.index as usize != index || decoded.start_row != entry.start_row {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: header identity (index {}, start {}) disagrees with manifest",
                decoded.index, decoded.start_row
            )));
        }
        if decoded.frame.nrows() != entry.rows || decoded.frame.ncols() != self.manifest.ncols {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: decoded shape {}x{} disagrees with manifest {}x{}",
                decoded.frame.nrows(),
                decoded.frame.ncols(),
                entry.rows,
                self.manifest.ncols
            )));
        }
        Ok(decoded.frame)
    }

    /// Loads every shard and reassembles the full source frame.
    pub fn load_all(&self) -> Result<Frame, CacheError> {
        let mut frames = Vec::with_capacity(self.nshards());
        for i in 0..self.nshards() {
            frames.push(self.load_shard(i)?);
        }
        Frame::concat(frames).map_err(CacheError::from)
    }

    /// Shard indices assigned to `rank` of `nranks` (round-robin), the
    /// per-rank read pattern of a sharded warm start.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or `rank >= nranks`.
    pub fn rank_shards(&self, rank: usize, nranks: usize) -> Vec<usize> {
        assert!(nranks > 0, "nranks must be positive");
        assert!(rank < nranks, "rank {rank} out of range for {nranks} ranks");
        (rank..self.nshards()).step_by(nranks).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataio::{generate, write_csv_dataset, ClassSpec, SyntheticSpec};

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("datacache_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_csv(dir: &Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("data.csv");
        let spec = SyntheticSpec {
            rows: 120,
            cols: 10,
            kind: ClassSpec::Classification {
                classes: 4,
                separation: 1.0,
            },
            noise: 0.3,
            seed: 9,
        };
        let ds = generate(&spec);
        write_csv_dataset(&path, &ds).unwrap();
        path
    }

    #[test]
    fn cold_then_warm_reproduces_frame() {
        let root = tmp_root("coldwarm");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();

        let (ds1, outcome1) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(!outcome1.is_warm());
        assert_eq!(ds1.nshards(), 4);

        let (ds2, outcome2) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(outcome2.is_warm());

        let (direct, _) = read_csv(&csv, ReadStrategy::ChunkedLowMemory).unwrap();
        assert_eq!(ds2.load_all().unwrap(), direct);
        assert_eq!(ds1.load_all().unwrap(), direct);
        std::fs::remove_dir_all(&root).ok();
    }

    /// The turbo strategy flows through the cold-build path unchanged: the
    /// cached dataset it produces is identical to the chunked strategy's
    /// (the engines are bit-identical), and the warm hit serves it back.
    #[test]
    fn turbo_cold_build_matches_chunked_cache() {
        let root = tmp_root("turbo");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();

        let (turbo_ds, outcome) = store
            .open_csv(&csv, ReadStrategy::TurboParallel, 4)
            .unwrap();
        assert!(!outcome.is_warm(), "first open must cold-build");
        let (_, warm) = store
            .open_csv(&csv, ReadStrategy::TurboParallel, 4)
            .unwrap();
        assert!(warm.is_warm(), "second open must hit the cache");

        // Strategy is part of the cache key, so the chunked open builds
        // its own entry — and both entries hold the same frame.
        let (chunked_ds, chunked_outcome) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(!chunked_outcome.is_warm());
        assert_eq!(turbo_ds.load_all().unwrap(), chunked_ds.load_all().unwrap());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn modified_source_misses_cache() {
        let root = tmp_root("invalidate");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (_, o1) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2)
            .unwrap();
        assert!(!o1.is_warm());

        // Append a row: size (and mtime) change, so the key changes.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&csv).unwrap();
        writeln!(f, "{}", "0,".repeat(10) + "1").unwrap();
        drop(f);

        let (_, o2) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2)
            .unwrap();
        assert!(!o2.is_warm(), "modified file must rebuild, not warm-hit");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn different_strategy_is_a_different_key() {
        let root = tmp_root("strategies");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (_, o1) = store
            .open_csv(&csv, ReadStrategy::PandasDefault, 2)
            .unwrap();
        let (_, o2) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2)
            .unwrap();
        assert!(!o1.is_warm());
        assert!(!o2.is_warm(), "strategy is part of the cache key");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupted_shard_file_is_rejected_on_load() {
        let root = tmp_root("corrupt");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 3)
            .unwrap();

        let shard_path = ds.dir().join(&ds.manifest().shards[1].file);
        let mut bytes = std::fs::read(&shard_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&shard_path, &bytes).unwrap();

        assert!(ds.load_shard(0).is_ok());
        // The flipped byte must surface as the typed Corrupt error — a
        // recovery layer matches on it to evict and rebuild — never as a
        // panic inside the decode path.
        assert!(
            matches!(ds.load_shard(1), Err(CacheError::Corrupt(_))),
            "flipped byte must surface as CacheError::Corrupt"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_shard_file_is_rejected_on_load() {
        let root = tmp_root("truncated");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 3)
            .unwrap();

        let shard_path = ds.dir().join(&ds.manifest().shards[2].file);
        let bytes = std::fs::read(&shard_path).unwrap();
        std::fs::write(&shard_path, &bytes[..bytes.len() / 2]).unwrap();

        assert!(
            matches!(ds.load_shard(2), Err(CacheError::Corrupt(_))),
            "truncated shard must surface as CacheError::Corrupt"
        );
        // An empty file (torn write caught at its worst) is also typed.
        std::fs::write(&shard_path, b"").unwrap();
        assert!(matches!(ds.load_shard(2), Err(CacheError::Corrupt(_))));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rank_shards_partition_all_shards() {
        let root = tmp_root("ranks");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 8)
            .unwrap();
        let nranks = 3;
        let mut seen = Vec::new();
        for rank in 0..nranks {
            seen.extend(ds.rank_shards(rank, nranks));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.nshards()).collect::<Vec<_>>());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_or_build_with_generator_source() {
        let root = tmp_root("generator");
        let store = CacheStore::new(&root).unwrap();
        let mut builds = 0;
        let key = 0x1234;
        for _ in 0..2 {
            let (ds, _) = store
                .open_or_build(key, "synthetic:nt3-tiny", "ycols=1", 2, || {
                    builds += 1;
                    let spec = SyntheticSpec {
                        rows: 30,
                        cols: 5,
                        kind: ClassSpec::Classification {
                            classes: 2,
                            separation: 1.0,
                        },
                        noise: 0.3,
                        seed: 3,
                    };
                    let ds = generate(&spec);
                    let path = root.join("gen.csv");
                    write_csv_dataset(&path, &ds).unwrap();
                    let (frame, _) = read_csv(&path, ReadStrategy::ChunkedLowMemory)?;
                    Ok(frame)
                })
                .unwrap();
            assert_eq!(ds.manifest().tag, "ycols=1");
            assert_eq!(ds.nrows(), 30);
        }
        assert_eq!(builds, 1, "second open must be a warm hit");
        std::fs::remove_dir_all(&root).ok();
    }

    /// Builds dataset `key` (a distinct synthetic frame per key) in
    /// `store` and returns whether the open was warm.
    fn churn_open(store: &CacheStore, key: u64) -> bool {
        let (_, outcome) = store
            .open_or_build(key, &format!("synthetic:{key}"), "", 3, || {
                let spec = SyntheticSpec {
                    rows: 64,
                    cols: 9,
                    kind: ClassSpec::Classification {
                        classes: 2,
                        separation: 1.0,
                    },
                    noise: 0.2,
                    seed: key,
                };
                let ds = generate(&spec);
                let mut columns: Vec<dataio::Column> = (0..ds.cols)
                    .map(|c| {
                        dataio::Column::Float64(
                            (0..ds.rows)
                                .map(|r| ds.features[r * ds.cols + c] as f64)
                                .collect(),
                        )
                    })
                    .collect();
                columns.push(dataio::Column::Float64(
                    ds.labels.iter().map(|&v| v as f64).collect(),
                ));
                Frame::new(columns).map_err(CacheError::from)
            })
            .unwrap();
        !outcome.is_warm()
    }

    #[test]
    fn disk_budget_is_respected_under_churn() {
        let root = tmp_root("churn");
        // Size one dataset with an unbounded probe store, then rebuild the
        // root with a budget that fits two and a half of them.
        let probe = CacheStore::new(&root).unwrap();
        churn_open(&probe, 1);
        let one = probe.usage_bytes();
        assert!(one > 0);
        std::fs::remove_dir_all(&root).ok();

        let budget = one * 5 / 2;
        let store = CacheStore::with_budget(&root, budget).unwrap();
        for key in 1..=6u64 {
            churn_open(&store, key);
            assert!(
                store.usage_bytes() <= budget,
                "key {key}: usage {} exceeds budget {budget}",
                store.usage_bytes()
            );
        }
        assert!(
            store.disk_evictions() >= 4,
            "6 builds into a 2.5-dataset budget must evict"
        );
        // LRU: the oldest keys are gone, the newest still on disk.
        assert!(!store.dataset_dir(1).exists());
        assert!(store.dataset_dir(6).exists());
        // An evicted dataset rebuilds cold; a surviving one warm-hits.
        assert!(churn_open(&store, 1), "evicted key must cold-build");
        assert!(!churn_open(&store, 1), "just-rebuilt key must warm-hit");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn leased_dataset_survives_churn_until_released() {
        let root = tmp_root("lease");
        let probe = CacheStore::new(&root).unwrap();
        churn_open(&probe, 1);
        let one = probe.usage_bytes();
        std::fs::remove_dir_all(&root).ok();

        let store = CacheStore::with_budget(&root, one * 2).unwrap();
        churn_open(&store, 1);
        store.lease(1);
        // Churn far past the budget: key 1 is the LRU victim every time,
        // but the lease pins it.
        for key in 2..=5u64 {
            churn_open(&store, key);
            assert!(
                store.dataset_dir(1).exists(),
                "leased dataset evicted at key {key}"
            );
        }
        assert!(!churn_open(&store, 1), "pinned dataset must still warm-hit");
        store.lease(1);
        store.release(1);
        // One lease remains; still pinned.
        churn_open(&store, 6);
        assert!(
            store.dataset_dir(1).exists(),
            "stacked lease must keep the pin"
        );
        store.release(1);
        // Fully released and LRU-cold: the next pressure evicts it.
        churn_open(&store, 7);
        churn_open(&store, 8);
        assert!(
            !store.dataset_dir(1).exists(),
            "released dataset must become evictable"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn with_budget_adopts_existing_datasets() {
        let root = tmp_root("adopt");
        let unbounded = CacheStore::new(&root).unwrap();
        for key in 1..=3u64 {
            churn_open(&unbounded, key);
        }
        let total = unbounded.usage_bytes();
        drop(unbounded);

        // Reopen with a budget below the on-disk total: adoption must
        // count the old directories and evict down to the budget.
        let store = CacheStore::with_budget(&root, total * 2 / 3).unwrap();
        assert!(store.usage_bytes() <= total * 2 / 3);
        assert!(store.disk_evictions() >= 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn evict_forces_rebuild() {
        let root = tmp_root("evict");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let key = source_key_for_file(&csv, ReadStrategy::ChunkedLowMemory.label()).unwrap();
        store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2)
            .unwrap();
        store.evict(key).unwrap();
        let (_, o) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2)
            .unwrap();
        assert!(!o.is_warm());
        std::fs::remove_dir_all(&root).ok();
    }
}
