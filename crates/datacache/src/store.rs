//! The cache store: cold builds (parse once, write shards) and warm opens
//! (verified shard loads), plus per-rank shard assignment.

use crate::manifest::{source_key_for_file, Manifest, ShardEntry, MANIFEST_VERSION};
use crate::shard::{decode_shard, encode_shard, shard_ranges};
use crate::CacheError;
use dataio::{read_csv, Frame, ReadStrategy};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How a dataset came out of the store, with phase timings for reporting.
#[derive(Debug, Clone)]
pub enum CacheOutcome {
    /// First contact with this source: it was parsed/generated and the
    /// shards were written.
    ColdBuilt {
        /// Time spent producing the source frame (CSV parse or generator).
        build: Duration,
        /// Time spent encoding and writing shards plus the manifest.
        encode_write: Duration,
    },
    /// The manifest matched, shards are served from disk.
    WarmHit {
        /// Time spent loading and validating the manifest.
        manifest_load: Duration,
    },
}

impl CacheOutcome {
    /// True when the open was served from an existing cache.
    pub fn is_warm(&self) -> bool {
        matches!(self, CacheOutcome::WarmHit { .. })
    }
}

/// A directory of cached datasets, one subdirectory per source key.
pub struct CacheStore {
    root: PathBuf,
}

impl CacheStore {
    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, CacheError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding the dataset cached under `key`.
    pub fn dataset_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}"))
    }

    /// Opens a CSV-backed dataset: warm if a valid cache keyed by the
    /// file's (path, size, mtime, strategy) exists, otherwise parses the
    /// CSV with `strategy` and builds an `nshards`-way cache.
    pub fn open_csv(
        &self,
        csv: &Path,
        strategy: ReadStrategy,
        nshards: usize,
    ) -> Result<(CachedDataset, CacheOutcome), CacheError> {
        let key = source_key_for_file(csv, strategy.label())?;
        self.open_or_build(key, &csv.to_string_lossy(), "", nshards, || {
            let (frame, _stats) = read_csv(csv, strategy)?;
            Ok(frame)
        })
    }

    /// Generic open: serves a warm hit when a valid manifest for `key`
    /// exists, otherwise invokes `build` for the source frame and writes
    /// the cache. `tag` rides along in the manifest for integration
    /// metadata (e.g. train/test split bookkeeping).
    pub fn open_or_build(
        &self,
        key: u64,
        source_desc: &str,
        tag: &str,
        nshards: usize,
        build: impl FnOnce() -> Result<Frame, CacheError>,
    ) -> Result<(CachedDataset, CacheOutcome), CacheError> {
        let dir = self.dataset_dir(key);
        let warm_start = Instant::now();
        match Manifest::load_from(&dir) {
            Ok(manifest) if manifest.source_key == key => {
                return Ok((
                    CachedDataset { dir, manifest },
                    CacheOutcome::WarmHit {
                        manifest_load: warm_start.elapsed(),
                    },
                ));
            }
            // Missing or invalid manifest: fall through to a cold build.
            // A key collision with a different source_key is treated the
            // same way and rebuilt in place.
            _ => {}
        }

        let build_start = Instant::now();
        let frame = build()?;
        let build_time = build_start.elapsed();

        let write_start = Instant::now();
        let dataset = write_cache(&dir, key, source_desc, tag, &frame, nshards)?;
        Ok((
            dataset,
            CacheOutcome::ColdBuilt {
                build: build_time,
                encode_write: write_start.elapsed(),
            },
        ))
    }

    /// Drops the cached dataset for `key`, if present.
    pub fn evict(&self, key: u64) -> Result<(), CacheError> {
        let dir = self.dataset_dir(key);
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
        }
        Ok(())
    }
}

/// Encodes `frame` into `nshards` shard files under `dir` and writes the
/// manifest last, so a crash mid-build never leaves a valid manifest over
/// incomplete shards.
fn write_cache(
    dir: &Path,
    key: u64,
    source_desc: &str,
    tag: &str,
    frame: &Frame,
    nshards: usize,
) -> Result<CachedDataset, CacheError> {
    std::fs::create_dir_all(dir)?;
    let ranges = shard_ranges(frame.nrows(), nshards);
    let mut entries = Vec::with_capacity(ranges.len());
    for (i, &(start, end)) in ranges.iter().enumerate() {
        let bytes = encode_shard(frame, i as u32, start, end);
        let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let file = format!("shard-{i:04}.bin");
        std::fs::write(dir.join(&file), &bytes)?;
        entries.push(ShardEntry {
            file,
            start_row: start,
            rows: end - start,
            bytes: bytes.len() as u64,
            checksum,
        });
    }
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        source_key: key,
        source: source_desc.to_string(),
        nrows: frame.nrows(),
        ncols: frame.ncols(),
        tag: tag.to_string(),
        shards: entries,
    };
    manifest.write_to(dir)?;
    Ok(CachedDataset {
        dir: dir.to_path_buf(),
        manifest,
    })
}

/// An opened cached dataset: a manifest plus the directory its shard
/// files live in.
pub struct CachedDataset {
    dir: PathBuf,
    manifest: Manifest,
}

impl CachedDataset {
    /// The manifest describing this dataset.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// Total rows across shards.
    pub fn nrows(&self) -> usize {
        self.manifest.nrows
    }

    /// Columns per shard.
    pub fn ncols(&self) -> usize {
        self.manifest.ncols
    }

    /// Directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads, checksums, and decodes shard `index`.
    pub fn load_shard(&self, index: usize) -> Result<Frame, CacheError> {
        let entry = self.manifest.shards.get(index).ok_or_else(|| {
            CacheError::Corrupt(format!(
                "shard index {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let bytes = std::fs::read(self.dir.join(&entry.file))?;
        if bytes.len() as u64 != entry.bytes {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: file is {} bytes, manifest says {}",
                bytes.len(),
                entry.bytes
            )));
        }
        let decoded = decode_shard(&bytes)?;
        if decoded.index as usize != index || decoded.start_row != entry.start_row {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: header identity (index {}, start {}) disagrees with manifest",
                decoded.index, decoded.start_row
            )));
        }
        if decoded.frame.nrows() != entry.rows || decoded.frame.ncols() != self.manifest.ncols {
            return Err(CacheError::Corrupt(format!(
                "shard {index}: decoded shape {}x{} disagrees with manifest {}x{}",
                decoded.frame.nrows(),
                decoded.frame.ncols(),
                entry.rows,
                self.manifest.ncols
            )));
        }
        Ok(decoded.frame)
    }

    /// Loads every shard and reassembles the full source frame.
    pub fn load_all(&self) -> Result<Frame, CacheError> {
        let mut frames = Vec::with_capacity(self.nshards());
        for i in 0..self.nshards() {
            frames.push(self.load_shard(i)?);
        }
        Frame::concat(frames).map_err(CacheError::from)
    }

    /// Shard indices assigned to `rank` of `nranks` (round-robin), the
    /// per-rank read pattern of a sharded warm start.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or `rank >= nranks`.
    pub fn rank_shards(&self, rank: usize, nranks: usize) -> Vec<usize> {
        assert!(nranks > 0, "nranks must be positive");
        assert!(rank < nranks, "rank {rank} out of range for {nranks} ranks");
        (rank..self.nshards()).step_by(nranks).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataio::{generate, write_csv_dataset, ClassSpec, SyntheticSpec};

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("datacache_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_csv(dir: &Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("data.csv");
        let spec = SyntheticSpec {
            rows: 120,
            cols: 10,
            kind: ClassSpec::Classification {
                classes: 4,
                separation: 1.0,
            },
            noise: 0.3,
            seed: 9,
        };
        let ds = generate(&spec);
        write_csv_dataset(&path, &ds).unwrap();
        path
    }

    #[test]
    fn cold_then_warm_reproduces_frame() {
        let root = tmp_root("coldwarm");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();

        let (ds1, outcome1) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(!outcome1.is_warm());
        assert_eq!(ds1.nshards(), 4);

        let (ds2, outcome2) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(outcome2.is_warm());

        let (direct, _) = read_csv(&csv, ReadStrategy::ChunkedLowMemory).unwrap();
        assert_eq!(ds2.load_all().unwrap(), direct);
        assert_eq!(ds1.load_all().unwrap(), direct);
        std::fs::remove_dir_all(&root).ok();
    }

    /// The turbo strategy flows through the cold-build path unchanged: the
    /// cached dataset it produces is identical to the chunked strategy's
    /// (the engines are bit-identical), and the warm hit serves it back.
    #[test]
    fn turbo_cold_build_matches_chunked_cache() {
        let root = tmp_root("turbo");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();

        let (turbo_ds, outcome) = store.open_csv(&csv, ReadStrategy::TurboParallel, 4).unwrap();
        assert!(!outcome.is_warm(), "first open must cold-build");
        let (_, warm) = store.open_csv(&csv, ReadStrategy::TurboParallel, 4).unwrap();
        assert!(warm.is_warm(), "second open must hit the cache");

        // Strategy is part of the cache key, so the chunked open builds
        // its own entry — and both entries hold the same frame.
        let (chunked_ds, chunked_outcome) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, 4)
            .unwrap();
        assert!(!chunked_outcome.is_warm());
        assert_eq!(turbo_ds.load_all().unwrap(), chunked_ds.load_all().unwrap());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn modified_source_misses_cache() {
        let root = tmp_root("invalidate");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (_, o1) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2).unwrap();
        assert!(!o1.is_warm());

        // Append a row: size (and mtime) change, so the key changes.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&csv).unwrap();
        writeln!(f, "{}", "0,".repeat(10) + "1").unwrap();
        drop(f);

        let (_, o2) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2).unwrap();
        assert!(!o2.is_warm(), "modified file must rebuild, not warm-hit");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn different_strategy_is_a_different_key() {
        let root = tmp_root("strategies");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (_, o1) = store.open_csv(&csv, ReadStrategy::PandasDefault, 2).unwrap();
        let (_, o2) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2).unwrap();
        assert!(!o1.is_warm());
        assert!(!o2.is_warm(), "strategy is part of the cache key");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupted_shard_file_is_rejected_on_load() {
        let root = tmp_root("corrupt");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 3).unwrap();

        let shard_path = ds.dir().join(&ds.manifest().shards[1].file);
        let mut bytes = std::fs::read(&shard_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&shard_path, &bytes).unwrap();

        assert!(ds.load_shard(0).is_ok());
        // The flipped byte must surface as the typed Corrupt error — a
        // recovery layer matches on it to evict and rebuild — never as a
        // panic inside the decode path.
        assert!(
            matches!(ds.load_shard(1), Err(CacheError::Corrupt(_))),
            "flipped byte must surface as CacheError::Corrupt"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_shard_file_is_rejected_on_load() {
        let root = tmp_root("truncated");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 3).unwrap();

        let shard_path = ds.dir().join(&ds.manifest().shards[2].file);
        let bytes = std::fs::read(&shard_path).unwrap();
        std::fs::write(&shard_path, &bytes[..bytes.len() / 2]).unwrap();

        assert!(
            matches!(ds.load_shard(2), Err(CacheError::Corrupt(_))),
            "truncated shard must surface as CacheError::Corrupt"
        );
        // An empty file (torn write caught at its worst) is also typed.
        std::fs::write(&shard_path, b"").unwrap();
        assert!(matches!(ds.load_shard(2), Err(CacheError::Corrupt(_))));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rank_shards_partition_all_shards() {
        let root = tmp_root("ranks");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 8).unwrap();
        let nranks = 3;
        let mut seen = Vec::new();
        for rank in 0..nranks {
            seen.extend(ds.rank_shards(rank, nranks));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.nshards()).collect::<Vec<_>>());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_or_build_with_generator_source() {
        let root = tmp_root("generator");
        let store = CacheStore::new(&root).unwrap();
        let mut builds = 0;
        let key = 0x1234;
        for _ in 0..2 {
            let (ds, _) = store
                .open_or_build(key, "synthetic:nt3-tiny", "ycols=1", 2, || {
                    builds += 1;
                    let spec = SyntheticSpec {
                        rows: 30,
                        cols: 5,
                        kind: ClassSpec::Classification {
                            classes: 2,
                            separation: 1.0,
                        },
                        noise: 0.3,
                        seed: 3,
                    };
                    let ds = generate(&spec);
                    let path = root.join("gen.csv");
                    write_csv_dataset(&path, &ds).unwrap();
                    let (frame, _) = read_csv(&path, ReadStrategy::ChunkedLowMemory)?;
                    Ok(frame)
                })
                .unwrap();
            assert_eq!(ds.manifest().tag, "ycols=1");
            assert_eq!(ds.nrows(), 30);
        }
        assert_eq!(builds, 1, "second open must be a warm hit");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn evict_forces_rebuild() {
        let root = tmp_root("evict");
        let csv = small_csv(&root.join("src"));
        let store = CacheStore::new(root.join("cache")).unwrap();
        let key = source_key_for_file(&csv, ReadStrategy::ChunkedLowMemory.label()).unwrap();
        store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2).unwrap();
        store.evict(key).unwrap();
        let (_, o) = store.open_csv(&csv, ReadStrategy::ChunkedLowMemory, 2).unwrap();
        assert!(!o.is_warm());
        std::fs::remove_dir_all(&root).ok();
    }
}
