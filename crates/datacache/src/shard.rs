//! Shard encoding: one contiguous row range of a [`Frame`], column-major,
//! with a self-describing header and a trailing checksum.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      [u8; 4]   "CDS1"
//! version    u16
//! shard_idx  u32
//! start_row  u64       row offset of this shard in the source frame
//! nrows      u64       rows stored in this shard
//! ncols      u32
//! dtypes     [u8]      ncols one-byte dtype codes
//! columns    ...       per column, all nrows values:
//!                        Int64   -> i64 raw
//!                        Float64 -> f64 bit pattern (bit-exact)
//!                        Str     -> u32 byte length + UTF-8 bytes
//! checksum   u64       FNV-1a 64 over every preceding byte
//! ```

use crate::format::{
    dtype_code, dtype_from_code, fnv1a64, put_f64, put_i64, put_u16, put_u32, put_u64, ByteReader,
    MAGIC, VERSION,
};
use crate::CacheError;
use dataio::{Column, Dtype, Frame};

/// A decoded shard: its identity within the source frame plus the rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedShard {
    /// Index of this shard in the manifest's shard list.
    pub index: u32,
    /// Row offset of the shard's first row in the source frame.
    pub start_row: usize,
    /// The shard's rows as a frame (same column dtypes as the source).
    pub frame: Frame,
}

/// Encodes rows `[start, end)` of `frame` as shard number `index`.
///
/// # Panics
/// Panics if the row range is out of bounds or reversed.
pub fn encode_shard(frame: &Frame, index: u32, start: usize, end: usize) -> Vec<u8> {
    assert!(start <= end && end <= frame.nrows(), "bad shard row range");
    let nrows = end - start;
    let mut buf = Vec::with_capacity(64 + nrows * frame.ncols() * 8);
    buf.extend_from_slice(&MAGIC);
    put_u16(&mut buf, VERSION);
    put_u32(&mut buf, index);
    put_u64(&mut buf, start as u64);
    put_u64(&mut buf, nrows as u64);
    put_u32(&mut buf, frame.ncols() as u32);
    for col in frame.columns() {
        buf.push(dtype_code(col.dtype()));
    }
    for col in frame.columns() {
        match col {
            Column::Int64(v) => {
                for &x in &v[start..end] {
                    put_i64(&mut buf, x);
                }
            }
            Column::Float64(v) => {
                for &x in &v[start..end] {
                    put_f64(&mut buf, x);
                }
            }
            Column::Str(v) => {
                for s in &v[start..end] {
                    put_u32(&mut buf, s.len() as u32);
                    buf.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    let checksum = fnv1a64(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// Decodes and validates one shard: magic, version, structural bounds, and
/// the trailing checksum all have to match.
pub fn decode_shard(bytes: &[u8]) -> Result<DecodedShard, CacheError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(CacheError::Corrupt(format!(
            "shard file too short ({} bytes)",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CacheError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }

    let mut r = ByteReader::new(body);
    if r.take_bytes(4)? != MAGIC {
        return Err(CacheError::Corrupt("bad magic".into()));
    }
    let version = r.take_u16()?;
    if version != VERSION {
        return Err(CacheError::Corrupt(format!(
            "unsupported shard version {version} (expected {VERSION})"
        )));
    }
    let index = r.take_u32()?;
    let start_row = r.take_u64()? as usize;
    let nrows = r.take_u64()? as usize;
    let ncols = r.take_u32()? as usize;

    let mut dtypes = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        dtypes.push(dtype_from_code(r.take_u8()?)?);
    }

    let mut columns = Vec::with_capacity(ncols);
    for dtype in dtypes {
        let col = match dtype {
            Dtype::Int64 => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.take_i64()?);
                }
                Column::Int64(v)
            }
            Dtype::Float64 => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.take_f64()?);
                }
                Column::Float64(v)
            }
            Dtype::Str => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let len = r.take_u32()? as usize;
                    let raw = r.take_bytes(len)?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|_| CacheError::Corrupt("non-UTF8 string cell".into()))?;
                    v.push(s.to_string());
                }
                Column::Str(v)
            }
        };
        columns.push(col);
    }
    if r.remaining() != 0 {
        return Err(CacheError::Corrupt(format!(
            "{} trailing bytes after column data",
            r.remaining()
        )));
    }
    let frame = Frame::new(columns)
        .map_err(|e| CacheError::Corrupt(format!("decoded columns invalid: {e}")))?;
    if frame.nrows() != nrows {
        return Err(CacheError::Corrupt(format!(
            "header says {nrows} rows, columns hold {}",
            frame.nrows()
        )));
    }
    Ok(DecodedShard {
        index,
        start_row,
        frame,
    })
}

/// Splits `nrows` into `nshards` contiguous `(start, end)` ranges whose
/// sizes differ by at most one row. Fewer shards come back when there are
/// fewer rows than requested shards (empty shards are never produced,
/// except a single empty shard for an empty frame).
pub fn shard_ranges(nrows: usize, nshards: usize) -> Vec<(usize, usize)> {
    let k = nshards.max(1).min(nrows.max(1));
    let base = nrows / k;
    let extra = nrows % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrng::RandomSource;

    fn mixed_frame(rows: usize, seed: u64) -> Frame {
        let mut rng = xrng::seeded(seed);
        let ints = Column::Int64((0..rows).map(|_| rng.next_u64() as i64).collect());
        let floats = Column::Float64(
            (0..rows)
                .map(|i| {
                    // Include the awkward bit patterns on purpose.
                    match i % 5 {
                        0 => f64::NAN,
                        1 => -0.0,
                        2 => f64::INFINITY,
                        _ => rng.next_f32() as f64 * 1e9 - 5e8,
                    }
                })
                .collect(),
        );
        let strs = Column::Str(
            (0..rows)
                .map(|i| format!("cell-{}-{}", i, rng.next_below(1000)))
                .collect(),
        );
        Frame::new(vec![ints, floats, strs]).unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let frame = mixed_frame(37, 11);
        let bytes = encode_shard(&frame, 3, 5, 30);
        let decoded = decode_shard(&bytes).unwrap();
        assert_eq!(decoded.index, 3);
        assert_eq!(decoded.start_row, 5);
        assert_eq!(decoded.frame.nrows(), 25);
        // Bit-exact comparison, including NaN payloads and -0.0.
        for (orig, got) in frame.columns().iter().zip(decoded.frame.columns()) {
            match (orig, got) {
                (Column::Int64(a), Column::Int64(b)) => assert_eq!(&a[5..30], &b[..]),
                (Column::Float64(a), Column::Float64(b)) => {
                    let abits: Vec<u64> = a[5..30].iter().map(|x| x.to_bits()).collect();
                    let bbits: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(abits, bbits);
                }
                (Column::Str(a), Column::Str(b)) => assert_eq!(&a[5..30], &b[..]),
                _ => panic!("dtype changed in round trip"),
            }
        }
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let frame = mixed_frame(8, 23);
        let bytes = encode_shard(&frame, 0, 0, 8);
        // Flip one bit at a sample of positions spanning header, data, and
        // checksum; every corruption must be rejected.
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_shard(&bad).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let frame = mixed_frame(8, 29);
        let bytes = encode_shard(&frame, 0, 0, 8);
        assert!(decode_shard(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_shard(&bytes[..10]).is_err());
        assert!(decode_shard(&[]).is_err());
    }

    #[test]
    fn empty_shard_round_trips() {
        let frame = Frame::new(vec![Column::Float64(vec![]), Column::Int64(vec![])]).unwrap();
        let bytes = encode_shard(&frame, 0, 0, 0);
        let decoded = decode_shard(&bytes).unwrap();
        assert_eq!(decoded.frame.nrows(), 0);
        assert_eq!(decoded.frame.ncols(), 2);
    }

    #[test]
    fn shard_ranges_tile_exactly() {
        for (rows, shards) in [(100, 4), (101, 4), (3, 8), (0, 4), (1, 1)] {
            let ranges = shard_ranges(rows, shards);
            let mut cursor = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, cursor);
                assert!(e >= s);
                cursor = e;
            }
            assert_eq!(cursor, rows);
            assert!(ranges.len() <= shards.max(1));
            if rows > 0 {
                let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced shards: {sizes:?}");
            }
        }
    }
}
