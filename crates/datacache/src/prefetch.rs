//! Background prefetching: decode shard *k+1* on pool workers while the
//! consumer is busy with shard *k*.
//!
//! The related work's data-loading pipelines overlap ingest with compute;
//! here that is a [`Prefetcher`] holding a small [`parx::WorkerPool`] and a
//! bounded look-ahead window (`depth`, default 2 — double buffering). The
//! iterator yields shards strictly in order with their training-ready
//! [`Tensor`] view, and counts how often the next shard was already decoded
//! (`ready_hits`) versus how long the consumer had to block (`waits`,
//! `wait_time`) — the numbers the pipeline's phase profile reports.

use crate::store::CachedDataset;
use crate::CacheError;
use dataio::Frame;
use parx::WorkerPool;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// Look-ahead window used by the convenience constructors: decode one
/// shard ahead of the consumer (double buffering).
pub const DEFAULT_DEPTH: usize = 2;

/// One decoded shard, ready for training.
pub struct Prefetched {
    /// Shard index in the manifest.
    pub index: usize,
    /// Row offset of the shard in the source frame.
    pub start_row: usize,
    /// The decoded rows.
    pub frame: Frame,
    /// Dense `[rows, cols]` f32 view of the shard.
    pub tensor: Tensor,
}

/// Counters describing how well prefetching hid decode latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Shards that were already decoded when the consumer asked.
    pub ready_hits: usize,
    /// Times the consumer had to block on an in-flight decode (stalls).
    pub waits: usize,
    /// Total time the consumer spent blocked, in nanoseconds.
    pub wait_ns: u128,
    /// Shards decoded by the background workers.
    pub decoded: usize,
    /// Configured look-ahead window (the queue-depth bound).
    pub depth: usize,
    /// High-water mark of decodes in flight at once; at most `depth`.
    pub max_in_flight: usize,
}

impl PrefetchStats {
    /// Total time the consumer spent blocked.
    pub fn wait_time(&self) -> Duration {
        Duration::from_nanos(self.wait_ns.min(u64::MAX as u128) as u64)
    }

    /// Fraction of consumer asks that stalled on an unfinished decode —
    /// 0.0 means the look-ahead fully hid decode latency.
    pub fn stall_fraction(&self) -> f64 {
        let asks = self.ready_hits + self.waits;
        if asks == 0 {
            0.0
        } else {
            self.waits as f64 / asks as f64
        }
    }
}

type Slot = (usize, Result<Prefetched, CacheError>);

/// An ordered, background-decoded iterator over a dataset's shards.
pub struct Prefetcher {
    dataset: Arc<CachedDataset>,
    _pool: WorkerPool,
    order: Vec<usize>,
    /// Next position in `order` to hand to the consumer.
    next_pos: usize,
    /// Positions submitted to the pool so far.
    submitted: usize,
    /// Completions received back from the pool so far.
    received: usize,
    depth: usize,
    tx: Sender<Slot>,
    rx: Receiver<Slot>,
    /// Out-of-order completions parked until their position comes up.
    parked: HashMap<usize, Result<Prefetched, CacheError>>,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Prefetches the shard indices in `order` with `depth` decodes in
    /// flight on `threads` pool workers.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `threads == 0`.
    pub fn with_order(
        dataset: Arc<CachedDataset>,
        order: Vec<usize>,
        depth: usize,
        threads: usize,
    ) -> Self {
        assert!(depth > 0, "prefetch depth must be positive");
        let (tx, rx) = channel();
        let mut p = Self {
            dataset,
            _pool: WorkerPool::new(threads),
            order,
            next_pos: 0,
            submitted: 0,
            received: 0,
            depth,
            tx,
            rx,
            parked: HashMap::new(),
            stats: PrefetchStats {
                depth,
                ..PrefetchStats::default()
            },
        };
        p.fill_window();
        p
    }

    /// Prefetches every shard in manifest order (double-buffered).
    pub fn all(dataset: Arc<CachedDataset>) -> Self {
        let order: Vec<usize> = (0..dataset.nshards()).collect();
        Self::with_order(dataset, order, DEFAULT_DEPTH, 2)
    }

    /// Prefetches the shards assigned to `rank` of `nranks`
    /// (double-buffered) — a rank's warm-start read stream.
    pub fn for_rank(dataset: Arc<CachedDataset>, rank: usize, nranks: usize) -> Self {
        let order = dataset.rank_shards(rank, nranks);
        Self::with_order(dataset, order, DEFAULT_DEPTH, 2)
    }

    /// Counters accumulated so far (final after the iterator is drained).
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Shards this prefetcher will yield.
    pub fn len_total(&self) -> usize {
        self.order.len()
    }

    /// Decodes currently in flight on the background workers (submitted,
    /// completion not yet received) — the live queue depth.
    pub fn in_flight(&self) -> usize {
        self.submitted - self.received
    }

    /// Keeps `depth` decodes in flight.
    fn fill_window(&mut self) {
        while self.submitted < self.order.len() && self.submitted < self.next_pos + self.depth {
            let pos = self.submitted;
            self.submitted += 1;
            let shard_index = self.order[pos];
            let dataset = Arc::clone(&self.dataset);
            let tx = self.tx.clone();
            self._pool.submit(move || {
                let result = dataset.load_shard(shard_index).and_then(|frame| {
                    let tensor =
                        Tensor::from_vec([frame.nrows(), frame.ncols()], frame.to_f32_matrix())
                            .map_err(|e| {
                                CacheError::Corrupt(format!("shard tensor shape: {e:?}"))
                            })?;
                    Ok(Prefetched {
                        index: shard_index,
                        start_row: frame_start_row(&dataset, shard_index),
                        frame,
                        tensor,
                    })
                });
                // The consumer may have been dropped mid-iteration; that
                // just discards the decoded shard.
                let _ = tx.send((pos, result));
            });
        }
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight());
    }

    /// Blocks until the completion for `pos` arrives, parking any
    /// out-of-order completions received in the meantime.
    fn wait_for(&mut self, pos: usize) -> Result<Prefetched, CacheError> {
        loop {
            if let Some(result) = self.parked.remove(&pos) {
                return result;
            }
            let (got_pos, result) = self
                .rx
                .recv()
                .expect("prefetch workers never hang up while tasks are in flight");
            self.stats.decoded += 1;
            self.received += 1;
            if got_pos == pos {
                return result;
            }
            self.parked.insert(got_pos, result);
        }
    }
}

fn frame_start_row(dataset: &CachedDataset, shard_index: usize) -> usize {
    dataset
        .manifest()
        .shards
        .get(shard_index)
        .map(|s| s.start_row)
        .unwrap_or(0)
}

impl Iterator for Prefetcher {
    type Item = Result<Prefetched, CacheError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_pos >= self.order.len() {
            return None;
        }
        let pos = self.next_pos;
        // Drain without blocking first: anything already decoded counts
        // toward ready_hits when it covers the position we need.
        while let Ok((got_pos, result)) = self.rx.try_recv() {
            self.stats.decoded += 1;
            self.received += 1;
            self.parked.insert(got_pos, result);
        }
        let item = if let Some(result) = self.parked.remove(&pos) {
            self.stats.ready_hits += 1;
            result
        } else {
            let start = Instant::now();
            let result = self.wait_for(pos);
            self.stats.waits += 1;
            self.stats.wait_ns += start.elapsed().as_nanos();
            result
        };
        self.next_pos += 1;
        self.fill_window();
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.order.len() - self.next_pos;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CacheStore;
    use dataio::{generate, read_csv, write_csv_dataset, ClassSpec, ReadStrategy, SyntheticSpec};
    use std::path::PathBuf;

    fn cached_dataset(name: &str, rows: usize, nshards: usize) -> (PathBuf, Arc<CachedDataset>) {
        let root = std::env::temp_dir().join(format!("datacache_pf_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(root.join("src")).unwrap();
        let csv = root.join("src/data.csv");
        let spec = SyntheticSpec {
            rows,
            cols: 8,
            kind: ClassSpec::Classification {
                classes: 3,
                separation: 1.0,
            },
            noise: 0.4,
            seed: 21,
        };
        write_csv_dataset(&csv, &generate(&spec)).unwrap();
        let store = CacheStore::new(root.join("cache")).unwrap();
        let (ds, _) = store
            .open_csv(&csv, ReadStrategy::ChunkedLowMemory, nshards)
            .unwrap();
        (root, Arc::new(ds))
    }

    #[test]
    fn yields_all_shards_in_order_and_matches_direct_load() {
        let (root, ds) = cached_dataset("order", 90, 5);
        let mut frames = Vec::new();
        let mut last_index = None;
        let pf = Prefetcher::all(Arc::clone(&ds));
        for item in pf {
            let got = item.unwrap();
            if let Some(prev) = last_index {
                assert!(got.index > prev, "shards must arrive in order");
            }
            assert_eq!(
                got.tensor.shape().dims(),
                &[got.frame.nrows(), got.frame.ncols()]
            );
            last_index = Some(got.index);
            frames.push(got.frame);
        }
        assert_eq!(frames.len(), 5);
        let reassembled = Frame::concat(frames).unwrap();
        assert_eq!(reassembled, ds.load_all().unwrap());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stats_account_for_every_shard() {
        let (root, ds) = cached_dataset("stats", 60, 6);
        let mut pf = Prefetcher::all(Arc::clone(&ds));
        let mut n = 0;
        while let Some(item) = pf.next() {
            item.unwrap();
            n += 1;
            // A slow consumer gives the double buffer time to fill.
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = pf.stats();
        assert_eq!(n, 6);
        assert_eq!(stats.ready_hits + stats.waits, 6);
        assert_eq!(stats.decoded, 6);
        assert!(
            stats.ready_hits > 0,
            "a slow consumer should find prefetched shards ready: {stats:?}"
        );
        assert_eq!(stats.depth, DEFAULT_DEPTH);
        assert!(
            stats.max_in_flight >= 1 && stats.max_in_flight <= stats.depth,
            "in-flight high-water mark must stay inside the window: {stats:?}"
        );
        assert_eq!(pf.in_flight(), 0, "a drained prefetcher has nothing queued");
        assert!(stats.stall_fraction() <= 1.0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rank_streams_partition_the_dataset() {
        let (root, ds) = cached_dataset("ranks", 80, 8);
        let mut all_rows = 0;
        let mut seen_shards = Vec::new();
        for rank in 0..3 {
            for item in Prefetcher::for_rank(Arc::clone(&ds), rank, 3) {
                let got = item.unwrap();
                all_rows += got.frame.nrows();
                seen_shards.push(got.index);
            }
        }
        seen_shards.sort_unstable();
        assert_eq!(seen_shards, (0..8).collect::<Vec<_>>());
        assert_eq!(all_rows, ds.nrows());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corruption_surfaces_as_error_not_panic() {
        let (root, ds) = cached_dataset("corrupt", 40, 4);
        // Corrupt shard 2 on disk after the manifest was loaded.
        let entry = &ds.manifest().shards[2];
        let path = ds.dir().join(&entry.file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let results: Vec<_> = Prefetcher::all(Arc::clone(&ds)).collect();
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok());
        assert!(results[2].is_err(), "corrupt shard must yield an error");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn csv_parse_and_warm_prefetch_agree() {
        let (root, ds) = cached_dataset("agree", 70, 3);
        let (direct, _) = read_csv(&root.join("src/data.csv"), ReadStrategy::ChunkedLowMemory)
            .map_err(|e| panic!("{e}"))
            .unwrap();
        let frames: Vec<Frame> = Prefetcher::all(Arc::clone(&ds))
            .map(|r| r.unwrap().frame)
            .collect();
        assert_eq!(Frame::concat(frames).unwrap(), direct);
        std::fs::remove_dir_all(&root).ok();
    }
}
