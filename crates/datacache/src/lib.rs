//! `datacache` — a sharded binary dataset cache with background prefetching.
//!
//! The paper's headline finding is that `pandas.read_csv()` dominates total
//! runtime at scale; `dataio` reproduces the parse-*strategy* comparison,
//! but every run still re-parses the full CSV. This crate goes the next
//! step the related work takes (binary caches keyed by content hash,
//! loading overlapped with compute):
//!
//! * [`shard`] + [`format`] — a compact little-endian columnar encoding of
//!   a [`dataio::Frame`] split into N row-range shards, each carrying a
//!   header (magic, version, dtype table, row/col counts) and an FNV-1a
//!   checksum.
//! * [`manifest`] — a small text manifest keyed by a content hash of the
//!   source (path, size, mtime, parse strategy), so a cold run parses CSV
//!   once and writes shards, and every warm run or rank loads its shards
//!   directly.
//! * [`store`] — [`CacheStore`]: the cold/warm decision, shard writing and
//!   verified reloading, per-rank shard assignment.
//! * [`prefetch`] — [`Prefetcher`]: a double-buffered background loader on
//!   [`parx::WorkerPool`] that decodes shard *k+1* while the consumer works
//!   on shard *k*, exposing ready [`tensor::Tensor`] batches plus
//!   hit/wait counters.

pub mod format;
pub mod manifest;
pub mod prefetch;
pub mod shard;
pub mod store;

pub use manifest::{source_key_for_file, Manifest, ShardEntry};
pub use prefetch::{PrefetchStats, Prefetched, Prefetcher};
pub use shard::{decode_shard, encode_shard, DecodedShard};
pub use store::{CacheOutcome, CacheStore, CachedDataset};

/// Errors from cache encoding, decoding, and I/O.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Shard or manifest contents failed validation (bad magic, version,
    /// checksum mismatch, truncation, ...).
    Corrupt(String),
    /// Error surfaced from the `dataio` layer while building the cache.
    Data(dataio::DataError),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::Corrupt(msg) => write!(f, "corrupt cache: {msg}"),
            CacheError::Data(e) => write!(f, "cache build error: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<dataio::DataError> for CacheError {
    fn from(e: dataio::DataError) -> Self {
        CacheError::Data(e)
    }
}
