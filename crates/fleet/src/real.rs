//! The real data plane: an autoscaling fleet of live [`ServeEngine`]s.
//!
//! Where [`crate::sim`] proves control-loop properties in virtual time,
//! this module runs the same router / autoscaler / admission-control
//! stack over actual serving engines executing real batched forward
//! passes. Wall-clock latencies are inherently non-reproducible, so this
//! path is for *measurement* (the README burst table, the bench JSON),
//! not for the determinism guarantees — those live in the simulator.
//!
//! A trace replay compresses virtual trace time by `speedup` (a 1200 s
//! diurnal trace replays in seconds), drives an open loop (no retries —
//! rejected requests are the signal, not an inconvenience), and prices
//! the run with the same Summit/Theta power states the simulator uses:
//! per-replica busy time is *measured* from each engine's forward-pass
//! histogram, then blended as `busy·compute_w + (1−busy)·idle_w` over
//! the replica's uptime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster::Machine;
use dlframe::Sequential;
use parking_lot::Mutex;
use serve::{request_row, LatencySummary, ServeConfig, ServeEngine, ServeError, ServeHandle};
use simcore::{LogHistogram, WindowedHistogram};
use xrng::derive_seed;

use crate::autoscale::{Autoscaler, ControlSignal, ScaleDecision};
use crate::router::Router;
use crate::sim::ScalePolicy;
use crate::trace::TraceConfig;

/// Configuration of a live fleet replay. Time fields are **real**
/// (post-compression) seconds.
#[derive(Debug, Clone)]
pub struct RealFleetConfig {
    /// Per-replica engine knobs (batching, queue capacity, workers).
    pub engine: ServeConfig,
    /// Request routing policy over live queue depths.
    pub router: crate::router::RouterPolicy,
    /// Fixed or autoscaled replica count. For [`ScalePolicy::Auto`] the
    /// autoscaler's time fields are interpreted in real seconds.
    pub scaling: ScalePolicy,
    /// Latency objective, real seconds.
    pub slo_p99_s: f64,
    /// Admission control: shed when total in-flight depth exceeds this
    /// fraction of total routable queue capacity. `f64::INFINITY`
    /// disables proactive shedding.
    pub shed_depth_frac: f64,
    /// Real seconds between control decisions.
    pub control_interval_s: f64,
    /// Rolling latency window backing control decisions, real seconds.
    pub stats_window_s: f64,
    /// Platform whose power states price the measured utilization.
    pub machine: Machine,
    /// Seed for request feature rows and the router.
    pub seed: u64,
    /// Feature width of generated request rows.
    pub features: usize,
}

/// Report of one live fleet replay.
#[derive(Debug, Clone)]
pub struct RealFleetReport {
    /// Requests offered by the (compressed) trace.
    pub offered: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed by fleet admission control.
    pub shed: u64,
    /// Requests rejected by a full engine queue.
    pub overloaded: u64,
    /// Requests that failed after admission (crash, shutdown races).
    pub failed: u64,
    /// End-to-end latency of completed requests, real seconds.
    pub latency: LatencySummary,
    /// Largest rolling-window p99 observed at any control check.
    pub worst_window_p99_s: f64,
    /// The scaling-decision log (empty for [`ScalePolicy::Fixed`]).
    pub decisions: Vec<ScaleDecision>,
    /// Largest concurrently-routable replica count.
    pub peak_replicas: usize,
    /// Integral of provisioned replicas over real time.
    pub replica_seconds: f64,
    /// Modelled energy over measured busy fractions, joules.
    pub energy_j: f64,
    /// `energy_j / completed`.
    pub joules_per_request: f64,
    /// Wall-clock duration of the replay, seconds.
    pub elapsed_s: f64,
}

impl RealFleetReport {
    /// Fraction of offered requests rejected before service.
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.shed + self.overloaded) as f64 / self.offered as f64
    }
}

struct SharedStats {
    windowed: WindowedHistogram,
    cumulative: LogHistogram,
    completed: u64,
    failed: u64,
}

struct Slot {
    handle: ServeHandle,
    engine: Option<ServeEngine>,
    online_s: f64,
    draining: bool,
}

/// Energy ledger entry for one replica's provisioned span.
struct ReplicaSpan {
    uptime_s: f64,
    busy_s: f64,
}

fn engine_busy_seconds(engine: &ServeEngine) -> f64 {
    let r = engine.report();
    // The forward histogram's mean×count reconstructs total forward time.
    r.batch_forward.mean_s * r.batch_forward.count as f64
}

/// Replay `trace` against a live fleet, compressing virtual trace time by
/// `speedup` (arrival at virtual `t` fires at real `t / speedup`). All
/// replicas serve the same `model` (a replicated-weights fleet).
pub fn run_serve_fleet(
    model: Arc<Sequential>,
    config: &RealFleetConfig,
    trace: &TraceConfig,
    speedup: f64,
) -> RealFleetReport {
    assert!(speedup > 0.0, "speedup must be positive");
    let router = Router::new(config.router, derive_seed(config.seed, 0x7265_616c));
    let initial = match &config.scaling {
        ScalePolicy::Fixed(n) => {
            assert!(*n >= 1, "fixed fleet needs at least 1 replica");
            *n
        }
        ScalePolicy::Auto(c) => c.min_replicas,
    };
    let mut autoscaler = match &config.scaling {
        ScalePolicy::Fixed(_) => None,
        ScalePolicy::Auto(c) => Some(Autoscaler::new(
            c.clone(),
            config.machine.spec().power.compute_w,
        )),
    };

    let start = Instant::now();
    let spawn = |_: usize| {
        let engine = ServeEngine::start(Arc::clone(&model), config.engine.clone());
        Slot {
            handle: engine.handle(),
            engine: Some(engine),
            online_s: start.elapsed().as_secs_f64(),
            draining: false,
        }
    };
    let mut slots: Vec<Slot> = (0..initial).map(spawn).collect();
    let mut spans: Vec<ReplicaSpan> = Vec::new();
    let mut peak_replicas = initial;

    let stats = Arc::new(Mutex::new(SharedStats {
        windowed: WindowedHistogram::for_latency_seconds(config.stats_window_s),
        cumulative: LogHistogram::for_latency_seconds(),
        completed: 0,
        failed: 0,
    }));

    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut overloaded = 0u64;
    let mut decisions: Vec<ScaleDecision> = Vec::new();
    let mut worst_window_p99_s = 0.0f64;
    let mut busy_prev = 0.0f64;
    let mut next_control_s = config.control_interval_s;
    // Background drains for scaled-in engines finish on their own time.
    let drained_busy = Arc::new(Mutex::new(Vec::<ReplicaSpan>::new()));
    let in_flight_drains = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<(Instant, serve::Ticket)>();
        for _ in 0..2 {
            let rx = rx.clone();
            let stats = Arc::clone(&stats);
            scope.spawn(move || {
                while let Ok((submitted, ticket)) = rx.recv() {
                    let outcome = ticket.wait();
                    let lat = submitted.elapsed().as_secs_f64();
                    let t = start.elapsed().as_secs_f64();
                    let mut s = stats.lock();
                    match outcome {
                        Ok(_) => {
                            s.windowed.record(t, lat);
                            s.cumulative.record(lat);
                            s.completed += 1;
                        }
                        Err(_) => s.failed += 1,
                    }
                }
            });
        }

        let mut depths: Vec<usize> = Vec::new();
        let mut routable: Vec<usize> = Vec::new();
        for arrival in trace.arrivals() {
            let due = start + Duration::from_secs_f64(arrival.t_s / speedup);
            // Sleep towards the arrival, but wake for control boundaries.
            loop {
                let now_s = start.elapsed().as_secs_f64();
                if now_s >= next_control_s {
                    control_step(
                        &mut slots,
                        &mut autoscaler,
                        &stats,
                        &mut busy_prev,
                        &mut decisions,
                        &mut worst_window_p99_s,
                        &mut peak_replicas,
                        config,
                        now_s,
                        spawn,
                        scope,
                        &drained_busy,
                        &in_flight_drains,
                    );
                    next_control_s += config.control_interval_s;
                    continue;
                }
                let now = Instant::now();
                if due <= now {
                    break;
                }
                let until_control = Duration::from_secs_f64(next_control_s - now_s);
                std::thread::sleep((due - now).min(until_control).min(Duration::from_millis(5)));
            }
            offered += 1;
            routable.clear();
            depths.clear();
            let mut total_depth = 0usize;
            for (i, s) in slots.iter().enumerate() {
                if s.engine.is_some() && !s.draining {
                    routable.push(i);
                    let d = s.handle.depth();
                    depths.push(d);
                    total_depth += d;
                }
            }
            if routable.is_empty() {
                overloaded += 1;
                continue;
            }
            let capacity = routable.len() * config.engine.queue_capacity;
            if (total_depth as f64) > config.shed_depth_frac * capacity as f64 {
                shed += 1;
                continue;
            }
            let pick = router
                .pick(arrival.index, &depths)
                .expect("non-empty routable set");
            let row = request_row(config.seed, arrival.index, config.features);
            match slots[routable[pick]].handle.submit(row) {
                Ok(ticket) => {
                    let _ = tx.send((Instant::now(), ticket));
                }
                Err(ServeError::Overloaded { .. }) => overloaded += 1,
                Err(_) => overloaded += 1,
            }
        }
        drop(tx);
        // Wait until every admitted request has been answered.
        loop {
            let done = {
                let s = stats.lock();
                s.completed + s.failed
            };
            let answered_elsewhere = shed + overloaded;
            if done + answered_elsewhere >= offered {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    // Shut the remaining fleet down and close the energy ledger.
    let end_s = start.elapsed().as_secs_f64();
    for slot in &mut slots {
        if let Some(engine) = slot.engine.take() {
            let busy = engine_busy_seconds(&engine);
            engine.shutdown();
            spans.push(ReplicaSpan {
                uptime_s: (end_s - slot.online_s).max(0.0),
                busy_s: busy,
            });
        }
    }
    // Background drains hold engine ownership; they finished before the
    // scope exited, so their ledger entries are complete.
    assert_eq!(in_flight_drains.load(Ordering::SeqCst), 0);
    spans.extend(drained_busy.lock().drain(..));

    let power = config.machine.spec().power;
    let mut energy_j = 0.0;
    let mut replica_seconds = 0.0;
    for s in &spans {
        let busy_frac = if s.uptime_s > 0.0 {
            (s.busy_s / s.uptime_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        energy_j +=
            s.uptime_s * (busy_frac * power.compute_w + (1.0 - busy_frac) * power.idle_w);
        replica_seconds += s.uptime_s;
    }

    let (completed, failed, latency) = {
        let s = stats.lock();
        (
            s.completed,
            s.failed,
            LatencySummary::from_histogram(&s.cumulative),
        )
    };
    RealFleetReport {
        offered,
        completed,
        shed,
        overloaded,
        failed,
        latency,
        worst_window_p99_s,
        decisions,
        peak_replicas,
        replica_seconds,
        energy_j,
        joules_per_request: if completed == 0 {
            f64::INFINITY
        } else {
            energy_j / completed as f64
        },
        elapsed_s: end_s,
    }
}

/// One control-loop step over the live fleet (extracted so the replay
/// loop stays readable; `&mut` plumbing instead of a struct because the
/// thread scope pins the borrows).
#[allow(clippy::too_many_arguments)]
fn control_step<'scope, 'env, F>(
    slots: &mut Vec<Slot>,
    autoscaler: &mut Option<Autoscaler>,
    stats: &Arc<Mutex<SharedStats>>,
    busy_prev: &mut f64,
    decisions: &mut Vec<ScaleDecision>,
    worst_window_p99_s: &mut f64,
    peak_replicas: &mut usize,
    config: &RealFleetConfig,
    now_s: f64,
    spawn: F,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    drained_busy: &Arc<Mutex<Vec<ReplicaSpan>>>,
    in_flight_drains: &Arc<AtomicU64>,
) where
    F: Fn(usize) -> Slot,
{
    let (p99_s, samples) = {
        let s = stats.lock();
        let snap = s.windowed.snapshot(now_s);
        let n = snap.count();
        (if n > 0 { snap.quantile(0.99) } else { 0.0 }, n)
    };
    if samples > 0 && p99_s > *worst_window_p99_s {
        *worst_window_p99_s = p99_s;
    }
    let Some(autoscaler) = autoscaler.as_mut() else {
        return;
    };
    let mut active = 0usize;
    let mut queued = 0usize;
    let mut busy_now = 0.0f64;
    for s in slots.iter() {
        if let Some(engine) = &s.engine {
            busy_now += engine_busy_seconds(engine);
            if !s.draining {
                active += 1;
                queued += s.handle.depth();
            }
        }
    }
    let utilization = ((busy_now - *busy_prev)
        / (active.max(1) as f64 * config.control_interval_s))
        .clamp(0.0, 1.0);
    *busy_prev = busy_now;
    let signal = ControlSignal {
        now_s,
        p99_s,
        samples,
        queued,
        // Live depths are an instantaneous sample already; no per-tick
        // residual distortion to correct for.
        queued_peak: queued,
        active_replicas: active,
        utilization,
    };
    let Some(decision) = autoscaler.decide(&signal) else {
        return;
    };
    if decision.to > decision.from {
        for _ in decision.from..decision.to {
            slots.push(spawn(slots.len()));
        }
        let routable = slots
            .iter()
            .filter(|s| s.engine.is_some() && !s.draining)
            .count();
        *peak_replicas = (*peak_replicas).max(routable);
    } else {
        let mut to_drain = decision.from - decision.to;
        for i in (0..slots.len()).rev() {
            if to_drain == 0 {
                break;
            }
            if slots[i].engine.is_some() && !slots[i].draining {
                slots[i].draining = true;
                let engine = slots[i].engine.take().expect("engine present");
                let online_s = slots[i].online_s;
                let ledger = Arc::clone(drained_busy);
                let pending = Arc::clone(in_flight_drains);
                pending.fetch_add(1, Ordering::SeqCst);
                let drain_start = Instant::now();
                scope.spawn(move || {
                    let busy = engine_busy_seconds(&engine);
                    engine.shutdown();
                    let uptime = (now_s - online_s).max(0.0)
                        + drain_start.elapsed().as_secs_f64();
                    ledger.lock().push(ReplicaSpan {
                        uptime_s: uptime,
                        busy_s: busy,
                    });
                    pending.fetch_sub(1, Ordering::SeqCst);
                });
                to_drain -= 1;
            }
        }
    }
    decisions.push(decision);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::AutoscaleConfig;
    use crate::router::RouterPolicy;
    use crate::trace::Burst;
    use dlframe::{Activation, Dense, Loss, Optimizer};

    fn model(seed: u64, features: usize) -> Arc<Sequential> {
        let mut rng = xrng::seeded(seed);
        let mut m = Sequential::new(seed);
        m.add(Box::new(Dense::new(features, 16, Activation::Relu, &mut rng)));
        m.add(Box::new(Dense::new(16, 3, Activation::Linear, &mut rng)));
        m.compile(Loss::SoftmaxCrossEntropy, Optimizer::sgd(0.1));
        Arc::new(m)
    }

    fn config(scaling: ScalePolicy) -> RealFleetConfig {
        RealFleetConfig {
            engine: ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_capacity: 256,
                workers: 1,
                slo: None,
                kill_batches: Vec::new(),
            },
            router: RouterPolicy::PowerOfTwo,
            scaling,
            slo_p99_s: 0.25,
            shed_depth_frac: 0.5,
            control_interval_s: 0.05,
            stats_window_s: 0.5,
            machine: Machine::Summit,
            seed: 11,
            features: 6,
        }
    }

    fn trace() -> TraceConfig {
        TraceConfig {
            seed: 3,
            duration_s: 10.0,
            base_rps: 150.0,
            diurnal_amplitude: 0.2,
            diurnal_period_s: 10.0,
            bursts: vec![Burst {
                start_s: 3.0,
                duration_s: 2.0,
                extra_rps: 600.0,
            }],
        }
    }

    #[test]
    fn fixed_live_fleet_serves_a_trace() {
        let report = run_serve_fleet(
            model(1, 6),
            &config(ScalePolicy::Fixed(2)),
            &trace(),
            10.0, // 10 s of trace in ~1 s real
        );
        assert!(report.offered > 500, "offered {}", report.offered);
        assert_eq!(
            report.offered,
            report.completed + report.shed + report.overloaded + report.failed
        );
        assert!(report.completed > 0);
        assert!(report.energy_j > 0.0);
        assert!(report.joules_per_request.is_finite());
        assert!(report.replica_seconds > 0.0);
        assert!(report.decisions.is_empty());
    }

    #[test]
    fn autoscaled_live_fleet_reacts_and_accounts_every_replica() {
        let report = run_serve_fleet(
            model(1, 6),
            &config(ScalePolicy::Auto(AutoscaleConfig {
                min_replicas: 1,
                max_replicas: 4,
                slo_p99_s: 0.25,
                scale_out_frac: 0.8,
                queue_high_per_replica: 16,
                scale_in_util: 0.35,
                scale_in_p99_frac: 0.3,
                idle_intervals: 3,
                cooldown_s: 0.2,
                step_out: 1,
                step_in: 1,
            })),
            &trace(),
            10.0,
        );
        assert_eq!(
            report.offered,
            report.completed + report.shed + report.overloaded + report.failed
        );
        assert!(report.completed > 0);
        // Replica-seconds must cover at least the whole run for min=1.
        assert!(report.replica_seconds >= report.elapsed_s * 0.9);
        assert!(report.energy_j > 0.0);
    }
}
